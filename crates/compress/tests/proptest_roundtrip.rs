//! Property-based tests for the compression substrate: every algorithm must
//! be lossless on arbitrary inputs, and sizes must be internally consistent.
//!
//! The cases come from the shared seeded splitmix64 generator in
//! `attache-testkit` instead of an external property-testing crate, so the
//! suite builds in offline sandboxes and the failing case is always
//! reproducible from the iteration index. The seeds (1..=6) and the
//! block/structured-block samplers predate the testkit port; the stream is
//! pinned by testkit's own tests, so old failing-case indices still
//! reproduce. (`Block` is an alias for `[u8; 64]`, which is exactly what
//! `Gen::block`/`Gen::structured_block` return.)

use attache_compress::bdi::Bdi;
use attache_compress::fpc::Fpc;
use attache_compress::{CompressionEngine, Compressor, BLOCK_SIZE};
use attache_testkit::Gen;

const CASES: u64 = 512;

#[test]
fn bdi_roundtrips_random_blocks() {
    let mut g = Gen::new(1);
    let bdi = Bdi::new();
    for case in 0..CASES {
        let block = g.block();
        if let Some(image) = bdi.compress(&block) {
            assert!(image.size() < BLOCK_SIZE, "case {case}");
            assert_eq!(bdi.decompress(&image), block, "case {case}");
        }
    }
}

#[test]
fn fpc_roundtrips_random_blocks() {
    let mut g = Gen::new(2);
    let fpc = Fpc::new();
    for case in 0..CASES {
        let block = g.block();
        if let Some(image) = fpc.compress(&block) {
            assert!(image.size() < BLOCK_SIZE, "case {case}");
            assert_eq!(fpc.decompress(&image), block, "case {case}");
        }
    }
}

#[test]
fn engine_roundtrips_any_block() {
    let mut g = Gen::new(3);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.block();
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block, "case {case}");
    }
}

#[test]
fn engine_roundtrips_structured_blocks() {
    let mut g = Gen::new(4);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.structured_block();
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block, "case {case}");
        assert!(outcome.compressed_size() <= BLOCK_SIZE, "case {case}");
    }
}

#[test]
fn structured_blocks_usually_fit_subrank() {
    // Not a strict guarantee, but the engine must never report a
    // compressed size larger than the block.
    let mut g = Gen::new(5);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.structured_block();
        assert!(engine.compressed_size(&block) <= BLOCK_SIZE, "case {case}");
    }
}

#[test]
fn fpc_bit_accounting_is_exact() {
    let mut g = Gen::new(6);
    for case in 0..CASES {
        let block = g.structured_block();
        let bits = Fpc::compressed_bits(&block) as usize;
        match Fpc::new().compress(&block) {
            Some(image) => assert_eq!(image.size(), bits.div_ceil(8), "case {case}"),
            None => assert!(bits.div_ceil(8) >= BLOCK_SIZE, "case {case}"),
        }
    }
}
