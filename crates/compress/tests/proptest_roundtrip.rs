//! Property-based tests for the compression substrate: every algorithm must
//! be lossless on arbitrary inputs, and sizes must be internally consistent.
//!
//! The cases come from a seeded splitmix64 generator instead of an external
//! property-testing crate, so the suite builds in offline sandboxes and the
//! failing case is always reproducible from the iteration index.

use attache_compress::bdi::Bdi;
use attache_compress::fpc::Fpc;
use attache_compress::{Block, CompressionEngine, Compressor, BLOCK_SIZE};

const CASES: u64 = 512;

/// Deterministic case generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0123_4567_89AB_CDEF)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fully random (usually incompressible) 64-byte block.
    fn block(&mut self) -> Block {
        let mut b = [0u8; BLOCK_SIZE];
        for chunk in b.chunks_exact_mut(8) {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        b
    }

    /// Structured blocks: more likely to be compressible, exercising all
    /// encodings rather than just the uncompressed path.
    fn structured_block(&mut self) -> Block {
        let base = self.next_u64();
        let deltas: Vec<i64> = (0..8).map(|_| (self.next_u64() % 600) as i64 - 300).collect();
        let kind = self.next_u64() % 4;
        let mut b = [0u8; BLOCK_SIZE];
        match kind {
            0 => {
                // u64 base + small deltas
                for (chunk, d) in b.chunks_exact_mut(8).zip(&deltas) {
                    chunk.copy_from_slice(&(base.wrapping_add(*d as u64)).to_le_bytes());
                }
            }
            1 => {
                // small u32 values
                for (i, chunk) in b.chunks_exact_mut(4).enumerate() {
                    let v = (deltas[i % 8] & 0xFF) as u32;
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            2 => {
                // repeated 8B value
                for chunk in b.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&base.to_le_bytes());
                }
            }
            _ => {
                // sparse: mostly zero with a few words set
                for (i, d) in deltas.iter().enumerate() {
                    let w = (*d as u32).to_le_bytes();
                    b[i * 8..i * 8 + 4].copy_from_slice(&w);
                }
            }
        }
        b
    }
}

#[test]
fn bdi_roundtrips_random_blocks() {
    let mut g = Gen::new(1);
    let bdi = Bdi::new();
    for case in 0..CASES {
        let block = g.block();
        if let Some(image) = bdi.compress(&block) {
            assert!(image.size() < BLOCK_SIZE, "case {case}");
            assert_eq!(bdi.decompress(&image), block, "case {case}");
        }
    }
}

#[test]
fn fpc_roundtrips_random_blocks() {
    let mut g = Gen::new(2);
    let fpc = Fpc::new();
    for case in 0..CASES {
        let block = g.block();
        if let Some(image) = fpc.compress(&block) {
            assert!(image.size() < BLOCK_SIZE, "case {case}");
            assert_eq!(fpc.decompress(&image), block, "case {case}");
        }
    }
}

#[test]
fn engine_roundtrips_any_block() {
    let mut g = Gen::new(3);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.block();
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block, "case {case}");
    }
}

#[test]
fn engine_roundtrips_structured_blocks() {
    let mut g = Gen::new(4);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.structured_block();
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block, "case {case}");
        assert!(outcome.compressed_size() <= BLOCK_SIZE, "case {case}");
    }
}

#[test]
fn structured_blocks_usually_fit_subrank() {
    // Not a strict guarantee, but the engine must never report a
    // compressed size larger than the block.
    let mut g = Gen::new(5);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = g.structured_block();
        assert!(engine.compressed_size(&block) <= BLOCK_SIZE, "case {case}");
    }
}

#[test]
fn fpc_bit_accounting_is_exact() {
    let mut g = Gen::new(6);
    for case in 0..CASES {
        let block = g.structured_block();
        let bits = Fpc::compressed_bits(&block) as usize;
        match Fpc::new().compress(&block) {
            Some(image) => assert_eq!(image.size(), bits.div_ceil(8), "case {case}"),
            None => assert!(bits.div_ceil(8) >= BLOCK_SIZE, "case {case}"),
        }
    }
}
