//! Property-based tests for the compression substrate: every algorithm must
//! be lossless on arbitrary inputs, and sizes must be internally consistent.

use attache_compress::bdi::Bdi;
use attache_compress::fpc::Fpc;
use attache_compress::{Block, CompressionEngine, Compressor, BLOCK_SIZE};
use proptest::prelude::*;

fn block_strategy() -> impl Strategy<Value = Block> {
    prop::array::uniform32(any::<u8>()).prop_flat_map(|lo| {
        prop::array::uniform32(any::<u8>()).prop_map(move |hi| {
            let mut b = [0u8; BLOCK_SIZE];
            b[..32].copy_from_slice(&lo);
            b[32..].copy_from_slice(&hi);
            b
        })
    })
}

/// Structured blocks: more likely to be compressible, exercising all
/// encodings rather than just the uncompressed path.
fn structured_block_strategy() -> impl Strategy<Value = Block> {
    (
        any::<u64>(),
        prop::collection::vec(-300i64..300, 8),
        0usize..4,
    )
        .prop_map(|(base, deltas, kind)| {
            let mut b = [0u8; BLOCK_SIZE];
            match kind {
                0 => {
                    // u64 base + small deltas
                    for (chunk, d) in b.chunks_exact_mut(8).zip(&deltas) {
                        chunk.copy_from_slice(&(base.wrapping_add(*d as u64)).to_le_bytes());
                    }
                }
                1 => {
                    // small u32 values
                    for (i, chunk) in b.chunks_exact_mut(4).enumerate() {
                        let v = (deltas[i % 8] & 0xFF) as u32;
                        chunk.copy_from_slice(&v.to_le_bytes());
                    }
                }
                2 => {
                    // repeated 8B value
                    for chunk in b.chunks_exact_mut(8) {
                        chunk.copy_from_slice(&base.to_le_bytes());
                    }
                }
                _ => {
                    // sparse: mostly zero with a few words set
                    for (i, d) in deltas.iter().enumerate() {
                        let w = (*d as u32).to_le_bytes();
                        b[i * 8..i * 8 + 4].copy_from_slice(&w);
                    }
                }
            }
            b
        })
}

proptest! {
    #[test]
    fn bdi_roundtrips_random_blocks(block in block_strategy()) {
        let bdi = Bdi::new();
        if let Some(image) = bdi.compress(&block) {
            prop_assert!(image.size() < BLOCK_SIZE);
            prop_assert_eq!(bdi.decompress(&image), block);
        }
    }

    #[test]
    fn fpc_roundtrips_random_blocks(block in block_strategy()) {
        let fpc = Fpc::new();
        if let Some(image) = fpc.compress(&block) {
            prop_assert!(image.size() < BLOCK_SIZE);
            prop_assert_eq!(fpc.decompress(&image), block);
        }
    }

    #[test]
    fn engine_roundtrips_any_block(block in block_strategy()) {
        let engine = CompressionEngine::new();
        let outcome = engine.compress(&block);
        prop_assert_eq!(engine.decompress(&outcome), block);
    }

    #[test]
    fn engine_roundtrips_structured_blocks(block in structured_block_strategy()) {
        let engine = CompressionEngine::new();
        let outcome = engine.compress(&block);
        prop_assert_eq!(engine.decompress(&outcome), block);
        prop_assert!(outcome.compressed_size() <= BLOCK_SIZE);
    }

    #[test]
    fn structured_blocks_usually_fit_subrank(block in structured_block_strategy()) {
        // Not a strict guarantee, but the engine must never report a
        // compressed size larger than the block.
        let engine = CompressionEngine::new();
        prop_assert!(engine.compressed_size(&block) <= BLOCK_SIZE);
    }

    #[test]
    fn fpc_bit_accounting_is_exact(block in structured_block_strategy()) {
        let bits = Fpc::compressed_bits(&block) as usize;
        match Fpc::new().compress(&block) {
            Some(image) => prop_assert_eq!(image.size(), bits.div_ceil(8)),
            None => prop_assert!(bits.div_ceil(8) >= BLOCK_SIZE),
        }
    }
}
