//! Scalar-vs-vectorized equivalence: the lane-wise BDI/FPC kernels and the
//! early-exit engine must be *bit-identical* to the element-at-a-time
//! reference implementations kept in `bdi::scalar` / `fpc::scalar`.
//!
//! Coverage is layered:
//!
//! * targeted constructions for every BDI encoding and every FPC pattern
//!   class, plus boundary blocks (all-zero, all-ones, single-delta-overflow,
//!   sign-extension corners);
//! * pinned corpus cases (`tests/corpus/bdi-lane-sign-extend.case`,
//!   `fpc-two-halves-bias.case`) for the divergence hazards found while
//!   writing the lane kernels;
//! * seeded random sweeps over all four testkit block samplers, including
//!   corrupted-image decode totality;
//! * the `CompressionOutcome` regression: the early-exit engine must match
//!   an exhaustive run-both-algorithms reference on randomized blocks.
//!
//! On divergence the failing block is shrunk (bytes zeroed greedily, then
//! halved) and printed in corpus `lane-N` form, ready to pin.

use attache_compress::bdi::{self, Bdi, Encoding};
use attache_compress::fpc::{self, Fpc};
use attache_compress::{
    Block, Compressed, CompressionEngine, CompressionOutcome, Compressor, BLOCK_SIZE,
};
use attache_testkit::{incompressible_block, CorpusCase, Gen};

const CASES: u64 = 512;

/// Every scalar/vector agreement check on one block. Returns a description
/// of the first divergence instead of panicking so the shrinker can reuse it.
fn divergence(block: &Block) -> Option<String> {
    let vec_enc = Bdi::best_encoding(block);
    let ref_enc = bdi::scalar::best_encoding(block);
    if vec_enc != ref_enc {
        return Some(format!("BDI best_encoding: {vec_enc:?} != {ref_enc:?}"));
    }
    let vec_bdi = Bdi::new().compress(block);
    let ref_bdi = bdi::scalar::compress(block);
    if vec_bdi != ref_bdi {
        return Some("BDI image bytes".into());
    }
    if let Some(image) = &vec_bdi {
        let vec_back = Bdi::new().try_decompress(image);
        let ref_back = bdi::scalar::try_decompress(image);
        if vec_back != ref_back {
            return Some("BDI decompress".into());
        }
        if vec_back.as_ref() != Some(block) {
            return Some("BDI roundtrip".into());
        }
    }
    for chunk in block.chunks_exact(4) {
        let w = u32::from_le_bytes(chunk.try_into().unwrap());
        if fpc::classify_word(w) != fpc::scalar::classify_word(w) {
            return Some(format!("FPC classify({w:#010x})"));
        }
    }
    if Fpc::compressed_bits(block) != fpc::scalar::compressed_bits(block) {
        return Some("FPC compressed_bits".into());
    }
    let vec_fpc = Fpc::new().compress(block);
    let ref_fpc = fpc::scalar::compress(block);
    if vec_fpc != ref_fpc {
        return Some("FPC image bytes".into());
    }
    if let Some(image) = &vec_fpc {
        let vec_back = Fpc::new().try_decompress(image);
        let ref_back = fpc::scalar::try_decompress(image);
        if vec_back != ref_back {
            return Some("FPC decompress".into());
        }
        if vec_back.as_ref() != Some(block) {
            return Some("FPC roundtrip".into());
        }
    }
    let engine = CompressionEngine::new();
    let outcome = engine.compress(block);
    let reference = reference_engine(block);
    if outcome != reference {
        return Some("engine outcome vs exhaustive reference".into());
    }
    if engine.compressed_size(block) != reference.compressed_size() {
        return Some("engine analysis-only compressed_size".into());
    }
    if engine.fits_subrank(block) != reference.fits_subrank() {
        return Some("engine analysis-only fits_subrank".into());
    }
    None
}

/// The exhaustive both-algorithms reference the engine's early exit must
/// reproduce: run scalar BDI *and* scalar FPC, keep the smaller image, BDI
/// winning ties.
fn reference_engine(block: &Block) -> CompressionOutcome {
    let bdi = bdi::scalar::compress(block);
    let fpc = fpc::scalar::compress(block);
    let best = match (bdi, fpc) {
        (Some(a), Some(b)) => Some(if a.size() <= b.size() { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    match best {
        Some(c) => CompressionOutcome::Compressed(c),
        None => CompressionOutcome::Uncompressed(*block),
    }
}

/// Greedy block shrinker: zero out bytes, then halve surviving bytes, as
/// long as the divergence persists. 64 bytes is small enough that a few
/// greedy sweeps reach a local minimum quickly.
fn shrink_block(mut block: Block) -> Block {
    loop {
        let mut changed = false;
        for i in 0..BLOCK_SIZE {
            if block[i] == 0 {
                continue;
            }
            for candidate in [0u8, block[i] >> 1] {
                let old = block[i];
                block[i] = candidate;
                if divergence(&block).is_some() {
                    changed = true;
                    break;
                }
                block[i] = old;
            }
        }
        if !changed {
            return block;
        }
    }
}

/// Asserts full agreement, shrinking and printing a pin-ready case on
/// failure.
#[track_caller]
fn assert_agree(block: &Block, ctx: &str) {
    if let Some(what) = divergence(block) {
        let minimal = shrink_block(*block);
        let what_min = divergence(&minimal).unwrap_or_else(|| what.clone());
        let mut case = CorpusCase::new("shrunk-divergence");
        for (i, chunk) in minimal.chunks_exact(8).enumerate() {
            case.set(
                &format!("lane-{i}"),
                u64::from_le_bytes(chunk.try_into().unwrap()),
            );
        }
        panic!(
            "scalar/vector divergence [{ctx}]: {what}\n\
             shrunk to [{what_min}], pin with:\n{}",
            case.to_text()
        );
    }
}

fn block_from_lanes(lanes: [u64; 8]) -> Block {
    let mut block = [0u8; BLOCK_SIZE];
    for (chunk, lane) in block.chunks_exact_mut(8).zip(lanes) {
        chunk.copy_from_slice(&lane.to_le_bytes());
    }
    block
}

fn corpus_block(name: &str) -> Block {
    let case = CorpusCase::load(name);
    let mut lanes = [0u64; 8];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = case.require(&format!("lane-{i}"));
    }
    block_from_lanes(lanes)
}

/// A block that exercises a specific BDI encoding (checked, so the suite
/// fails loudly if a construction stops covering its class).
fn bdi_class_block(enc: Encoding) -> Block {
    let mut block = [0u8; BLOCK_SIZE];
    match enc {
        Encoding::Zeros => {}
        Encoding::Repeated => {
            for chunk in block.chunks_exact_mut(8) {
                chunk.copy_from_slice(&0xA5A5_DEAD_BEEF_0001u64.to_le_bytes());
            }
        }
        Encoding::B8D1 => {
            for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&(0x7000_0000_0000u64 + i as u64 * 3).to_le_bytes());
            }
        }
        Encoding::B8D2 => {
            for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&(0x7000_0000_0000u64 + i as u64 * 500).to_le_bytes());
            }
        }
        Encoding::B8D4 => {
            for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&(0x7000_0000_0000u64 + i as u64 * 100_000).to_le_bytes());
            }
        }
        Encoding::B4D1 => {
            // 4-byte pointers with tiny spread; too wide for B8D1's single
            // 1-byte delta set? No — a uniform u32 array is also B8D2-able,
            // so force 4-byte granularity with alternating pairs.
            for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
                let v = 0x4000_0000u32 + ((i as u32 * 37) & 0x3F);
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        Encoding::B4D2 => {
            for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
                let v = 0x4000_0000u32 + i as u32 * 400;
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        Encoding::B2D1 => {
            for (i, chunk) in block.chunks_exact_mut(2).enumerate() {
                let v = 0x4000u16 + ((i as u16 * 7) & 0x1F);
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    block
}

#[test]
fn bdi_encoding_classes_agree() {
    for enc in [
        Encoding::Zeros,
        Encoding::Repeated,
        Encoding::B8D1,
        Encoding::B8D2,
        Encoding::B8D4,
        Encoding::B4D1,
        Encoding::B4D2,
        Encoding::B2D1,
    ] {
        let block = bdi_class_block(enc);
        // The construction must actually land in a compressible class...
        assert!(
            Bdi::best_encoding(&block).is_some(),
            "construction for {enc:?} no longer compresses"
        );
        // ...and scalar/vector must agree everywhere on it.
        assert_agree(&block, &format!("bdi class {enc:?}"));
    }
    // The intended-class pins that are stable by construction:
    assert_eq!(
        Bdi::best_encoding(&bdi_class_block(Encoding::Zeros)),
        Some(Encoding::Zeros)
    );
    assert_eq!(
        Bdi::best_encoding(&bdi_class_block(Encoding::Repeated)),
        Some(Encoding::Repeated)
    );
    assert_eq!(
        Bdi::best_encoding(&bdi_class_block(Encoding::B8D1)),
        Some(Encoding::B8D1)
    );
}

#[test]
fn fpc_pattern_classes_agree() {
    // One uniform block per pattern class (word chosen to classify there).
    let class_words: [(u32, &str); 7] = [
        (0, "zero-run"),
        (5, "imm4"),
        (0xFFFF_FF85, "imm8"),
        (21_000, "imm16"),
        (0x0BAD_0000, "padded-half"),
        (0xFFFB_0003u32.rotate_left(16), "two-halves"),
        (0x6363_6363, "repeated-bytes"),
    ];
    for (word, ctx) in class_words {
        let mut block = [0u8; BLOCK_SIZE];
        for chunk in block.chunks_exact_mut(4) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        assert_agree(&block, ctx);
    }
    // A mixed line covering all classes at once, including Uncompressed.
    let words: [u32; 16] = [
        0, 0, 0, 7, 0xFFFF_FF80, 30_000, 0x1234_0000, 0x0042_0017, 0xABAB_ABAB, 0x1234_5678, 0, 5,
        0, 0, 0, 0x8000_0000,
    ];
    let mut block = [0u8; BLOCK_SIZE];
    for (chunk, w) in block.chunks_exact_mut(4).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    assert_agree(&block, "fpc mixed classes");
}

#[test]
fn boundary_blocks_agree() {
    // All-zero and all-ones.
    assert_agree(&[0u8; BLOCK_SIZE], "all-zero");
    assert_agree(&[0xFFu8; BLOCK_SIZE], "all-ones");
    // Single-delta-overflow: a perfectly B8D1-compressible line except one
    // element exactly one past the delta range.
    let base = 0x7000_0000_0000u64;
    for overflow in [128i64, -129] {
        let mut block = [0u8; BLOCK_SIZE];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            let v = if i == 5 {
                base.wrapping_add(overflow as u64)
            } else {
                base
            };
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        assert_agree(&block, &format!("single-delta-overflow {overflow}"));
    }
    // Sign-extension corners in every element width.
    for lane in [
        0x8000_0000_0000_0000u64,
        0x7FFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_8000_0000,
        0x0000_0000_7FFF_FFFF,
        0xFFFF_8000_0000_7FFF,
        0x0080_FF80_FF7F_007F,
    ] {
        let mut lanes = [0u64; 8];
        lanes[3] = lane;
        assert_agree(&block_from_lanes(lanes), &format!("sign corner {lane:#x}"));
    }
}

#[test]
fn pinned_corpus_cases_agree() {
    assert_agree(&corpus_block("bdi-lane-sign-extend"), "corpus bdi");
    // The pinned hazard: the explicit-base delta here only "fits" if the
    // kernel wraps the subtraction in 32 bits. The reference (and thus the
    // lane kernel) must reject every base-delta encoding.
    assert_eq!(Bdi::best_encoding(&corpus_block("bdi-lane-sign-extend")), None);
    assert_agree(&corpus_block("fpc-two-halves-bias"), "corpus fpc");
}

#[test]
fn random_blocks_agree() {
    let mut g = Gen::new(11);
    for case in 0..CASES {
        assert_agree(&g.block(), &format!("random case {case}"));
    }
}

#[test]
fn structured_blocks_agree() {
    let mut g = Gen::new(12);
    for case in 0..CASES {
        assert_agree(&g.structured_block(), &format!("structured case {case}"));
    }
}

#[test]
fn biased_blocks_agree() {
    let mut g = Gen::new(13);
    for case in 0..CASES {
        assert_agree(&g.biased_block(), &format!("biased case {case}"));
    }
}

#[test]
fn incompressible_blocks_agree() {
    for seed in 0..CASES {
        assert_agree(&incompressible_block(seed), &format!("incompressible {seed}"));
    }
}

#[test]
fn corrupted_images_decode_identically() {
    // Decode totality: truncated and bit-flipped payloads must produce the
    // same Option<Block> from both reader generations, never a panic.
    let mut g = Gen::new(14);
    for case in 0..CASES {
        let block = g.structured_block();
        let outcome = CompressionEngine::new().compress(&block);
        let image = match outcome {
            CompressionOutcome::Compressed(c) => c,
            CompressionOutcome::Uncompressed(_) => continue,
        };
        let payload = image.payload().to_vec();
        // Truncations at every length.
        for cut in 0..payload.len() {
            let c = Compressed::from_parts(image.algorithm(), &payload[..cut]);
            assert_eq!(
                Bdi::new().try_decompress(&c),
                bdi::scalar::try_decompress(&c),
                "case {case} cut {cut} (bdi)"
            );
            assert_eq!(
                Fpc::new().try_decompress(&c),
                fpc::scalar::try_decompress(&c),
                "case {case} cut {cut} (fpc)"
            );
        }
        // A few deterministic bit flips.
        for flip in 0..4u64 {
            let mut bytes = payload.clone();
            let bit = (g.next_u64() % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            let c = Compressed::from_parts(image.algorithm(), &bytes);
            assert_eq!(
                Bdi::new().try_decompress(&c),
                bdi::scalar::try_decompress(&c),
                "case {case} flip {flip} (bdi)"
            );
            assert_eq!(
                Fpc::new().try_decompress(&c),
                fpc::scalar::try_decompress(&c),
                "case {case} flip {flip} (fpc)"
            );
        }
    }
}

#[test]
fn engine_early_exit_matches_exhaustive_reference() {
    // The CompressionOutcome regression (the old engine ran both
    // algorithms unconditionally): on randomized blocks the early-exit
    // engine must pick the same algorithm and the same image size as the
    // exhaustive reference — and the outcome must be *equal*, which also
    // pins the winning image's bytes.
    let mut g = Gen::new(15);
    let engine = CompressionEngine::new();
    for case in 0..CASES {
        let block = match case % 4 {
            0 => g.block(),
            1 => g.structured_block(),
            2 => g.biased_block(),
            _ => incompressible_block(case),
        };
        let outcome = engine.compress(&block);
        let reference = reference_engine(&block);
        assert_eq!(
            outcome.algorithm(),
            reference.algorithm(),
            "case {case}: chosen algorithm"
        );
        assert_eq!(
            outcome.compressed_size(),
            reference.compressed_size(),
            "case {case}: image size"
        );
        assert_eq!(outcome, reference, "case {case}: full outcome");
    }
}
