//! CRAM-style implicit compression markers (Young/Kariyappa/Qureshi).
//!
//! Where Attaché's BLEM header carries a boot-time CID register that the
//! controller *compares* against, CRAM removes explicit metadata entirely:
//! a compressed line simply *begins with* a well-known 16-bit **marker
//! word**, and anything else is an uncompressed line. The residual problem
//! is the incompressible line whose natural content happens to start with
//! the marker — CRAM (following Touché's escape encoding) rewrites such a
//! line to start with a distinct **escape word** and parks the displaced
//! bytes in an exception region, paying extra traffic only on that rare
//! collision.
//!
//! This module is the pure encoding half: marker derivation, the
//! algorithm-selector bit, and the three-way classification a controller
//! performs on the first word of every read. The stateful engine that
//! owns the exception store lives in `attache-core::cram`.

use crate::Algorithm;

/// The three things the first 16-bit word of a stored line can mean under
/// the CRAM encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerClass {
    /// The word is the marker: a compressed payload follows, produced by
    /// the carried algorithm.
    Compressed(Algorithm),
    /// The word is the escape: an uncompressed line whose natural first
    /// two bytes collided with the marker and were parked in the
    /// exception region.
    Escape,
    /// Any other word: an uncompressed line stored verbatim.
    Plain,
}

/// The boot-time marker/escape word pair.
///
/// The marker's least-significant bit is reserved as the BDI/FPC
/// selector (mirroring the BLEM header's info bit), so a marker "match"
/// ignores bit 0. The escape word is the marker with the top bit
/// flipped — distinct from both marker encodings by construction.
///
/// # Example
///
/// ```
/// use attache_compress::marker::{MarkerClass, MarkerCodec};
/// use attache_compress::Algorithm;
///
/// let codec = MarkerCodec::from_seed(42);
/// let word = codec.encode(Algorithm::Fpc);
/// assert_eq!(codec.classify(word), MarkerClass::Compressed(Algorithm::Fpc));
/// assert_eq!(codec.classify(codec.escape_word()), MarkerClass::Escape);
/// assert!(codec.collides(word) && codec.collides(codec.escape_word()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerCodec {
    /// The marker with bit 0 (the algorithm selector) cleared.
    marker_base: u16,
}

impl MarkerCodec {
    /// Draws the marker word from `seed` (the "chosen randomly at
    /// boot-time" step, made deterministic for reproducibility — the
    /// same convention as the BLEM CID register).
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // A different slice of the mix than the CID draw, bit 0 cleared
        // for the algorithm selector.
        Self {
            marker_base: (z >> 23) as u16 & !1,
        }
    }

    /// Creates a codec with an explicit marker word (tests,
    /// cross-validation). Bit 0 is ignored.
    pub fn from_value(marker: u16) -> Self {
        Self {
            marker_base: marker & !1,
        }
    }

    /// The marker word with the algorithm selector cleared.
    pub fn marker_word(&self) -> u16 {
        self.marker_base
    }

    /// The escape word that replaces a colliding line's first two bytes.
    pub fn escape_word(&self) -> u16 {
        self.marker_base ^ 0x8000
    }

    /// Builds the stored first word for a compressed line.
    pub fn encode(&self, algorithm: Algorithm) -> u16 {
        let selector: u16 = match algorithm {
            Algorithm::Bdi => 0,
            Algorithm::Fpc => 1,
        };
        self.marker_base | selector
    }

    /// Classifies the first word of a stored line exactly as the
    /// controller does after the optimistic half read returns.
    pub fn classify(&self, word: u16) -> MarkerClass {
        if word & !1 == self.marker_base {
            let algorithm = if word & 1 == 0 {
                Algorithm::Bdi
            } else {
                Algorithm::Fpc
            };
            MarkerClass::Compressed(algorithm)
        } else if word == self.escape_word() {
            MarkerClass::Escape
        } else {
            MarkerClass::Plain
        }
    }

    /// Whether a verbatim uncompressed line beginning with `word` would
    /// be misclassified and therefore needs the escape encoding: true
    /// for both marker encodings *and* the escape word itself (which
    /// must stay reserved for parked lines).
    pub fn collides(&self, word: u16) -> bool {
        !matches!(self.classify(word), MarkerClass::Plain)
    }

    /// The probability that a random 16-bit first word collides: three
    /// reserved words (two marker encodings + the escape) out of 2^16.
    pub fn collision_probability(&self) -> f64 {
        3.0 / 65536.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_classify_roundtrip() {
        for seed in 0..64u64 {
            let codec = MarkerCodec::from_seed(seed);
            for alg in [Algorithm::Bdi, Algorithm::Fpc] {
                assert_eq!(
                    codec.classify(codec.encode(alg)),
                    MarkerClass::Compressed(alg)
                );
            }
            assert_eq!(codec.classify(codec.escape_word()), MarkerClass::Escape);
        }
    }

    #[test]
    fn escape_is_distinct_from_both_marker_encodings() {
        for seed in 0..256u64 {
            let codec = MarkerCodec::from_seed(seed);
            assert_ne!(codec.escape_word(), codec.encode(Algorithm::Bdi));
            assert_ne!(codec.escape_word(), codec.encode(Algorithm::Fpc));
            assert_ne!(codec.escape_word() & !1, codec.marker_word());
        }
    }

    #[test]
    fn exactly_three_words_collide() {
        let codec = MarkerCodec::from_value(0xC0DE);
        let colliding = (0..=u16::MAX).filter(|&w| codec.collides(w)).count();
        assert_eq!(colliding, 3);
    }

    #[test]
    fn plain_words_classify_plain() {
        let codec = MarkerCodec::from_value(0x1234 & !1);
        for w in [0u16, 0xFFFF, 0x1236, 0x1230] {
            assert_eq!(codec.classify(w), MarkerClass::Plain);
            assert!(!codec.collides(w));
        }
    }

    #[test]
    fn marker_draw_is_deterministic_and_seed_sensitive() {
        assert_eq!(
            MarkerCodec::from_seed(42).marker_word(),
            MarkerCodec::from_seed(42).marker_word()
        );
        let distinct: std::collections::HashSet<u16> =
            (0..128u64).map(|s| MarkerCodec::from_seed(s).marker_word()).collect();
        assert!(distinct.len() > 100, "seed draw should spread markers");
    }
}
