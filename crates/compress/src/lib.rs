//! Cacheline compression algorithms for the Attaché memory-compression stack.
//!
//! This crate implements, from scratch, the two single-cycle compression
//! algorithms the Attaché paper (MICRO 2018) relies on:
//!
//! * [Base-Delta-Immediate (BDI)](bdi) — Pekhimenko et al., PACT 2012.
//! * [Frequent Pattern Compression (FPC)](fpc) — Alameldeen & Wood,
//!   UW-Madison TR-1500.
//!
//! plus a [`CompressionEngine`] that, like the paper's
//! compression-decompression engine, runs both algorithms on every 64-byte
//! block and keeps the best result.
//!
//! # Example
//!
//! ```
//! use attache_compress::{CompressionEngine, Block, BLOCK_SIZE};
//!
//! let engine = CompressionEngine::new();
//! let block: Block = [0u8; BLOCK_SIZE]; // an all-zero cacheline
//! let outcome = engine.compress(&block);
//! assert!(outcome.compressed_size() <= 8);
//! let restored = engine.decompress(&outcome);
//! assert_eq!(restored, block);
//! ```

#![warn(missing_docs)]

pub mod bdi;
pub mod engine;
pub mod fpc;
pub mod marker;

pub use engine::{CompressionEngine, CompressionOutcome};
pub use marker::{MarkerClass, MarkerCodec};

/// The size of a main-memory block (one cacheline) in bytes.
pub const BLOCK_SIZE: usize = 64;

/// A 64-byte main-memory block (one cacheline).
pub type Block = [u8; BLOCK_SIZE];

/// The compression target the Attaché paper uses: a block must fit in 30
/// bytes so that, together with the 2-byte metadata header (15-bit CID +
/// 1-bit XID), it occupies exactly half a cacheline (one sub-rank beat).
pub const SUBRANK_TARGET_BYTES: usize = 30;

/// Identifies which algorithm produced a compressed image.
///
/// The Attaché paper (§IV-A.5, Table I) shortens the CID by one bit to make
/// room for exactly this selector when both algorithms are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Base-Delta-Immediate.
    Bdi,
    /// Frequent Pattern Compression.
    Fpc,
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Algorithm::Bdi => f.write_str("BDI"),
            Algorithm::Fpc => f.write_str("FPC"),
        }
    }
}

/// A compressed image of a 64-byte block together with the algorithm that
/// produced it.
///
/// The payload length **is** the compressed size in bytes; the hardware
/// analogue is the shifted/packed data lane contents.
///
/// The payload lives in a fixed inline buffer (a compressed image is by
/// definition smaller than [`BLOCK_SIZE`]) so that the compression hot path
/// — one `Compressed` per line touched — never heap-allocates. Unused tail
/// bytes are always zero, which keeps the derived `PartialEq`/`Hash` honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compressed {
    algorithm: Algorithm,
    len: u8,
    payload: [u8; BLOCK_SIZE],
}

impl Compressed {
    /// Creates a compressed image from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`BLOCK_SIZE`] bytes — that is not a
    /// compressed image.
    pub fn from_parts(algorithm: Algorithm, payload: &[u8]) -> Self {
        assert!(
            payload.len() <= BLOCK_SIZE,
            "compressed payload larger than a block"
        );
        let mut buf = [0u8; BLOCK_SIZE];
        buf[..payload.len()].copy_from_slice(payload);
        Self {
            algorithm,
            len: payload.len() as u8,
            payload: buf,
        }
    }

    /// The algorithm that produced this image.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The compressed size in bytes.
    pub fn size(&self) -> usize {
        self.len as usize
    }

    /// The encoded payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload[..self.len as usize]
    }
}

/// A lossless 64-byte-block compressor.
///
/// Implementations must guarantee `decompress(compress(b)) == b` for every
/// block for which `compress` returns `Some`.
pub trait Compressor {
    /// A short human-readable name ("BDI", "FPC", ...).
    fn name(&self) -> &'static str;

    /// Attempts to compress `block`.
    ///
    /// Returns `None` when the algorithm cannot represent the block in fewer
    /// than [`BLOCK_SIZE`] bytes.
    fn compress(&self, block: &Block) -> Option<Compressed>;

    /// Reverses [`Compressor::compress`].
    ///
    /// # Panics
    ///
    /// May panic if `image` was not produced by this compressor.
    fn decompress(&self, image: &Compressed) -> Block;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::Bdi.to_string(), "BDI");
        assert_eq!(Algorithm::Fpc.to_string(), "FPC");
    }

    #[test]
    fn compressed_reports_parts() {
        let c = Compressed::from_parts(Algorithm::Bdi, &[1, 2, 3]);
        assert_eq!(c.algorithm(), Algorithm::Bdi);
        assert_eq!(c.size(), 3);
        assert_eq!(c.payload(), &[1, 2, 3]);
    }
}
