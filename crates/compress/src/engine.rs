//! The composite compression-decompression engine.
//!
//! Mirrors the engine in the Attaché paper's memory controller (§V): every
//! block is compressed with **both** BDI and FPC and the smaller image wins.
//! One extra CID bit selects the algorithm on decompression (Table I).
//!
//! The software implementation does *not* materialize both images: each
//! algorithm's one-pass analysis yields its exact compressed size first
//! ([`bdi::BdiAnalysis`](crate::bdi) / `FpcAnalysis`), the BDI-vs-FPC
//! tie-break is decided on those sizes, and only the winner's token stream
//! is emitted. Because the analysis sizes equal the materialized sizes
//! bit-for-bit (pinned by the kernels' own accounting tests and the
//! `engine_vs_reference` regression suite), the outcome is identical to
//! running both algorithms exhaustively — just cheaper. As a further
//! early-exit, a BDI result at or below [`FPC_MIN_BYTES`] skips the FPC
//! analysis entirely: no FPC stream is shorter than two bytes.

use crate::bdi::{Bdi, BdiAnalysis};
use crate::fpc::{Fpc, FpcAnalysis};
use crate::{Algorithm, Block, Compressed, Compressor, BLOCK_SIZE, SUBRANK_TARGET_BYTES};

/// The smallest image FPC can produce for any block: an all-zero line is
/// two zero-run tokens (12 bits, 2 bytes), and any non-zero word only adds
/// bits. When BDI already proved a size at or below this, FPC provably
/// cannot win the `bdi <= fpc` tie-break, so its analysis is skipped.
const FPC_MIN_BYTES: usize = 2;

/// The result of running a block through the [`CompressionEngine`].
///
/// Both variants hold inline data (a `Compressed` image is itself a fixed
/// buffer), so producing an outcome never heap-allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionOutcome {
    /// The block compressed; the image is strictly smaller than the block.
    Compressed(Compressed),
    /// Neither algorithm could shrink the block; stored verbatim.
    Uncompressed(Block),
}

impl CompressionOutcome {
    /// The size this block occupies after compression (64 when uncompressed).
    pub fn compressed_size(&self) -> usize {
        match self {
            CompressionOutcome::Compressed(c) => c.size(),
            CompressionOutcome::Uncompressed(_) => BLOCK_SIZE,
        }
    }

    /// The winning algorithm, or `None` when the block stayed uncompressed.
    pub fn algorithm(&self) -> Option<Algorithm> {
        match self {
            CompressionOutcome::Compressed(c) => Some(c.algorithm()),
            CompressionOutcome::Uncompressed(_) => None,
        }
    }

    /// Whether the image fits the Attaché sub-rank target: the compressed
    /// data plus a 2-byte metadata header within half a cacheline.
    pub fn fits_subrank(&self) -> bool {
        self.compressed_size() <= SUBRANK_TARGET_BYTES
    }
}

/// Runs BDI and FPC side by side and keeps the smaller image, exactly like
/// the paper's compression-decompression engine.
///
/// # Example
///
/// ```
/// use attache_compress::{CompressionEngine, BLOCK_SIZE};
///
/// let engine = CompressionEngine::new();
/// let mut block = [0u8; BLOCK_SIZE];
/// for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
///     chunk.copy_from_slice(&(0x2000u64 + i as u64).to_le_bytes());
/// }
/// let outcome = engine.compress(&block);
/// assert!(outcome.fits_subrank());
/// assert_eq!(engine.decompress(&outcome), block);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionEngine {
    bdi: Bdi,
    fpc: Fpc,
}

impl CompressionEngine {
    /// Creates an engine running both BDI and FPC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `block`, keeping the best of BDI and FPC. The tie-break
    /// is exactly the paper's: at equal sizes BDI wins.
    pub fn compress(&self, block: &Block) -> CompressionOutcome {
        let bdi = BdiAnalysis::new(block);
        let bdi_enc = bdi.best();
        if let Some(enc) = bdi_enc {
            if enc.compressed_size() <= FPC_MIN_BYTES {
                return CompressionOutcome::Compressed(bdi.emit(enc));
            }
        }
        let fpc = FpcAnalysis::new(block);
        match (bdi_enc, fpc.compressible()) {
            (Some(enc), true) => {
                if enc.compressed_size() <= fpc.byte_len() {
                    CompressionOutcome::Compressed(bdi.emit(enc))
                } else {
                    CompressionOutcome::Compressed(fpc.emit().expect("analysis said compressible"))
                }
            }
            (Some(enc), false) => CompressionOutcome::Compressed(bdi.emit(enc)),
            (None, true) => {
                CompressionOutcome::Compressed(fpc.emit().expect("analysis said compressible"))
            }
            (None, false) => CompressionOutcome::Uncompressed(*block),
        }
    }

    /// Restores the original 64-byte block from an outcome.
    pub fn decompress(&self, outcome: &CompressionOutcome) -> Block {
        match outcome {
            CompressionOutcome::Compressed(c) => match c.algorithm() {
                Algorithm::Bdi => self.bdi.decompress(c),
                Algorithm::Fpc => self.fpc.decompress(c),
            },
            CompressionOutcome::Uncompressed(b) => *b,
        }
    }

    /// Bounds-checked counterpart of [`decompress`](Self::decompress):
    /// returns `None` when the image's payload does not decode cleanly
    /// under its claimed algorithm. The fault-injection layer flips bits
    /// in stored images, so corrupted payloads must not panic the engine.
    pub fn try_decompress(&self, outcome: &CompressionOutcome) -> Option<Block> {
        match outcome {
            CompressionOutcome::Compressed(c) => match c.algorithm() {
                Algorithm::Bdi => self.bdi.try_decompress(c),
                Algorithm::Fpc => self.fpc.try_decompress(c),
            },
            CompressionOutcome::Uncompressed(b) => Some(*b),
        }
    }

    /// The size in bytes `block` occupies after best-of compression.
    /// Analysis-only: neither algorithm's image is materialized.
    pub fn compressed_size(&self, block: &Block) -> usize {
        let bdi_size = BdiAnalysis::new(block).best().map(|e| e.compressed_size());
        if let Some(s) = bdi_size {
            if s <= FPC_MIN_BYTES {
                return s;
            }
        }
        let fpc = FpcAnalysis::new(block);
        let fpc_size = fpc.compressible().then(|| fpc.byte_len());
        match (bdi_size, fpc_size) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => BLOCK_SIZE,
        }
    }

    /// Whether `block` compresses to the paper's 30-byte sub-rank target.
    /// Analysis-only, like [`compressed_size`](Self::compressed_size), but
    /// with a stronger early exit: the predicate is
    /// `min(bdi, fpc) <= target`, which is already decided `true` the
    /// moment BDI alone meets the target — FPC's whole analysis pass is
    /// skipped without changing the answer.
    pub fn fits_subrank(&self, block: &Block) -> bool {
        if let Some(enc) = BdiAnalysis::new(block).best() {
            if enc.compressed_size() <= SUBRANK_TARGET_BYTES {
                return true;
            }
        }
        let fpc = FpcAnalysis::new(block);
        fpc.compressible() && fpc.byte_len() <= SUBRANK_TARGET_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_pick_fpc_or_bdi_and_fit_subrank() {
        let engine = CompressionEngine::new();
        let outcome = engine.compress(&[0u8; BLOCK_SIZE]);
        assert!(outcome.fits_subrank());
        assert!(outcome.algorithm().is_some());
    }

    #[test]
    fn engine_prefers_smaller_image() {
        let engine = CompressionEngine::new();
        // Small 32-bit integers: FPC shines (4-bit immediates), BDI needs
        // 4-byte elements with 1-byte deltas.
        let mut block = [0u8; BLOCK_SIZE];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&((i % 6) as u32).to_le_bytes());
        }
        let outcome = engine.compress(&block);
        let bdi_size = Bdi::new().compress(&block).map(|c| c.size());
        let fpc_size = Fpc::new().compress(&block).map(|c| c.size());
        let best = bdi_size
            .into_iter()
            .chain(fpc_size)
            .min()
            .expect("at least one algorithm compresses this");
        assert_eq!(outcome.compressed_size(), best);
    }

    #[test]
    fn incompressible_block_is_stored_verbatim() {
        let engine = CompressionEngine::new();
        let mut block = [0u8; BLOCK_SIZE];
        let mut state = 0xDEAD_BEEF_0BAD_F00Du64;
        for b in block.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8 | 0x81;
        }
        // Note: depending on the pattern this may or may not compress, so
        // only assert the roundtrip invariant.
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block);
    }

    #[test]
    fn pointer_heavy_line_roundtrips() {
        let engine = CompressionEngine::new();
        let mut block = [0u8; BLOCK_SIZE];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(0x7F80_1234_5000u64 + i as u64 * 96).to_le_bytes());
        }
        let outcome = engine.compress(&block);
        assert!(outcome.fits_subrank());
        assert_eq!(engine.decompress(&outcome), block);
    }

    #[test]
    fn subrank_boundary_is_30_bytes() {
        // An outcome of exactly 30 bytes must fit; 31 must not.
        let c30 = CompressionOutcome::Compressed(Compressed::from_parts(Algorithm::Fpc, &[0; 30]));
        let c31 = CompressionOutcome::Compressed(Compressed::from_parts(Algorithm::Fpc, &[0; 31]));
        assert!(c30.fits_subrank());
        assert!(!c31.fits_subrank());
    }

    #[test]
    fn analysis_only_size_matches_materialized_outcome() {
        let engine = CompressionEngine::new();
        // A grab-bag of shapes: zero, repeated, BDI-friendly, FPC-friendly,
        // mixed, and high-entropy.
        let mut blocks: Vec<Block> = vec![[0u8; BLOCK_SIZE]];
        let mut b = [0u8; BLOCK_SIZE];
        for chunk in b.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        }
        blocks.push(b);
        let mut b = [0u8; BLOCK_SIZE];
        for (i, chunk) in b.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(0x7000_0000u64 + i as u64 * 5).to_le_bytes());
        }
        blocks.push(b);
        let mut b = [0u8; BLOCK_SIZE];
        for (i, chunk) in b.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&((i % 3) as u32).to_le_bytes());
        }
        blocks.push(b);
        let mut state = 0x5DEECE66Du64;
        let mut b = [0u8; BLOCK_SIZE];
        for byte in b.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            *byte = (state >> 48) as u8;
        }
        blocks.push(b);
        for block in &blocks {
            let outcome = engine.compress(block);
            assert_eq!(engine.compressed_size(block), outcome.compressed_size());
            assert_eq!(engine.fits_subrank(block), outcome.fits_subrank());
        }
    }

    #[test]
    fn fpc_min_bytes_is_a_true_lower_bound() {
        // The early-exit constant: no FPC stream is shorter than 2 bytes.
        // The shortest possible stream is the all-zero line (12 bits).
        assert_eq!(
            Fpc::new().compress(&[0u8; BLOCK_SIZE]).unwrap().size(),
            FPC_MIN_BYTES
        );
    }
}
