//! The composite compression-decompression engine.
//!
//! Mirrors the engine in the Attaché paper's memory controller (§V): every
//! block is compressed with **both** BDI and FPC and the smaller image wins.
//! One extra CID bit selects the algorithm on decompression (Table I).

use crate::bdi::Bdi;
use crate::fpc::Fpc;
use crate::{Algorithm, Block, Compressed, Compressor, BLOCK_SIZE, SUBRANK_TARGET_BYTES};

/// The result of running a block through the [`CompressionEngine`].
///
/// Both variants hold inline data (a `Compressed` image is itself a fixed
/// buffer), so producing an outcome never heap-allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionOutcome {
    /// The block compressed; the image is strictly smaller than the block.
    Compressed(Compressed),
    /// Neither algorithm could shrink the block; stored verbatim.
    Uncompressed(Block),
}

impl CompressionOutcome {
    /// The size this block occupies after compression (64 when uncompressed).
    pub fn compressed_size(&self) -> usize {
        match self {
            CompressionOutcome::Compressed(c) => c.size(),
            CompressionOutcome::Uncompressed(_) => BLOCK_SIZE,
        }
    }

    /// The winning algorithm, or `None` when the block stayed uncompressed.
    pub fn algorithm(&self) -> Option<Algorithm> {
        match self {
            CompressionOutcome::Compressed(c) => Some(c.algorithm()),
            CompressionOutcome::Uncompressed(_) => None,
        }
    }

    /// Whether the image fits the Attaché sub-rank target: the compressed
    /// data plus a 2-byte metadata header within half a cacheline.
    pub fn fits_subrank(&self) -> bool {
        self.compressed_size() <= SUBRANK_TARGET_BYTES
    }
}

/// Runs BDI and FPC side by side and keeps the smaller image, exactly like
/// the paper's compression-decompression engine.
///
/// # Example
///
/// ```
/// use attache_compress::{CompressionEngine, BLOCK_SIZE};
///
/// let engine = CompressionEngine::new();
/// let mut block = [0u8; BLOCK_SIZE];
/// for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
///     chunk.copy_from_slice(&(0x2000u64 + i as u64).to_le_bytes());
/// }
/// let outcome = engine.compress(&block);
/// assert!(outcome.fits_subrank());
/// assert_eq!(engine.decompress(&outcome), block);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionEngine {
    bdi: Bdi,
    fpc: Fpc,
}

impl CompressionEngine {
    /// Creates an engine running both BDI and FPC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `block` with both algorithms and keeps the best result.
    pub fn compress(&self, block: &Block) -> CompressionOutcome {
        let bdi = self.bdi.compress(block);
        let fpc = self.fpc.compress(block);
        let best = match (bdi, fpc) {
            (Some(a), Some(b)) => Some(if a.size() <= b.size() { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match best {
            Some(c) => CompressionOutcome::Compressed(c),
            None => CompressionOutcome::Uncompressed(*block),
        }
    }

    /// Restores the original 64-byte block from an outcome.
    pub fn decompress(&self, outcome: &CompressionOutcome) -> Block {
        match outcome {
            CompressionOutcome::Compressed(c) => match c.algorithm() {
                Algorithm::Bdi => self.bdi.decompress(c),
                Algorithm::Fpc => self.fpc.decompress(c),
            },
            CompressionOutcome::Uncompressed(b) => *b,
        }
    }

    /// Bounds-checked counterpart of [`decompress`](Self::decompress):
    /// returns `None` when the image's payload does not decode cleanly
    /// under its claimed algorithm. The fault-injection layer flips bits
    /// in stored images, so corrupted payloads must not panic the engine.
    pub fn try_decompress(&self, outcome: &CompressionOutcome) -> Option<Block> {
        match outcome {
            CompressionOutcome::Compressed(c) => match c.algorithm() {
                Algorithm::Bdi => self.bdi.try_decompress(c),
                Algorithm::Fpc => self.fpc.try_decompress(c),
            },
            CompressionOutcome::Uncompressed(b) => Some(*b),
        }
    }

    /// The size in bytes `block` occupies after best-of compression.
    pub fn compressed_size(&self, block: &Block) -> usize {
        self.compress(block).compressed_size()
    }

    /// Whether `block` compresses to the paper's 30-byte sub-rank target.
    pub fn fits_subrank(&self, block: &Block) -> bool {
        self.compress(block).fits_subrank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_pick_fpc_or_bdi_and_fit_subrank() {
        let engine = CompressionEngine::new();
        let outcome = engine.compress(&[0u8; BLOCK_SIZE]);
        assert!(outcome.fits_subrank());
        assert!(outcome.algorithm().is_some());
    }

    #[test]
    fn engine_prefers_smaller_image() {
        let engine = CompressionEngine::new();
        // Small 32-bit integers: FPC shines (4-bit immediates), BDI needs
        // 4-byte elements with 1-byte deltas.
        let mut block = [0u8; BLOCK_SIZE];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&((i % 6) as u32).to_le_bytes());
        }
        let outcome = engine.compress(&block);
        let bdi_size = Bdi::new().compress(&block).map(|c| c.size());
        let fpc_size = Fpc::new().compress(&block).map(|c| c.size());
        let best = bdi_size
            .into_iter()
            .chain(fpc_size)
            .min()
            .expect("at least one algorithm compresses this");
        assert_eq!(outcome.compressed_size(), best);
    }

    #[test]
    fn incompressible_block_is_stored_verbatim() {
        let engine = CompressionEngine::new();
        let mut block = [0u8; BLOCK_SIZE];
        let mut state = 0xDEAD_BEEF_0BAD_F00Du64;
        for b in block.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8 | 0x81;
        }
        // Note: depending on the pattern this may or may not compress, so
        // only assert the roundtrip invariant.
        let outcome = engine.compress(&block);
        assert_eq!(engine.decompress(&outcome), block);
    }

    #[test]
    fn pointer_heavy_line_roundtrips() {
        let engine = CompressionEngine::new();
        let mut block = [0u8; BLOCK_SIZE];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(0x7F80_1234_5000u64 + i as u64 * 96).to_le_bytes());
        }
        let outcome = engine.compress(&block);
        assert!(outcome.fits_subrank());
        assert_eq!(engine.decompress(&outcome), block);
    }

    #[test]
    fn subrank_boundary_is_30_bytes() {
        // An outcome of exactly 30 bytes must fit; 31 must not.
        let c30 = CompressionOutcome::Compressed(Compressed::from_parts(Algorithm::Fpc, &[0; 30]));
        let c31 = CompressionOutcome::Compressed(Compressed::from_parts(Algorithm::Fpc, &[0; 31]));
        assert!(c30.fits_subrank());
        assert!(!c31.fits_subrank());
    }
}
