//! Frequent Pattern Compression (FPC).
//!
//! FPC (Alameldeen & Wood, UW-Madison CS-TR-2004-1500) scans a cacheline in
//! 32-bit words and replaces each word that matches one of seven frequent
//! patterns with a 3-bit prefix plus a short immediate. Words matching no
//! pattern are stored verbatim behind the `111` prefix. The pattern table is
//! tiny, which is why the Attaché paper models FPC as a single-cycle engine.
//!
//! Two implementations live here. The hot path classifies each word
//! branchlessly — all seven pattern tests evaluate at once into a flags
//! word whose lowest set bit *is* the 3-bit prefix (see [`classify_word`])
//! — and packs the token stream through a word-level bit writer instead of
//! bit-at-a-time loops. The original `match`-cascade kernels are kept
//! verbatim in [`scalar`] as the reference implementation; the
//! `scalar_vs_vector` property suite pins the two bit-identical.

use crate::{Algorithm, Block, Compressed, Compressor, BLOCK_SIZE};

const WORDS: usize = BLOCK_SIZE / 4;

/// The FPC word patterns, in prefix order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `000` — a run of 1..=8 zero words (run length in the 3-bit immediate).
    ZeroRun,
    /// `001` — 4-bit sign-extended value.
    Imm4,
    /// `010` — 8-bit sign-extended value.
    Imm8,
    /// `011` — 16-bit sign-extended value.
    Imm16,
    /// `100` — halfword padded with a zero halfword (low half zero).
    PaddedHalf,
    /// `101` — two halfwords, each a sign-extended byte.
    TwoHalves,
    /// `110` — four repeated bytes.
    RepeatedBytes,
    /// `111` — uncompressed 32-bit word.
    Uncompressed,
}

impl Pattern {
    /// Number of immediate data bits following the 3-bit prefix.
    pub fn data_bits(self) -> u32 {
        match self {
            Pattern::ZeroRun => 3,
            Pattern::Imm4 => 4,
            Pattern::Imm8 => 8,
            Pattern::Imm16 | Pattern::PaddedHalf | Pattern::TwoHalves => 16,
            Pattern::RepeatedBytes => 8,
            Pattern::Uncompressed => 32,
        }
    }

    fn prefix(self) -> u64 {
        match self {
            Pattern::ZeroRun => 0b000,
            Pattern::Imm4 => 0b001,
            Pattern::Imm8 => 0b010,
            Pattern::Imm16 => 0b011,
            Pattern::PaddedHalf => 0b100,
            Pattern::TwoHalves => 0b101,
            Pattern::RepeatedBytes => 0b110,
            Pattern::Uncompressed => 0b111,
        }
    }

    fn from_prefix(prefix: u64) -> Pattern {
        match prefix {
            0b000 => Pattern::ZeroRun,
            0b001 => Pattern::Imm4,
            0b010 => Pattern::Imm8,
            0b011 => Pattern::Imm16,
            0b100 => Pattern::PaddedHalf,
            0b101 => Pattern::TwoHalves,
            0b110 => Pattern::RepeatedBytes,
            _ => Pattern::Uncompressed,
        }
    }
}

/// Immediate data bits per pattern, indexed by the 3-bit prefix. Mirrors
/// [`Pattern::data_bits`]; the analysis loop indexes this instead of
/// matching on the enum.
const DATA_BITS: [u32; 8] = [3, 4, 8, 16, 16, 16, 8, 32];

/// Classifies a single 32-bit word (ignoring zero-run merging).
///
/// Branchless: the seven pattern predicates evaluate simultaneously into a
/// flags word — bit *p* set iff the word matches the pattern with prefix
/// *p*, bit 7 always set for `Uncompressed` — and the lowest set bit is the
/// match, because the cascade's priority order equals the prefix order and
/// the narrower immediate classes are subsets of the wider ones.
#[inline]
pub fn classify_word(word: u32) -> Pattern {
    Pattern::from_prefix(classify_prefix(word) as u64)
}

/// The 3-bit prefix `classify_word` assigns, as a plain integer.
#[inline]
fn classify_prefix(w: u32) -> u32 {
    let s = w as i32;
    let zero = (w == 0) as u32;
    let imm4 = ((s.wrapping_add(8) as u32) <= 15) as u32;
    let imm8 = ((s.wrapping_add(128) as u32) <= 255) as u32;
    let imm16 = ((s.wrapping_add(32768) as u32) <= 65535) as u32;
    let padded = ((w & 0xFFFF) == 0) as u32;
    // Both halves sign-extend from a byte: widen the halves into disjoint
    // u64 fields, add the i8 bias to both at once, and check that bits
    // 8..16 of each biased field are clear (i.e. (half + 0x80) mod 2^16
    // is below 0x100).
    let y = ((w & 0xFFFF) as u64) | (((w >> 16) as u64) << 32);
    let t = y.wrapping_add(0x0000_0080_0000_0080);
    let two = ((t & 0x0000_FF00_0000_FF00) == 0) as u32;
    let rep = (w == w.rotate_left(8)) as u32;
    let flags = zero
        | (imm4 << 1)
        | (imm8 << 2)
        | (imm16 << 3)
        | (padded << 4)
        | (two << 5)
        | (rep << 6)
        | 0x80;
    flags.trailing_zeros()
}

/// Worst-case FPC output: 16 words at 3 prefix + 32 data bits = 560 bits,
/// i.e. 70 bytes. The writer's inline buffer rounds up a little.
const WRITER_CAP: usize = BLOCK_SIZE + 8;
const WRITER_WORDS: usize = WRITER_CAP / 8;

/// A little-endian bit writer packing FPC tokens a u64 word at a time.
/// Values are OR-ed into a zeroed inline word buffer, spilling into the
/// next word when a token straddles a 64-bit boundary — the byte stream it
/// produces is identical to setting bits LSB-first one at a time.
#[derive(Debug)]
struct FastBitWriter {
    words: [u64; WRITER_WORDS],
    bit_len: usize,
}

impl Default for FastBitWriter {
    fn default() -> Self {
        Self {
            words: [0; WRITER_WORDS],
            bit_len: 0,
        }
    }
}

impl FastBitWriter {
    /// Appends the low `bits` of `value`. `value` must have no bits set at
    /// or above `bits` (callers pass pre-masked immediates).
    #[inline]
    fn push(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || value >> bits == 0, "unmasked value");
        debug_assert!(self.bit_len + bits as usize <= WRITER_CAP * 8);
        let w = self.bit_len / 64;
        let off = (self.bit_len % 64) as u32;
        self.words[w] |= value << off;
        if off + bits > 64 {
            // off > 0 here, so the shift below is in range.
            self.words[w + 1] |= value >> (64 - off);
        }
        self.bit_len += bits as usize;
    }

    /// Bytes written so far, rounded up to whole bytes.
    fn byte_len(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// The stream as bytes (valid up to `byte_len()`).
    fn bytes(&self) -> [u8; WRITER_CAP] {
        let mut out = [0u8; WRITER_CAP];
        for (chunk, word) in out.chunks_exact_mut(8).zip(self.words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Word-level counterpart of the bit-at-a-time reader: the payload is
/// splatted into u64 words once, then every pull is a shift/mask pair
/// (tokens are at most 32 bits, so at most two words are touched).
#[derive(Debug)]
struct FastBitReader {
    words: [u64; WRITER_WORDS],
    bit_len: usize,
    pos: usize,
}

impl FastBitReader {
    fn new(bytes: &[u8]) -> Self {
        debug_assert!(bytes.len() <= WRITER_CAP);
        let mut buf = [0u8; WRITER_CAP];
        buf[..bytes.len()].copy_from_slice(bytes);
        let mut words = [0u64; WRITER_WORDS];
        for (word, chunk) in words.iter_mut().zip(buf.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self {
            words,
            bit_len: bytes.len() * 8,
            pos: 0,
        }
    }

    /// Pulls `bits <= 32`, or `None` when the stream is exhausted — the
    /// decode path for possibly-corrupt images.
    #[inline]
    fn try_pull(&mut self, bits: u32) -> Option<u64> {
        debug_assert!(bits <= 32);
        if self.pos + bits as usize > self.bit_len {
            return None;
        }
        let w = self.pos / 64;
        let off = (self.pos % 64) as u32;
        let mut v = self.words[w] >> off;
        if off + bits > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        self.pos += bits as usize;
        Some(v & ((1u64 << bits) - 1))
    }
}

/// One-pass analysis of a block: the per-word classes, the zero-word mask,
/// and the exact compressed bit count with zero-run merging applied.
/// Computing this is much cheaper than materializing the token stream, so
/// the engine can compare algorithm sizes before committing to one.
pub(crate) struct FpcAnalysis {
    words: [u32; WORDS],
    classes: [u8; WORDS],
    zmask: u32,
    pub(crate) bits: u32,
}

impl FpcAnalysis {
    pub(crate) fn new(block: &Block) -> Self {
        let mut words = [0u32; WORDS];
        for (w, chunk) in words.iter_mut().zip(block.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut classes = [0u8; WORDS];
        let mut zmask = 0u32;
        for (i, &w) in words.iter().enumerate() {
            let p = classify_prefix(w);
            classes[i] = p as u8;
            zmask |= ((w == 0) as u32) << i;
        }
        let mut bits = 0u32;
        let mut i = 0;
        while i < WORDS {
            if (zmask >> i) & 1 != 0 {
                // A maximal zero run, capped at 8 words per token.
                let run = ((zmask >> i).trailing_ones() as usize).min(8);
                bits += 3 + DATA_BITS[Pattern::ZeroRun.prefix() as usize];
                i += run;
            } else {
                bits += 3 + DATA_BITS[classes[i] as usize];
                i += 1;
            }
        }
        Self {
            words,
            classes,
            zmask,
            bits,
        }
    }

    /// The compressed byte length the token stream will occupy.
    pub(crate) fn byte_len(&self) -> usize {
        (self.bits as usize).div_ceil(8)
    }

    /// Whether the stream beats storing the block verbatim.
    pub(crate) fn compressible(&self) -> bool {
        self.byte_len() < BLOCK_SIZE
    }

    /// Materializes the token stream. Byte-identical to the scalar
    /// emitter: each token is one combined `prefix | data << 3` push.
    pub(crate) fn emit(&self) -> Option<Compressed> {
        if !self.compressible() {
            return None;
        }
        let mut w = FastBitWriter::default();
        let mut i = 0;
        while i < WORDS {
            if (self.zmask >> i) & 1 != 0 {
                let run = ((self.zmask >> i).trailing_ones() as usize).min(8);
                w.push((run as u64 - 1) << 3, 6);
                i += run;
                continue;
            }
            let word = self.words[i];
            let p = self.classes[i] as u32;
            let data = match Pattern::from_prefix(p as u64) {
                Pattern::Imm4 => word as u64 & 0xF,
                Pattern::Imm8 => word as u64 & 0xFF,
                Pattern::Imm16 => word as u64 & 0xFFFF,
                Pattern::PaddedHalf => (word >> 16) as u64,
                Pattern::TwoHalves => (word as u64 & 0xFF) | (((word >> 16) as u64 & 0xFF) << 8),
                Pattern::RepeatedBytes => word as u64 & 0xFF,
                _ => word as u64,
            };
            w.push(p as u64 | (data << 3), 3 + DATA_BITS[p as usize]);
            i += 1;
        }
        debug_assert_eq!(w.bit_len as u32, self.bits);
        Some(Compressed::from_parts(
            Algorithm::Fpc,
            &w.bytes()[..w.byte_len()],
        ))
    }
}

/// The Frequent Pattern Compression compressor.
///
/// # Example
///
/// ```
/// use attache_compress::fpc::Fpc;
/// use attache_compress::Compressor;
///
/// // Small integers compress extremely well under FPC.
/// let mut block = [0u8; 64];
/// for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
///     chunk.copy_from_slice(&(i as u32 % 5).to_le_bytes());
/// }
/// let image = Fpc::new().compress(&block).expect("compressible");
/// assert!(image.size() < 16);
/// assert_eq!(Fpc::new().decompress(&image), block);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fpc;

impl Fpc {
    /// Creates an FPC compressor.
    pub fn new() -> Self {
        Fpc
    }

    /// Bounds-checked decompression: returns `None` instead of panicking
    /// when `image` is not a well-formed FPC image (wrong algorithm, or a
    /// bit stream that runs out before all 16 words decode). The
    /// fault-injection layer stores deliberately corrupted images, so the
    /// decode path must be total over arbitrary bytes.
    pub fn try_decompress(&self, image: &Compressed) -> Option<Block> {
        if image.algorithm() != Algorithm::Fpc {
            return None;
        }
        let mut r = FastBitReader::new(image.payload());
        let mut words = [0u32; WORDS];
        let mut i = 0;
        while i < WORDS {
            let p = Pattern::from_prefix(r.try_pull(3)?);
            match p {
                Pattern::ZeroRun => {
                    let run = r.try_pull(3)? as usize + 1;
                    i += run; // words are already zero
                }
                Pattern::Imm4 => {
                    let v = r.try_pull(4)? as u32;
                    words[i] = ((v << 28) as i32 >> 28) as u32;
                    i += 1;
                }
                Pattern::Imm8 => {
                    let v = r.try_pull(8)? as u32;
                    words[i] = ((v << 24) as i32 >> 24) as u32;
                    i += 1;
                }
                Pattern::Imm16 => {
                    let v = r.try_pull(16)? as u32;
                    words[i] = ((v << 16) as i32 >> 16) as u32;
                    i += 1;
                }
                Pattern::PaddedHalf => {
                    words[i] = (r.try_pull(16)? as u32) << 16;
                    i += 1;
                }
                Pattern::TwoHalves => {
                    let both = r.try_pull(16)? as u32;
                    let lo = ((both << 24) as i32 >> 24) as u32 & 0xFFFF;
                    let hi = (((both >> 8) << 24) as i32 >> 24) as u32 & 0xFFFF;
                    words[i] = lo | (hi << 16);
                    i += 1;
                }
                Pattern::RepeatedBytes => {
                    let b = r.try_pull(8)? as u32;
                    words[i] = b.wrapping_mul(0x0101_0101);
                    i += 1;
                }
                Pattern::Uncompressed => {
                    words[i] = r.try_pull(32)? as u32;
                    i += 1;
                }
            }
        }
        let mut block = [0u8; BLOCK_SIZE];
        for (chunk, w) in block.chunks_exact_mut(4).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        Some(block)
    }

    /// The exact compressed size of `block` in bits, including prefixes.
    pub fn compressed_bits(block: &Block) -> u32 {
        FpcAnalysis::new(block).bits
    }
}

impl Compressor for Fpc {
    fn name(&self) -> &'static str {
        "FPC"
    }

    fn compress(&self, block: &Block) -> Option<Compressed> {
        FpcAnalysis::new(block).emit()
    }

    fn decompress(&self, image: &Compressed) -> Block {
        assert_eq!(image.algorithm(), Algorithm::Fpc, "not an FPC image");
        self.try_decompress(image).expect("corrupt FPC image")
    }
}

/// The original `match`-cascade FPC kernels, kept verbatim as the
/// reference implementation. The `scalar_vs_vector` property suite and the
/// micro-benchmarks drive these against the branchless hot path; simulation
/// code never calls them.
pub mod scalar {
    use super::{Pattern, WORDS, WRITER_CAP};
    use crate::{Algorithm, Block, Compressed, BLOCK_SIZE};

    /// Reference classification: the if-else pattern cascade.
    pub fn classify_word(word: u32) -> Pattern {
        let sword = word as i32;
        if word == 0 {
            Pattern::ZeroRun
        } else if (-8..=7).contains(&sword) {
            Pattern::Imm4
        } else if (i8::MIN as i32..=i8::MAX as i32).contains(&sword) {
            Pattern::Imm8
        } else if (i16::MIN as i32..=i16::MAX as i32).contains(&sword) {
            Pattern::Imm16
        } else if word & 0xFFFF == 0 {
            Pattern::PaddedHalf
        } else if half_is_extended_byte((word & 0xFFFF) as u16)
            && half_is_extended_byte((word >> 16) as u16)
        {
            Pattern::TwoHalves
        } else if word_is_repeated_bytes(word) {
            Pattern::RepeatedBytes
        } else {
            Pattern::Uncompressed
        }
    }

    fn half_is_extended_byte(half: u16) -> bool {
        let s = half as i16;
        (i8::MIN as i16..=i8::MAX as i16).contains(&s)
    }

    fn word_is_repeated_bytes(word: u32) -> bool {
        let b = word & 0xFF;
        word == b | (b << 8) | (b << 16) | (b << 24)
    }

    /// A little-endian bit writer setting one bit at a time.
    #[derive(Debug)]
    struct BitWriter {
        bytes: [u8; WRITER_CAP],
        bit_len: usize,
    }

    impl Default for BitWriter {
        fn default() -> Self {
            Self {
                bytes: [0; WRITER_CAP],
                bit_len: 0,
            }
        }
    }

    impl BitWriter {
        fn push(&mut self, value: u64, bits: u32) {
            debug_assert!(bits <= 64);
            debug_assert!(self.bit_len + bits as usize <= WRITER_CAP * 8);
            for i in 0..bits {
                let bit = (value >> i) & 1;
                let pos = self.bit_len + i as usize;
                self.bytes[pos / 8] |= (bit as u8) << (pos % 8);
            }
            self.bit_len += bits as usize;
        }

        fn byte_len(&self) -> usize {
            self.bit_len.div_ceil(8)
        }
    }

    #[derive(Debug)]
    struct BitReader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> BitReader<'a> {
        fn new(bytes: &'a [u8]) -> Self {
            Self { bytes, pos: 0 }
        }

        fn pull(&mut self, bits: u32) -> u64 {
            let mut v = 0u64;
            for i in 0..bits {
                let pos = self.pos + i as usize;
                let bit = (self.bytes[pos / 8] >> (pos % 8)) & 1;
                v |= (bit as u64) << i;
            }
            self.pos += bits as usize;
            v
        }

        fn try_pull(&mut self, bits: u32) -> Option<u64> {
            if self.pos + bits as usize > self.bytes.len() * 8 {
                return None;
            }
            Some(self.pull(bits))
        }
    }

    fn block_words(block: &Block) -> [u32; WORDS] {
        let mut words = [0u32; WORDS];
        for (w, chunk) in words.iter_mut().zip(block.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        words
    }

    /// Reference compressor: classify-and-pack, one word at a time.
    pub fn compress(block: &Block) -> Option<Compressed> {
        let words = block_words(block);
        let mut w = BitWriter::default();
        let mut i = 0;
        while i < WORDS {
            let word = words[i];
            let p = classify_word(word);
            w.push(p.prefix(), 3);
            match p {
                Pattern::ZeroRun => {
                    let mut run = 1;
                    while i + run < WORDS && words[i + run] == 0 && run < 8 {
                        run += 1;
                    }
                    w.push(run as u64 - 1, 3);
                    i += run;
                    continue;
                }
                Pattern::Imm4 => w.push(word as u64 & 0xF, 4),
                Pattern::Imm8 => w.push(word as u64 & 0xFF, 8),
                Pattern::Imm16 => w.push(word as u64 & 0xFFFF, 16),
                Pattern::PaddedHalf => w.push((word >> 16) as u64, 16),
                Pattern::TwoHalves => {
                    w.push(word as u64 & 0xFF, 8);
                    w.push((word >> 16) as u64 & 0xFF, 8);
                }
                Pattern::RepeatedBytes => w.push(word as u64 & 0xFF, 8),
                Pattern::Uncompressed => w.push(word as u64, 32),
            }
            i += 1;
        }
        let len = w.byte_len();
        if len >= BLOCK_SIZE {
            return None;
        }
        Some(Compressed::from_parts(Algorithm::Fpc, &w.bytes[..len]))
    }

    /// Reference exact compressed size in bits.
    pub fn compressed_bits(block: &Block) -> u32 {
        let words = block_words(block);
        let mut bits = 0;
        let mut i = 0;
        while i < WORDS {
            let p = classify_word(words[i]);
            if p == Pattern::ZeroRun {
                let mut run = 1;
                while i + run < WORDS && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                i += run;
            } else {
                i += 1;
            }
            bits += 3 + p.data_bits();
        }
        bits
    }

    /// Reference bounds-checked decompression.
    pub fn try_decompress(image: &Compressed) -> Option<Block> {
        if image.algorithm() != Algorithm::Fpc {
            return None;
        }
        let mut r = BitReader::new(image.payload());
        let mut words = [0u32; WORDS];
        let mut i = 0;
        while i < WORDS {
            let p = Pattern::from_prefix(r.try_pull(3)?);
            match p {
                Pattern::ZeroRun => {
                    let run = r.try_pull(3)? as usize + 1;
                    i += run; // words are already zero
                }
                Pattern::Imm4 => {
                    let v = r.try_pull(4)? as u32;
                    words[i] = ((v << 28) as i32 >> 28) as u32;
                    i += 1;
                }
                Pattern::Imm8 => {
                    let v = r.try_pull(8)? as u32;
                    words[i] = ((v << 24) as i32 >> 24) as u32;
                    i += 1;
                }
                Pattern::Imm16 => {
                    let v = r.try_pull(16)? as u32;
                    words[i] = ((v << 16) as i32 >> 16) as u32;
                    i += 1;
                }
                Pattern::PaddedHalf => {
                    words[i] = (r.try_pull(16)? as u32) << 16;
                    i += 1;
                }
                Pattern::TwoHalves => {
                    let lo = r.try_pull(8)? as u32;
                    let hi = r.try_pull(8)? as u32;
                    let lo = ((lo << 24) as i32 >> 24) as u32 & 0xFFFF;
                    let hi = ((hi << 24) as i32 >> 24) as u32 & 0xFFFF;
                    words[i] = lo | (hi << 16);
                    i += 1;
                }
                Pattern::RepeatedBytes => {
                    let b = r.try_pull(8)? as u32;
                    words[i] = b | (b << 8) | (b << 16) | (b << 24);
                    i += 1;
                }
                Pattern::Uncompressed => {
                    words[i] = r.try_pull(32)? as u32;
                    i += 1;
                }
            }
        }
        let mut block = [0u8; BLOCK_SIZE];
        for (chunk, w) in block.chunks_exact_mut(4).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &Block) -> Option<usize> {
        let fpc = Fpc::new();
        let image = fpc.compress(block)?;
        assert_eq!(&fpc.decompress(&image), block, "FPC roundtrip mismatch");
        // The reference kernels must agree byte-for-byte on every vector
        // the unit suite exercises (the property suite widens this).
        assert_eq!(scalar::compress(block).as_ref(), Some(&image));
        assert_eq!(scalar::try_decompress(&image).as_ref(), Some(block));
        Some(image.size())
    }

    #[test]
    fn all_zero_line_is_two_runs() {
        // 16 zero words = two runs of 8 => 2 * 6 bits = 12 bits = 2 bytes.
        let block = [0u8; 64];
        assert_eq!(Fpc::compressed_bits(&block), 12);
        assert_eq!(roundtrip(&block), Some(2));
    }

    #[test]
    fn small_integers_compress() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(i as u32).to_le_bytes());
        }
        assert!(roundtrip(&block).unwrap() < 20);
    }

    #[test]
    fn negative_small_integers_compress() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(-(i as i32) - 1).to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn classify_covers_all_patterns() {
        assert_eq!(classify_word(0), Pattern::ZeroRun);
        assert_eq!(classify_word(7), Pattern::Imm4);
        assert_eq!(classify_word(0xFFFF_FFF8), Pattern::Imm4); // -8
        assert_eq!(classify_word(100), Pattern::Imm8);
        assert_eq!(classify_word(0xFFFF_FF80), Pattern::Imm8); // -128
        assert_eq!(classify_word(30_000), Pattern::Imm16);
        assert_eq!(classify_word(0xFFFF_8000), Pattern::Imm16); // -32768
        assert_eq!(classify_word(0x1234_0000), Pattern::PaddedHalf);
        assert_eq!(classify_word(0x0042_0017), Pattern::TwoHalves);
        assert_eq!(classify_word(0xABAB_ABAB), Pattern::RepeatedBytes);
        assert_eq!(classify_word(0x1234_5678), Pattern::Uncompressed);
    }

    #[test]
    fn branchless_classify_matches_cascade_on_boundaries() {
        // Every boundary of every predicate, plus sign-bit corners.
        let probes: [u32; 26] = [
            0,
            1,
            7,
            8,
            0xFFFF_FFF8,
            0xFFFF_FFF7,
            127,
            128,
            0xFFFF_FF80,
            0xFFFF_FF7F,
            32767,
            32768,
            0xFFFF_8000,
            0xFFFF_7FFF,
            0x0001_0000,
            0x8000_0000,
            0xFFFF_0000,
            0x007F_0000,
            0x0080_0000,
            0x007F_007F,
            0xFF80_FF80,
            0xFF80_0080,
            0xABAB_ABAB,
            0x0101_0101,
            0xFFFF_FFFF,
            0x1234_5678,
        ];
        for w in probes {
            assert_eq!(
                classify_word(w),
                scalar::classify_word(w),
                "word {w:#010x}"
            );
        }
    }

    #[test]
    fn incompressible_line_is_rejected() {
        // All words uncompressed: 16 * 35 bits = 560 bits = 70 bytes > 64.
        let mut block = [0u8; 64];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for chunk in block.chunks_exact_mut(4) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Force the Uncompressed pattern.
            let w = (state as u32) | 0x0180_8000;
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let all_uncompressed = block
            .chunks_exact(4)
            .all(|c| classify_word(u32::from_le_bytes(c.try_into().unwrap())) == Pattern::Uncompressed);
        if all_uncompressed {
            assert!(Fpc::new().compress(&block).is_none());
        }
    }

    #[test]
    fn two_halves_roundtrip_with_negative_halves() {
        let mut block = [0u8; 64];
        let w: u32 = 0x00FF_FF80; // halves: 0xFF80 (-128) and 0x00FF... (255? no: 0x00FF = 255, not extended byte)
        // Build a word whose halves are sign-extended bytes: lo=-5 (0xFFFB), hi=3 (0x0003).
        let word = 0xFFFBu32 | (0x0003u32 << 16);
        assert_eq!(classify_word(word), Pattern::TwoHalves);
        let _ = w;
        for chunk in block.chunks_exact_mut(4) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn padded_half_roundtrip() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            let w = ((0x8000u32 + i as u32) << 16) & 0xFFFF_0000;
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn repeated_bytes_roundtrip() {
        let mut block = [0u8; 64];
        for chunk in block.chunks_exact_mut(4) {
            chunk.copy_from_slice(&0x5A5A_5A5Au32.to_le_bytes());
        }
        assert!(roundtrip(&block).unwrap() <= 24);
    }

    #[test]
    fn compressed_bits_matches_actual_payload() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            let w = match i % 4 {
                0 => 0u32,
                1 => 42,
                2 => 0x1234_0000,
                _ => 0x7777_7777,
            };
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let bits = Fpc::compressed_bits(&block);
        let image = Fpc::new().compress(&block).unwrap();
        assert_eq!(image.size(), (bits as usize).div_ceil(8));
        assert_eq!(bits, scalar::compressed_bits(&block));
    }

    #[test]
    fn zero_run_split_across_nonzero_word() {
        let mut block = [0u8; 64];
        block[32..36].copy_from_slice(&123u32.to_le_bytes());
        assert!(roundtrip(&block).is_some());
    }
}
