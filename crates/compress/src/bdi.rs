//! Base-Delta-Immediate (BDI) compression.
//!
//! BDI (Pekhimenko et al., PACT 2012) exploits the low *dynamic range* of
//! values within a cacheline: it stores one base value plus a narrow delta
//! per element. Following the original proposal, every element may
//! alternatively take its delta from an implicit second base of zero, which
//! captures mixed pointer/small-integer lines. The hardware implementation
//! is a row of parallel subtractors, which is why the Attaché paper models
//! BDI as a single-cycle engine.
//!
//! Encodings implemented (element base size Δ delta size, in bytes):
//! zeros, repeated 8-byte value, 8Δ1, 8Δ2, 8Δ4, 4Δ1, 4Δ2, 2Δ1 — the full
//! set from the PACT 2012 paper.
//!
//! Two implementations live here. The hot path is a lane-wise kernel
//! ([`BdiAnalysis`]): the block is loaded once as eight little-endian u64
//! lanes and *all* candidate delta widths are tested in that single pass
//! with sign-extension masks (SWAR for the sub-lane 4- and 2-byte
//! geometries), mirroring the parallel subtractor row in hardware. The
//! original element-at-a-time kernels are kept verbatim in [`scalar`] as
//! the reference implementation; the `scalar_vs_vector` property suite
//! pins the two bit-identical.

use crate::{Algorithm, Block, Compressed, Compressor, BLOCK_SIZE};

/// The eight BDI encodings, ordered by the tag stored in the payload's first
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// The block is entirely zero bytes.
    Zeros,
    /// The block is one 8-byte value repeated eight times.
    Repeated,
    /// 8-byte elements, 1-byte deltas.
    B8D1,
    /// 8-byte elements, 2-byte deltas.
    B8D2,
    /// 8-byte elements, 4-byte deltas.
    B8D4,
    /// 4-byte elements, 1-byte deltas.
    B4D1,
    /// 4-byte elements, 2-byte deltas.
    B4D2,
    /// 2-byte elements, 1-byte deltas.
    B2D1,
}

impl Encoding {
    /// All base-delta encodings (excluding the `Zeros`/`Repeated` specials),
    /// in the order they are attempted (smallest resulting size first).
    pub const BASE_DELTA: [Encoding; 6] = [
        Encoding::B8D1,
        Encoding::B4D1,
        Encoding::B8D2,
        Encoding::B2D1,
        Encoding::B4D2,
        Encoding::B8D4,
    ];

    fn tag(self) -> u8 {
        match self {
            Encoding::Zeros => 0,
            Encoding::Repeated => 1,
            Encoding::B8D1 => 2,
            Encoding::B8D2 => 3,
            Encoding::B8D4 => 4,
            Encoding::B4D1 => 5,
            Encoding::B4D2 => 6,
            Encoding::B2D1 => 7,
        }
    }

    fn from_tag(tag: u8) -> Option<Encoding> {
        Some(match tag {
            0 => Encoding::Zeros,
            1 => Encoding::Repeated,
            2 => Encoding::B8D1,
            3 => Encoding::B8D2,
            4 => Encoding::B8D4,
            5 => Encoding::B4D1,
            6 => Encoding::B4D2,
            7 => Encoding::B2D1,
            _ => return None,
        })
    }

    /// `(base_size, delta_size)` in bytes for base-delta encodings.
    fn geometry(self) -> Option<(usize, usize)> {
        match self {
            Encoding::Zeros | Encoding::Repeated => None,
            Encoding::B8D1 => Some((8, 1)),
            Encoding::B8D2 => Some((8, 2)),
            Encoding::B8D4 => Some((8, 4)),
            Encoding::B4D1 => Some((4, 1)),
            Encoding::B4D2 => Some((4, 2)),
            Encoding::B2D1 => Some((2, 1)),
        }
    }

    /// The compressed size in bytes this encoding yields for a 64-byte block
    /// (tag byte + zero-base bitmask + base + deltas).
    pub fn compressed_size(self) -> usize {
        match self.geometry() {
            None => match self {
                Encoding::Zeros => 1,
                _ => 1 + 8,
            },
            Some((base, delta)) => {
                let n = BLOCK_SIZE / base;
                1 + n.div_ceil(8) + base + n * delta
            }
        }
    }
}

/// The Base-Delta-Immediate compressor.
///
/// # Example
///
/// ```
/// use attache_compress::bdi::Bdi;
/// use attache_compress::Compressor;
///
/// // A line of closely-spaced 64-bit values compresses well under BDI.
/// let mut block = [0u8; 64];
/// for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
///     chunk.copy_from_slice(&(0x1000_0000u64 + i as u64 * 8).to_le_bytes());
/// }
/// let image = Bdi::new().compress(&block).expect("compressible");
/// assert!(image.size() < 64);
/// assert_eq!(Bdi::new().decompress(&image), block);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bdi;

impl Bdi {
    /// Creates a BDI compressor.
    pub fn new() -> Self {
        Bdi
    }

    /// Bounds-checked decompression: returns `None` instead of panicking
    /// when `image` is not a well-formed BDI image (wrong algorithm, an
    /// unknown tag byte, or a payload shorter than the encoding's fixed
    /// size). The fault-injection layer stores deliberately corrupted
    /// images, so the decode path must be total over arbitrary bytes.
    pub fn try_decompress(&self, image: &Compressed) -> Option<Block> {
        if image.algorithm() != Algorithm::Bdi {
            return None;
        }
        let payload = image.payload();
        let enc = Encoding::from_tag(*payload.first()?)?;
        if payload.len() < enc.compressed_size() {
            return None;
        }
        let mut lanes = [0u64; LANES];
        match enc {
            Encoding::Zeros => {}
            Encoding::Repeated => {
                let v = load_le(payload, 1, 8);
                lanes = [v; LANES];
            }
            _ => {
                let (base_size, delta_size) = enc.geometry().expect("base-delta geometry");
                let n = BLOCK_SIZE / base_size;
                let mask_len = n.div_ceil(8);
                let use_base = load_le(payload, 1, mask_len);
                let base = sign_extend(load_le(payload, 1 + mask_len, base_size), base_size as u32 * 8);
                let deltas_off = 1 + mask_len + base_size;
                let elem_bits = base_size as u32 * 8;
                let elem_mask = if elem_bits == 64 { u64::MAX } else { (1u64 << elem_bits) - 1 };
                for i in 0..n {
                    let raw = load_le(payload, deltas_off + i * delta_size, delta_size);
                    let delta = sign_extend(raw, delta_size as u32 * 8);
                    // Select the base contribution without a branch.
                    let sel = (use_base >> i) & 1;
                    let value = delta.wrapping_add(base.wrapping_mul(sel as i64));
                    let lane = (i * base_size) / 8;
                    let shift = ((i * base_size) % 8) as u32 * 8;
                    lanes[lane] |= ((value as u64) & elem_mask) << shift;
                }
            }
        }
        Some(lanes_to_block(&lanes))
    }

    /// Returns the best (smallest) encoding applicable to `block`, if any.
    pub fn best_encoding(block: &Block) -> Option<Encoding> {
        BdiAnalysis::new(block).best()
    }
}

impl Compressor for Bdi {
    fn name(&self) -> &'static str {
        "BDI"
    }

    fn compress(&self, block: &Block) -> Option<Compressed> {
        let analysis = BdiAnalysis::new(block);
        let enc = analysis.best()?;
        Some(analysis.emit(enc))
    }

    fn decompress(&self, image: &Compressed) -> Block {
        assert_eq!(image.algorithm(), Algorithm::Bdi, "not a BDI image");
        self.try_decompress(image).expect("corrupt BDI image")
    }
}

const LANES: usize = BLOCK_SIZE / 8;

/// Loads `size <= 8` little-endian bytes at `off` into a u64 (zero-padded).
#[inline]
fn load_le(bytes: &[u8], off: usize, size: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf[..size].copy_from_slice(&bytes[off..off + size]);
    u64::from_le_bytes(buf)
}

/// Sign-extends the low `bits` of `raw` to i64.
#[inline]
fn sign_extend(raw: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((raw << shift) as i64) >> shift
}

/// `true` iff `v` survives a round-trip through a `bits`-bit signed field.
#[inline]
fn fits(v: i64, bits: u32) -> bool {
    let shift = 64 - bits;
    (v << shift) >> shift == v
}

#[inline]
fn lanes_to_block(lanes: &[u64; LANES]) -> Block {
    let mut block = [0u8; BLOCK_SIZE];
    for (chunk, lane) in block.chunks_exact_mut(8).zip(lanes) {
        chunk.copy_from_slice(&lane.to_le_bytes());
    }
    block
}

/// One-pass lane analysis of a block for every BDI candidate at once.
///
/// The block is loaded as eight u64 lanes; a single sweep computes, per
/// candidate geometry, the bitmask of elements whose value sign-extends
/// from the candidate's delta width (i.e. can take the implicit zero base).
/// Sub-lane geometries are tested with SWAR arithmetic inside each lane.
/// Feasibility of a candidate then only needs the (typically few) elements
/// *outside* its mask: the first becomes the base and the rest must land
/// within the delta width of it — walked mask-guided via `trailing_zeros`.
pub(crate) struct BdiAnalysis {
    lanes: [u64; LANES],
    all_zero: bool,
    repeated: bool,
    /// Zero-base-fit masks, one bit per element: 8 bits for the 8-byte
    /// geometries, 16 for the 4-byte ones, 32 for B2D1.
    m8d1: u32,
    m8d2: u32,
    m8d4: u32,
    m4d1: u32,
    m4d2: u32,
    m2d1: u32,
}

impl BdiAnalysis {
    pub(crate) fn new(block: &Block) -> Self {
        let mut lanes = [0u64; LANES];
        for (lane, chunk) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let mut or_acc = 0u64;
        let mut repeated = true;
        let (mut m8d1, mut m8d2, mut m8d4) = (0u32, 0u32, 0u32);
        let (mut m4d1, mut m4d2) = (0u32, 0u32);
        let mut m2d1 = 0u32;
        for (k, &lane) in lanes.iter().enumerate() {
            or_acc |= lane;
            repeated &= lane == lanes[0];
            let v = lane as i64;
            m8d1 |= (fits(v, 8) as u32) << k;
            m8d2 |= (fits(v, 16) as u32) << k;
            m8d4 |= (fits(v, 32) as u32) << k;
            let lo = lane as u32 as i32;
            let hi = (lane >> 32) as u32 as i32;
            m4d1 |= ((lo as i64 == lo as i8 as i64) as u32) << (2 * k);
            m4d1 |= ((hi as i64 == hi as i8 as i64) as u32) << (2 * k + 1);
            m4d2 |= ((lo as i64 == lo as i16 as i64) as u32) << (2 * k);
            m4d2 |= ((hi as i64 == hi as i16 as i64) as u32) << (2 * k + 1);
            // SWAR over the four u16 fields: a field sign-extends from 8
            // bits iff its high byte equals the sign fill of its low byte.
            let sign = (lane >> 7) & 0x0001_0001_0001_0001;
            let expect = sign * 0xFF;
            let actual = (lane >> 8) & 0x00FF_00FF_00FF_00FF;
            let diff = expect ^ actual;
            for f in 0..4 {
                m2d1 |= ((((diff >> (16 * f)) & 0xFF) == 0) as u32) << (4 * k + f);
            }
        }
        Self {
            lanes,
            all_zero: or_acc == 0,
            repeated,
            m8d1,
            m8d2,
            m8d4,
            m4d1,
            m4d2,
            m2d1,
        }
    }

    /// The sign-extended element `i` under a `base_size`-byte geometry.
    #[inline]
    fn elem(&self, i: usize, base_size: usize) -> i64 {
        match base_size {
            8 => self.lanes[i] as i64,
            4 => ((self.lanes[i / 2] >> ((i & 1) * 32)) as u32) as i32 as i64,
            _ => ((self.lanes[i / 4] >> ((i & 3) * 16)) as u16) as i16 as i64,
        }
    }

    /// The zero-base-fit mask for a base-delta encoding.
    #[inline]
    fn zero_fit_mask(&self, enc: Encoding) -> u32 {
        match enc {
            Encoding::B8D1 => self.m8d1,
            Encoding::B8D2 => self.m8d2,
            Encoding::B8D4 => self.m8d4,
            Encoding::B4D1 => self.m4d1,
            Encoding::B4D2 => self.m4d2,
            _ => self.m2d1,
        }
    }

    /// Whether `enc` can represent the block: every element outside the
    /// zero-fit mask must sit within the delta width of the first such
    /// element (the explicit base).
    fn feasible(&self, enc: Encoding) -> bool {
        let (base_size, delta_size) = match enc.geometry() {
            Some(g) => g,
            None => return false,
        };
        let n = BLOCK_SIZE / base_size;
        let all = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let mut rest = !self.zero_fit_mask(enc) & all;
        if rest == 0 {
            return true;
        }
        let delta_bits = delta_size as u32 * 8;
        let base = self.elem(rest.trailing_zeros() as usize, base_size);
        rest &= rest - 1;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            if !fits(self.elem(i, base_size).wrapping_sub(base), delta_bits) {
                return false;
            }
            rest &= rest - 1;
        }
        true
    }

    /// The best (smallest) encoding for the analyzed block, if any.
    ///
    /// `BASE_DELTA` is ordered by nondecreasing `compressed_size` and the
    /// scalar reference keeps a candidate only on *strict* size improvement,
    /// so "smallest size" is exactly "first feasible in order" — the 39-byte
    /// tie between B2D1 and B4D2 resolves to B2D1 in both formulations.
    pub(crate) fn best(&self) -> Option<Encoding> {
        if self.all_zero {
            return Some(Encoding::Zeros);
        }
        if self.repeated {
            return Some(Encoding::Repeated);
        }
        Encoding::BASE_DELTA.into_iter().find(|&e| self.feasible(e))
    }

    /// Materializes the image for an encoding `best()` declared feasible.
    /// Byte-identical to the scalar emitter: tag, zero-base bitmask
    /// (little-endian), base, then the little-endian deltas.
    pub(crate) fn emit(&self, enc: Encoding) -> Compressed {
        let mut payload = [0u8; BLOCK_SIZE];
        let mut len = 1usize;
        payload[0] = enc.tag();
        match enc {
            Encoding::Zeros => {}
            Encoding::Repeated => {
                payload[1..9].copy_from_slice(&self.lanes[0].to_le_bytes());
                len += 8;
            }
            _ => {
                let (base_size, delta_size) = enc.geometry().expect("base-delta geometry");
                let n = BLOCK_SIZE / base_size;
                let mask_len = n.div_ceil(8);
                let all = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
                let use_base = !self.zero_fit_mask(enc) & all;
                let base = if use_base != 0 {
                    self.elem(use_base.trailing_zeros() as usize, base_size)
                } else {
                    0
                };
                payload[len..len + mask_len].copy_from_slice(&use_base.to_le_bytes()[..mask_len]);
                len += mask_len;
                payload[len..len + base_size].copy_from_slice(&base.to_le_bytes()[..base_size]);
                len += base_size;
                for i in 0..n {
                    let sel = ((use_base >> i) & 1) as i64;
                    let d = self.elem(i, base_size).wrapping_sub(base.wrapping_mul(sel));
                    payload[len..len + delta_size].copy_from_slice(&d.to_le_bytes()[..delta_size]);
                    len += delta_size;
                }
            }
        }
        debug_assert_eq!(len, enc.compressed_size());
        Compressed::from_parts(Algorithm::Bdi, &payload[..len])
    }
}

/// The original element-at-a-time BDI kernels, kept verbatim as the
/// reference implementation. The `scalar_vs_vector` property suite and the
/// micro-benchmarks drive these against the lane-wise hot path; simulation
/// code never calls them.
pub mod scalar {
    use super::Encoding;
    use crate::{Algorithm, Block, Compressed, BLOCK_SIZE};

    /// Reference `best_encoding`: tries every candidate and keeps the
    /// strictly smallest feasible one.
    pub fn best_encoding(block: &Block) -> Option<Encoding> {
        if block.iter().all(|&b| b == 0) {
            return Some(Encoding::Zeros);
        }
        if is_repeated(block) {
            return Some(Encoding::Repeated);
        }
        let mut best: Option<Encoding> = None;
        for enc in Encoding::BASE_DELTA {
            if try_base_delta(block, enc).is_some() {
                let better = match best {
                    Some(b) => enc.compressed_size() < b.compressed_size(),
                    None => true,
                };
                if better {
                    best = Some(enc);
                }
            }
        }
        best.filter(|e| e.compressed_size() < BLOCK_SIZE)
    }

    /// Reference compressor: element-at-a-time analysis and emission.
    pub fn compress(block: &Block) -> Option<Compressed> {
        let enc = best_encoding(block)?;
        let mut payload = [0u8; BLOCK_SIZE];
        let mut len = 0usize;
        payload[len] = enc.tag();
        len += 1;
        match enc {
            Encoding::Zeros => {}
            Encoding::Repeated => {
                payload[len..len + 8].copy_from_slice(&block[..8]);
                len += 8;
            }
            _ => {
                let (base_size, delta_size) = enc.geometry().expect("base-delta geometry");
                let n = BLOCK_SIZE / base_size;
                let mask_len = n.div_ceil(8);
                let image = try_base_delta(block, enc).expect("encoding was validated");
                payload[len..len + mask_len].copy_from_slice(&image.mask[..mask_len]);
                len += mask_len;
                payload[len..len + base_size].copy_from_slice(&image.base.to_le_bytes()[..base_size]);
                len += base_size;
                for d in &image.deltas[..image.n] {
                    payload[len..len + delta_size].copy_from_slice(&d.to_le_bytes()[..delta_size]);
                    len += delta_size;
                }
            }
        }
        debug_assert_eq!(len, enc.compressed_size());
        Some(Compressed::from_parts(Algorithm::Bdi, &payload[..len]))
    }

    /// Reference bounds-checked decompression.
    pub fn try_decompress(image: &Compressed) -> Option<Block> {
        if image.algorithm() != Algorithm::Bdi {
            return None;
        }
        let payload = image.payload();
        let enc = Encoding::from_tag(*payload.first()?)?;
        if payload.len() < enc.compressed_size() {
            return None;
        }
        let mut block = [0u8; BLOCK_SIZE];
        match enc {
            Encoding::Zeros => {}
            Encoding::Repeated => {
                for chunk in block.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&payload[1..9]);
                }
            }
            _ => {
                let (base_size, delta_size) = enc.geometry().expect("base-delta geometry");
                let n = BLOCK_SIZE / base_size;
                let mask_len = n.div_ceil(8);
                let mask = &payload[1..1 + mask_len];
                let mut buf = [0u8; 8];
                buf[..base_size].copy_from_slice(&payload[1 + mask_len..1 + mask_len + base_size]);
                let shift = 64 - base_size as u32 * 8;
                let base = ((u64::from_le_bytes(buf) << shift) as i64) >> shift;
                let deltas = &payload[1 + mask_len + base_size..];
                for i in 0..n {
                    let mut dbuf = [0u8; 8];
                    dbuf[..delta_size]
                        .copy_from_slice(&deltas[i * delta_size..(i + 1) * delta_size]);
                    let dshift = 64 - delta_size as u32 * 8;
                    let delta = ((u64::from_le_bytes(dbuf) << dshift) as i64) >> dshift;
                    let uses_base = mask[i / 8] & (1 << (i % 8)) != 0;
                    let value = if uses_base {
                        base.wrapping_add(delta)
                    } else {
                        delta
                    };
                    block[i * base_size..(i + 1) * base_size]
                        .copy_from_slice(&value.to_le_bytes()[..base_size]);
                }
            }
        }
        Some(block)
    }

    fn is_repeated(block: &Block) -> bool {
        let first = &block[..8];
        block.chunks_exact(8).all(|c| c == first)
    }

    fn read_elem(block: &[u8], idx: usize, size: usize) -> i64 {
        let mut buf = [0u8; 8];
        buf[..size].copy_from_slice(&block[idx * size..idx * size + size]);
        let raw = u64::from_le_bytes(buf);
        // Sign-extend from `size` bytes.
        let shift = 64 - size as u32 * 8;
        ((raw << shift) as i64) >> shift
    }

    fn delta_fits(delta: i64, delta_size: usize) -> bool {
        let bits = delta_size as u32 * 8;
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        (min..=max).contains(&delta)
    }

    /// Fixed inline buffers: the widest geometry (B2D1) has 32 elements, so a
    /// 4-byte mask and 32 deltas always suffice, and building an image costs no
    /// heap allocation.
    struct BaseDeltaImage {
        base: i64,
        mask: [u8; BLOCK_SIZE / 2 / 8],
        deltas: [i64; BLOCK_SIZE / 2],
        n: usize,
    }

    fn try_base_delta(block: &Block, enc: Encoding) -> Option<BaseDeltaImage> {
        let (base_size, delta_size) = enc.geometry()?;
        let n = BLOCK_SIZE / base_size;
        let mut base: Option<i64> = None;
        let mut mask = [0u8; BLOCK_SIZE / 2 / 8];
        let mut deltas = [0i64; BLOCK_SIZE / 2];
        for i in 0..n {
            let v = read_elem(block, i, base_size);
            if delta_fits(v, delta_size) {
                // Delta from the implicit zero base.
                deltas[i] = v;
            } else {
                let b = *base.get_or_insert(v);
                let delta = v.wrapping_sub(b);
                if !delta_fits(delta, delta_size) {
                    return None;
                }
                mask[i / 8] |= 1 << (i % 8);
                deltas[i] = delta;
            }
        }
        Some(BaseDeltaImage {
            base: base.unwrap_or(0),
            mask,
            deltas,
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: &Block) -> Option<usize> {
        let bdi = Bdi::new();
        let image = bdi.compress(block)?;
        assert_eq!(&bdi.decompress(&image), block, "BDI roundtrip mismatch");
        // The reference kernels must agree byte-for-byte on every vector
        // the unit suite exercises (the property suite widens this).
        assert_eq!(scalar::compress(block).as_ref(), Some(&image));
        assert_eq!(scalar::try_decompress(&image).as_ref(), Some(block));
        Some(image.size())
    }

    #[test]
    fn zeros_compress_to_one_byte() {
        assert_eq!(roundtrip(&[0u8; 64]), Some(1));
    }

    #[test]
    fn repeated_value_compresses_to_nine_bytes() {
        let mut block = [0u8; 64];
        for chunk in block.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        }
        assert_eq!(roundtrip(&block), Some(9));
    }

    #[test]
    fn nearby_u64_values_use_b8d1() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(0x7000_0000_0000u64 + i as u64 * 3).to_le_bytes());
        }
        assert_eq!(Bdi::best_encoding(&block), Some(Encoding::B8D1));
        assert_eq!(roundtrip(&block), Some(Encoding::B8D1.compressed_size()));
    }

    #[test]
    fn small_u32_values_use_zero_base() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(i as u32 % 100).to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn mixed_pointers_and_small_ints_compress() {
        // Alternating heap pointers and tiny integers: the classic case that
        // needs both the arbitrary base and the implicit zero base.
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            let v = if i % 2 == 0 {
                0x7FFF_AB00_1200u64 + i as u64 * 16
            } else {
                i as u64
            };
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn random_bytes_do_not_compress() {
        // A fixed high-entropy pattern.
        let mut block = [0u8; 64];
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 33) as u8;
        }
        assert_eq!(Bdi::best_encoding(&block), None);
        assert!(Bdi::new().compress(&block).is_none());
        assert_eq!(scalar::best_encoding(&block), None);
    }

    #[test]
    fn negative_deltas_roundtrip() {
        let mut block = [0u8; 64];
        for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
            let v = 0x5000_0000_0000i64 - i as i64 * 7;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn encoding_sizes_match_pact_formula() {
        assert_eq!(Encoding::B8D1.compressed_size(), 1 + 1 + 8 + 8);
        assert_eq!(Encoding::B8D2.compressed_size(), 1 + 1 + 8 + 16);
        assert_eq!(Encoding::B8D4.compressed_size(), 1 + 1 + 8 + 32);
        assert_eq!(Encoding::B4D1.compressed_size(), 1 + 2 + 4 + 16);
        assert_eq!(Encoding::B4D2.compressed_size(), 1 + 2 + 4 + 32);
        assert_eq!(Encoding::B2D1.compressed_size(), 1 + 4 + 2 + 32);
    }

    #[test]
    fn base_delta_order_is_nondecreasing_size() {
        // `BdiAnalysis::best` relies on this: first-feasible == smallest.
        let sizes: Vec<usize> = Encoding::BASE_DELTA
            .iter()
            .map(|e| e.compressed_size())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "order {sizes:?}");
    }

    #[test]
    fn compressed_never_reaches_block_size() {
        // B2D1 and B4D2/B8D4 are 39/39/42 bytes: still < 64, all valid.
        for enc in Encoding::BASE_DELTA {
            assert!(enc.compressed_size() < BLOCK_SIZE);
        }
    }

    #[test]
    fn tag_roundtrip() {
        for tag in 0..8 {
            let enc = Encoding::from_tag(tag).unwrap();
            assert_eq!(enc.tag(), tag);
        }
        assert_eq!(Encoding::from_tag(8), None);
    }

    #[test]
    fn boundary_delta_values_roundtrip() {
        // Deltas of exactly i8::MIN / i8::MAX from the base.
        let base = 0x4000_0000_0000u64;
        let mut block = [0u8; 64];
        let vals = [
            base,
            base.wrapping_add(127),
            base.wrapping_sub(128),
            base,
            base.wrapping_add(1),
            base.wrapping_sub(1),
            base.wrapping_add(64),
            base.wrapping_sub(64),
        ];
        for (chunk, v) in block.chunks_exact_mut(8).zip(vals) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        assert_eq!(Bdi::best_encoding(&block), Some(Encoding::B8D1));
        assert!(roundtrip(&block).is_some());
    }

    #[test]
    fn swar_u16_fit_mask_matches_reference() {
        // Every boundary of the "u16 sign-extends from i8" predicate, placed
        // in every field position of a lane.
        let cases: [(u16, bool); 8] = [
            (0x0000, true),
            (0x007F, true),
            (0x0080, false),
            (0xFF80, true),
            (0xFF7F, false),
            (0xFFFF, true),
            (0x7FFF, false),
            (0x8000, false),
        ];
        for f in 0..4 {
            for &(half, expect) in &cases {
                let mut block = [0u8; 64];
                // Make the block non-zero, non-repeated, and put the probe
                // half in field `f` of lane 0.
                block[48] = 0x11;
                block[2 * f..2 * f + 2].copy_from_slice(&half.to_le_bytes());
                let a = BdiAnalysis::new(&block);
                assert_eq!(
                    a.m2d1 & (1 << f) != 0,
                    expect,
                    "half {half:#06x} in field {f}"
                );
            }
        }
    }
}
