//! Plain-text serialization for [`RunReport`] — the on-disk format behind
//! the experiment harness's per-job report cache.
//!
//! The workspace carries no crates.io dependencies (offline sandboxes must
//! build it), so this is a hand-rolled line-oriented `key value` format
//! rather than serde. Two properties matter more than prettiness:
//!
//! * **Bit-exactness.** Floating-point fields are stored as the hex IEEE-754
//!   bit pattern, so a report loaded from the cache is indistinguishable —
//!   down to the last ULP — from the report the simulation produced. This is
//!   what lets figure binaries promise byte-identical output whether a grid
//!   point was recomputed or replayed from cache.
//! * **Stale-key detection.** The caller's cache key (a canonical rendering
//!   of the full job configuration) is embedded in the file; readers that
//!   pass `expected_key` reject files whose key differs, so a config change
//!   — or a pathological hash collision in the cache file name — reads as a
//!   cache miss instead of silently returning the wrong run.

use attache_cache::metadata_cache::MetadataTraffic;
use attache_cache::CacheStats;
use attache_core::blem::BlemStats;
use attache_core::copr::CoprStats;
use attache_core::cram::CramStats;
use attache_core::replacement_area::ReplacementAreaStats;
use attache_dram::{ChannelStats, EnergyBreakdown};
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::config::MetadataStrategyKind;
use crate::stats::RunReport;

/// First line of every serialized report; bumped on breaking layout changes
/// so old cache files read as misses, never as garbage.
pub const FORMAT_VERSION: &str = "attache-report-v1";

fn push_u64(out: &mut String, key: &str, v: u64) {
    let _ = writeln!(out, "{key} {v}");
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    // Hex bit pattern for exactness; the decimal rendering is a comment for
    // humans inspecting cache files and is ignored by the parser.
    let _ = writeln!(out, "{key} {:016x} # {v:.6}", v.to_bits());
}

/// Serializes `report` with the caller's cache `key` embedded for
/// stale-entry detection. `key` must be a single line.
pub fn to_text(report: &RunReport, key: &str) -> String {
    debug_assert!(!key.contains('\n'), "cache key must be a single line");
    let mut s = String::with_capacity(2048);
    let _ = writeln!(s, "{FORMAT_VERSION}");
    let _ = writeln!(s, "key {key}");
    let _ = writeln!(s, "name {}", report.name);
    let _ = writeln!(s, "strategy {}", report.strategy);
    push_u64(&mut s, "bus_cycles", report.bus_cycles);
    push_u64(&mut s, "instructions", report.instructions);

    let m = &report.mem;
    push_u64(&mut s, "mem.cycles", m.cycles);
    push_u64(&mut s, "mem.demand_reads", m.demand_reads);
    push_u64(&mut s, "mem.corrective_reads", m.corrective_reads);
    push_u64(&mut s, "mem.metadata_reads", m.metadata_reads);
    push_u64(&mut s, "mem.replacement_area_reads", m.replacement_area_reads);
    push_u64(&mut s, "mem.data_writes", m.data_writes);
    push_u64(&mut s, "mem.metadata_writes", m.metadata_writes);
    push_u64(&mut s, "mem.replacement_area_writes", m.replacement_area_writes);
    push_u64(&mut s, "mem.row_hits", m.row_hits);
    push_u64(&mut s, "mem.row_misses", m.row_misses);
    push_u64(&mut s, "mem.activates", m.activates);
    push_u64(&mut s, "mem.precharges", m.precharges);
    push_u64(&mut s, "mem.refreshes", m.refreshes);
    push_u64(&mut s, "mem.bytes", m.bytes);
    push_u64(&mut s, "mem.busy_bus_cycles", m.busy_bus_cycles);
    push_u64(&mut s, "mem.read_latency_sum", m.read_latency_sum);
    push_u64(&mut s, "mem.read_latency_count", m.read_latency_count);
    push_u64(&mut s, "mem.forwarded_reads", m.forwarded_reads);
    push_u64(&mut s, "mem.drain_cycles", m.drain_cycles);
    push_u64(&mut s, "mem.drain_episodes", m.drain_episodes);
    // Emitted only when nonzero so integrity-off reports stay
    // byte-identical to their pre-scrub goldens; the parser defaults
    // a missing line to 0.
    if m.scrub_reads != 0 {
        push_u64(&mut s, "mem.scrub_reads", m.scrub_reads);
    }

    let e = &report.energy;
    push_f64(&mut s, "energy.act_pre_pj", e.act_pre_pj);
    push_f64(&mut s, "energy.read_pj", e.read_pj);
    push_f64(&mut s, "energy.write_pj", e.write_pj);
    push_f64(&mut s, "energy.refresh_pj", e.refresh_pj);
    push_f64(&mut s, "energy.background_pj", e.background_pj);
    push_f64(&mut s, "energy.io_pj", e.io_pj);

    push_cache_stats(&mut s, "llc", &report.llc);

    let st = &report.strategy_stats;
    push_u64(&mut s, "strategy.reads", st.reads);
    push_u64(&mut s, "strategy.compressed_reads", st.compressed_reads);
    push_u64(&mut s, "strategy.writes", st.writes);
    push_u64(&mut s, "strategy.compressed_writes", st.compressed_writes);

    if let Some(c) = &report.copr {
        push_u64(&mut s, "copr.predictions", c.predictions);
        push_u64(&mut s, "copr.correct", c.correct);
        push_u64(&mut s, "copr.underpredictions", c.underpredictions);
        push_u64(&mut s, "copr.overpredictions", c.overpredictions);
    }
    if let Some(b) = &report.blem {
        push_u64(&mut s, "blem.writes", b.writes);
        push_u64(&mut s, "blem.compressed_writes", b.compressed_writes);
        push_u64(&mut s, "blem.write_collisions", b.write_collisions);
        push_u64(&mut s, "blem.reads", b.reads);
        push_u64(&mut s, "blem.compressed_reads", b.compressed_reads);
        push_u64(&mut s, "blem.read_collisions", b.read_collisions);
    }
    if let Some(r) = &report.ra {
        push_u64(&mut s, "ra.writes", r.writes);
        push_u64(&mut s, "ra.reads", r.reads);
    }
    if let Some((stats, traffic)) = &report.metadata_cache {
        push_cache_stats(&mut s, "mcache", stats);
        push_u64(&mut s, "mtraffic.install_reads", traffic.install_reads);
        push_u64(&mut s, "mtraffic.eviction_writes", traffic.eviction_writes);
    }
    if let Some(c) = &report.cram {
        push_u64(&mut s, "cram.writes", c.writes);
        push_u64(&mut s, "cram.compressed_writes", c.compressed_writes);
        push_u64(&mut s, "cram.write_exceptions", c.write_exceptions);
        push_u64(&mut s, "cram.reads", c.reads);
        push_u64(&mut s, "cram.compressed_reads", c.compressed_reads);
        push_u64(&mut s, "cram.read_exceptions", c.read_exceptions);
    }
    if let Some(i) = &report.integrity {
        push_u64(&mut s, "integrity.reads_checked", i.reads_checked);
        push_u64(&mut s, "integrity.injected_flips", i.injected_flips);
        push_u64(&mut s, "integrity.sticky_lines", i.sticky_lines);
        push_u64(&mut s, "integrity.corrected0", i.corrected[0]);
        push_u64(&mut s, "integrity.corrected1", i.corrected[1]);
        push_u64(&mut s, "integrity.uncorrectable0", i.uncorrectable[0]);
        push_u64(&mut s, "integrity.uncorrectable1", i.uncorrectable[1]);
        push_u64(&mut s, "integrity.recovered", i.recovered);
        push_u64(&mut s, "integrity.sdc_averted", i.sdc_averted);
        push_u64(&mut s, "integrity.data_loss", i.data_loss);
        push_u64(
            &mut s,
            "integrity.silent_corruption_reads",
            i.silent_corruption_reads,
        );
        push_u64(
            &mut s,
            "integrity.corrupted_bytes_delivered",
            i.corrupted_bytes_delivered,
        );
        push_u64(&mut s, "integrity.scrub_checks", i.scrub_checks);
        push_u64(&mut s, "integrity.scrub_corrected", i.scrub_corrected);
        push_u64(&mut s, "integrity.scrub_uncorrectable", i.scrub_uncorrectable);
        push_u64(&mut s, "integrity.scrub_skipped_busy", i.scrub_skipped_busy);
        push_u64(&mut s, "integrity.ecc_check_bytes", i.ecc_check_bytes);
    }
    s
}

fn push_cache_stats(out: &mut String, prefix: &str, c: &CacheStats) {
    push_u64(out, &format!("{prefix}.accesses"), c.accesses);
    push_u64(out, &format!("{prefix}.hits"), c.hits);
    push_u64(out, &format!("{prefix}.misses"), c.misses);
    push_u64(out, &format!("{prefix}.evictions"), c.evictions);
    push_u64(out, &format!("{prefix}.dirty_evictions"), c.dirty_evictions);
}

/// The parsed `key value` map with typed getters.
struct Fields<'a>(HashMap<&'a str, &'a str>);

impl<'a> Fields<'a> {
    fn str(&self, key: &str) -> Option<&'a str> {
        self.0.get(key).copied()
    }

    fn u64(&self, key: &str) -> Option<u64> {
        self.str(key)?.parse().ok()
    }

    fn f64(&self, key: &str) -> Option<f64> {
        // The hex bit pattern is the first token; anything after (the
        // human-readable decimal comment) is ignored.
        let tok = self.str(key)?.split_whitespace().next()?;
        Some(f64::from_bits(u64::from_str_radix(tok, 16).ok()?))
    }

    fn cache_stats(&self, prefix: &str) -> Option<CacheStats> {
        Some(CacheStats {
            accesses: self.u64(&format!("{prefix}.accesses"))?,
            hits: self.u64(&format!("{prefix}.hits"))?,
            misses: self.u64(&format!("{prefix}.misses"))?,
            evictions: self.u64(&format!("{prefix}.evictions"))?,
            dirty_evictions: self.u64(&format!("{prefix}.dirty_evictions"))?,
        })
    }
}

/// Writes a run's [`Observation`](crate::observe::Observation) next to
/// its results: `<stem>.metrics.json` (the cumulative registry), and —
/// when epoch sampling was on — `<stem>.series.json` plus
/// `<stem>.series.csv` (the epoch time-series, JSON for tools, CSV for
/// quick plotting). Creates `dir` if needed. Write-only, like the rest
/// of the observability exports: nothing in the workspace parses these
/// files back.
pub fn write_observation(
    dir: &std::path::Path,
    stem: &str,
    obs: &crate::observe::Observation,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join(format!("{stem}.metrics.json")),
        attache_metrics::registry_to_json(&obs.registry),
    )?;
    if let Some(series) = &obs.series {
        std::fs::write(
            dir.join(format!("{stem}.series.json")),
            attache_metrics::series_to_json(series),
        )?;
        std::fs::write(
            dir.join(format!("{stem}.series.csv")),
            attache_metrics::series_to_csv(series),
        )?;
    }
    Ok(())
}

/// Parses a report serialized by [`to_text`]. Returns `None` on any
/// malformed, truncated or version-mismatched input, and — when
/// `expected_key` is given — on a cache-key mismatch (a stale or colliding
/// entry).
pub fn from_text(text: &str, expected_key: Option<&str>) -> Option<RunReport> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT_VERSION {
        return None;
    }
    let mut map = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(' ') {
            map.insert(k, v);
        }
    }
    let f = Fields(map);
    if let Some(expected) = expected_key {
        if f.str("key") != Some(expected) {
            return None;
        }
    }
    let strategy: MetadataStrategyKind = f.str("strategy")?.parse().ok()?;
    let copr = f.u64("copr.predictions").map(|predictions| {
        Some(CoprStats {
            predictions,
            correct: f.u64("copr.correct")?,
            underpredictions: f.u64("copr.underpredictions")?,
            overpredictions: f.u64("copr.overpredictions")?,
        })
    });
    let blem = f.u64("blem.writes").map(|writes| {
        Some(BlemStats {
            writes,
            compressed_writes: f.u64("blem.compressed_writes")?,
            write_collisions: f.u64("blem.write_collisions")?,
            reads: f.u64("blem.reads")?,
            compressed_reads: f.u64("blem.compressed_reads")?,
            read_collisions: f.u64("blem.read_collisions")?,
        })
    });
    let ra = f.u64("ra.writes").map(|writes| {
        Some(ReplacementAreaStats {
            writes,
            reads: f.u64("ra.reads")?,
        })
    });
    let metadata_cache = f.cache_stats("mcache").map(|stats| {
        Some((
            stats,
            MetadataTraffic {
                install_reads: f.u64("mtraffic.install_reads")?,
                eviction_writes: f.u64("mtraffic.eviction_writes")?,
            },
        ))
    });
    let cram = f.u64("cram.writes").map(|writes| {
        Some(CramStats {
            writes,
            compressed_writes: f.u64("cram.compressed_writes")?,
            write_exceptions: f.u64("cram.write_exceptions")?,
            reads: f.u64("cram.reads")?,
            compressed_reads: f.u64("cram.compressed_reads")?,
            read_exceptions: f.u64("cram.read_exceptions")?,
        })
    });
    let integrity = f.u64("integrity.reads_checked").map(|reads_checked| {
        Some(crate::integrity::IntegrityStats {
            reads_checked,
            injected_flips: f.u64("integrity.injected_flips")?,
            sticky_lines: f.u64("integrity.sticky_lines")?,
            corrected: [
                f.u64("integrity.corrected0")?,
                f.u64("integrity.corrected1")?,
            ],
            uncorrectable: [
                f.u64("integrity.uncorrectable0")?,
                f.u64("integrity.uncorrectable1")?,
            ],
            recovered: f.u64("integrity.recovered")?,
            sdc_averted: f.u64("integrity.sdc_averted")?,
            data_loss: f.u64("integrity.data_loss")?,
            silent_corruption_reads: f.u64("integrity.silent_corruption_reads")?,
            corrupted_bytes_delivered: f.u64("integrity.corrupted_bytes_delivered")?,
            scrub_checks: f.u64("integrity.scrub_checks")?,
            scrub_corrected: f.u64("integrity.scrub_corrected")?,
            scrub_uncorrectable: f.u64("integrity.scrub_uncorrectable")?,
            scrub_skipped_busy: f.u64("integrity.scrub_skipped_busy")?,
            ecc_check_bytes: f.u64("integrity.ecc_check_bytes")?,
        })
    });
    let integrity = match integrity {
        Some(None) => return None,
        other => other.flatten(),
    };
    // An optional section whose presence flag parsed but whose body didn't
    // is a malformed file, not a missing section.
    let (copr, blem, ra, metadata_cache, cram) = match (copr, blem, ra, metadata_cache, cram) {
        (Some(None), ..)
        | (_, Some(None), ..)
        | (_, _, Some(None), _, _)
        | (_, _, _, Some(None), _)
        | (.., Some(None)) => return None,
        (c, b, r, m, x) => (
            c.flatten(),
            b.flatten(),
            r.flatten(),
            m.flatten(),
            x.flatten(),
        ),
    };
    Some(RunReport {
        name: f.str("name")?.to_string(),
        strategy,
        bus_cycles: f.u64("bus_cycles")?,
        instructions: f.u64("instructions")?,
        mem: ChannelStats {
            cycles: f.u64("mem.cycles")?,
            demand_reads: f.u64("mem.demand_reads")?,
            corrective_reads: f.u64("mem.corrective_reads")?,
            metadata_reads: f.u64("mem.metadata_reads")?,
            replacement_area_reads: f.u64("mem.replacement_area_reads")?,
            data_writes: f.u64("mem.data_writes")?,
            metadata_writes: f.u64("mem.metadata_writes")?,
            replacement_area_writes: f.u64("mem.replacement_area_writes")?,
            row_hits: f.u64("mem.row_hits")?,
            row_misses: f.u64("mem.row_misses")?,
            activates: f.u64("mem.activates")?,
            precharges: f.u64("mem.precharges")?,
            refreshes: f.u64("mem.refreshes")?,
            bytes: f.u64("mem.bytes")?,
            busy_bus_cycles: f.u64("mem.busy_bus_cycles")?,
            read_latency_sum: f.u64("mem.read_latency_sum")?,
            read_latency_count: f.u64("mem.read_latency_count")?,
            forwarded_reads: f.u64("mem.forwarded_reads")?,
            drain_cycles: f.u64("mem.drain_cycles")?,
            drain_episodes: f.u64("mem.drain_episodes")?,
            // Absent in pre-scrub reports (and in any run with no scrub
            // traffic): default 0, never a parse failure.
            scrub_reads: f.u64("mem.scrub_reads").unwrap_or(0),
        },
        energy: EnergyBreakdown {
            act_pre_pj: f.f64("energy.act_pre_pj")?,
            read_pj: f.f64("energy.read_pj")?,
            write_pj: f.f64("energy.write_pj")?,
            refresh_pj: f.f64("energy.refresh_pj")?,
            background_pj: f.f64("energy.background_pj")?,
            io_pj: f.f64("energy.io_pj")?,
        },
        llc: f.cache_stats("llc")?,
        strategy_stats: crate::strategy::StrategyStats {
            reads: f.u64("strategy.reads")?,
            compressed_reads: f.u64("strategy.compressed_reads")?,
            writes: f.u64("strategy.writes")?,
            compressed_writes: f.u64("strategy.compressed_writes")?,
        },
        copr,
        blem,
        ra,
        metadata_cache,
        cram,
        integrity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(strategy: MetadataStrategyKind) -> RunReport {
        let mut r = RunReport {
            name: "mcf".into(),
            strategy,
            bus_cycles: 123_456,
            instructions: 4_800_000,
            mem: ChannelStats {
                cycles: 123_456,
                demand_reads: 1000,
                data_writes: 300,
                bytes: 83_200,
                read_latency_sum: 98_765,
                read_latency_count: 1000,
                ..ChannelStats::default()
            },
            energy: EnergyBreakdown {
                act_pre_pj: 1.5e6,
                read_pj: std::f64::consts::PI * 1e5,
                write_pj: 0.1,
                refresh_pj: 2.0,
                background_pj: 3.25e7,
                io_pj: 7.0,
            },
            llc: CacheStats {
                accesses: 50_000,
                hits: 40_000,
                misses: 10_000,
                evictions: 9_000,
                dirty_evictions: 300,
            },
            strategy_stats: crate::strategy::StrategyStats {
                reads: 1000,
                compressed_reads: 600,
                writes: 300,
                compressed_writes: 200,
            },
            copr: None,
            blem: None,
            ra: None,
            metadata_cache: None,
            cram: None,
            integrity: None,
        };
        if strategy == MetadataStrategyKind::Attache {
            r.copr = Some(CoprStats {
                predictions: 1000,
                correct: 880,
                underpredictions: 70,
                overpredictions: 50,
            });
            r.blem = Some(BlemStats {
                writes: 300,
                compressed_writes: 200,
                write_collisions: 1,
                reads: 1000,
                compressed_reads: 600,
                read_collisions: 2,
            });
            r.ra = Some(ReplacementAreaStats { writes: 1, reads: 2 });
        }
        if strategy == MetadataStrategyKind::Cram {
            r.cram = Some(CramStats {
                writes: 300,
                compressed_writes: 200,
                write_exceptions: 1,
                reads: 1000,
                compressed_reads: 600,
                read_exceptions: 2,
            });
        }
        if strategy == MetadataStrategyKind::MetadataCache {
            r.metadata_cache = Some((
                CacheStats {
                    accesses: 10_000,
                    hits: 7_700,
                    misses: 2_300,
                    evictions: 2_200,
                    dirty_evictions: 100,
                },
                MetadataTraffic {
                    install_reads: 2_300,
                    eviction_writes: 100,
                },
            ));
        }
        r
    }

    #[test]
    fn roundtrip_is_exact_for_every_strategy() {
        for strategy in MetadataStrategyKind::ALL {
            let r = sample(strategy);
            let text = to_text(&r, "test-key");
            let back = from_text(&text, Some("test-key")).expect("parses");
            assert_eq!(back, r, "{strategy}");
        }
    }

    #[test]
    fn integrity_section_and_scrub_reads_roundtrip() {
        let mut r = sample(MetadataStrategyKind::Attache);
        r.mem.scrub_reads = 17;
        r.integrity = Some(crate::integrity::IntegrityStats {
            reads_checked: 1000,
            injected_flips: 12,
            sticky_lines: 2,
            corrected: [5, 4],
            uncorrectable: [1, 0],
            recovered: 1,
            sdc_averted: 0,
            data_loss: 0,
            silent_corruption_reads: 0,
            corrupted_bytes_delivered: 0,
            scrub_checks: 17,
            scrub_corrected: 2,
            scrub_uncorrectable: 0,
            scrub_skipped_busy: 3,
            ecc_check_bytes: 5_120,
        });
        let text = to_text(&r, "k");
        assert!(text.contains("mem.scrub_reads 17"));
        let back = from_text(&text, Some("k")).expect("parses");
        assert_eq!(back, r);
        // A present section flag with a truncated body is malformed, not
        // a missing section.
        let cut = text
            .lines()
            .filter(|l| !l.starts_with("integrity.ecc_check_bytes"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_text(&cut, Some("k")).is_none());
    }

    #[test]
    fn integrity_off_report_has_no_integrity_lines() {
        // The golden-compatibility contract: a run with every integrity
        // knob off serializes without a single new key.
        let text = to_text(&sample(MetadataStrategyKind::Baseline), "k");
        assert!(!text.contains("integrity."));
        assert!(!text.contains("scrub_reads"));
    }

    #[test]
    fn float_bits_survive_roundtrip() {
        let r = sample(MetadataStrategyKind::Baseline);
        let back = from_text(&to_text(&r, "k"), Some("k")).unwrap();
        assert_eq!(back.energy.read_pj.to_bits(), r.energy.read_pj.to_bits());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let r = sample(MetadataStrategyKind::Attache);
        let text = to_text(&r, "key-a");
        assert!(from_text(&text, Some("key-b")).is_none());
        assert!(from_text(&text, Some("key-a")).is_some());
        // Without an expected key the file still parses.
        assert!(from_text(&text, None).is_some());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let r = sample(MetadataStrategyKind::Baseline);
        let text = to_text(&r, "k").replace(FORMAT_VERSION, "attache-report-v0");
        assert!(from_text(&text, None).is_none());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let r = sample(MetadataStrategyKind::Attache);
        let text = to_text(&r, "k");
        let cut: String = text.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(from_text(&cut, Some("k")).is_none());
    }
}
