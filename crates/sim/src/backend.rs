//! The functional memory backend: who lives where, and what the bytes are.
//!
//! This is the *functional* half of the Strategy/MemoryBackend split (see
//! [`crate::strategy`]): while a [`Strategy`](crate::strategy::Strategy)
//! plans timing-side requests from what the controller *believes* about a
//! line, the backend answers what is *actually* stored there — the
//! synthesized bytes, their real compressibility class, and the physical
//! layout of the metadata and Replacement-Area regions. Strategies consult
//! it to resolve predictions (did the half-width read suffice?) and the
//! figure binaries consult it for ground-truth compressibility (Fig. 4).
//! It is deliberately cycle-free: a lookup has no cost here; only the
//! requests a strategy chooses to issue cost bus cycles.
//!
//! Physical placement: each core's private footprint is packed
//! contiguously from address zero; the compression-metadata region and the
//! Replacement Area live above the workload span (both invisible to the
//! "OS", §IV-D). Contents are synthesized deterministically on demand, so
//! nothing is allocated until touched.
//!
//! Stores bump a per-line version; every 16th version the line is
//! re-synthesized from a different stream, occasionally flipping its
//! compressibility class. This keeps metadata *mostly* clean — matching
//! the paper's Fig. 15 observation — while still exercising the dirty
//! paths.

use attache_compress::Block;
use attache_workloads::{DataProfile, DataSynthesizer, Profile};
use attache_core::fasthash::FastMap;

/// One core's region of physical memory.
#[derive(Debug, Clone)]
struct Region {
    base: u64,
    lines: u64,
    data: DataProfile,
}

/// The functional backend.
#[derive(Debug)]
pub struct MemoryBackend {
    synth: DataSynthesizer,
    regions: Vec<Region>,
    versions: FastMap<u64, u16>,
    occupied_lines: u64,
    metadata_base: u64,
    ra_base: u64,
}

impl MemoryBackend {
    /// Lays out one region per profile (in order, core 0 first).
    pub fn new(profiles: &[Profile], seed: u64) -> Self {
        let mut regions = Vec::with_capacity(profiles.len());
        let mut base = 0u64;
        for p in profiles {
            regions.push(Region {
                base,
                lines: p.footprint_lines,
                data: p.data,
            });
            base += p.footprint_lines;
        }
        let occupied = base;
        // Reserved regions above the workload span, row-aligned.
        let metadata_base = occupied.div_ceil(128) * 128;
        let metadata_lines = occupied / 128 + 1;
        let ra_base = (metadata_base + metadata_lines).div_ceil(128) * 128;
        Self {
            synth: DataSynthesizer::new(seed),
            regions,
            versions: FastMap::default(),
            occupied_lines: occupied,
            metadata_base,
            ra_base,
        }
    }

    /// Total workload-occupied lines (used to size GI regions).
    pub fn occupied_lines(&self) -> u64 {
        self.occupied_lines
    }

    /// The physical base line of core `i`'s region.
    pub fn core_base(&self, core: usize) -> u64 {
        self.regions[core].base
    }

    /// The physical line address backing the compression metadata of
    /// `line` (one 64-byte metadata block covers 128 data blocks).
    pub fn metadata_line_of(&self, line: u64) -> u64 {
        self.metadata_base + line / 128
    }

    /// The physical line address of the Replacement-Area block holding
    /// `line`'s displaced bit (one block covers 512 data blocks).
    pub fn ra_line_of(&self, line: u64) -> u64 {
        self.ra_base + line / 512
    }

    fn region_of(&self, line: u64) -> &Region {
        self.regions
            .iter()
            .find(|r| line >= r.base && line < r.base + r.lines)
            .expect("line outside all workload regions")
    }

    fn salted_addr(&self, line: u64) -> u64 {
        let version = self.versions.get(&line).copied().unwrap_or(0);
        // Class changes only every 16 stores: compressibility rarely flips.
        line ^ ((version as u64 / 16) << 41)
    }

    /// The current contents of `line`.
    pub fn content(&self, line: u64) -> Block {
        let region = self.region_of(line);
        self.synth.block_for(&region.data, self.salted_addr(line))
    }

    /// The boot-time (pristine) contents of `line`, before any stores.
    pub fn pristine_content(&self, line: u64) -> Block {
        let region = self.region_of(line);
        self.synth.block_for(&region.data, line)
    }

    /// Records a store to `line`; the next [`content`](Self::content) may
    /// differ.
    pub fn record_store(&mut self, line: u64) {
        *self.versions.entry(line).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<Profile> {
        vec![Profile::stream(), Profile::rand()]
    }

    #[test]
    fn regions_are_packed_contiguously() {
        let b = MemoryBackend::new(&profiles(), 1);
        assert_eq!(b.core_base(0), 0);
        assert_eq!(b.core_base(1), Profile::stream().footprint_lines);
        assert_eq!(
            b.occupied_lines(),
            Profile::stream().footprint_lines + Profile::rand().footprint_lines
        );
    }

    #[test]
    fn reserved_regions_sit_above_workloads() {
        let b = MemoryBackend::new(&profiles(), 1);
        assert!(b.metadata_line_of(0) >= b.occupied_lines());
        assert!(b.ra_line_of(0) > b.metadata_line_of(b.occupied_lines() - 1));
    }

    #[test]
    fn contents_are_stable_until_stored() {
        let mut b = MemoryBackend::new(&profiles(), 2);
        let before = b.content(100);
        assert_eq!(b.content(100), before);
        // 16 stores guarantee a salt change.
        for _ in 0..16 {
            b.record_store(100);
        }
        assert_ne!(b.content(100), before);
    }

    #[test]
    fn different_regions_use_their_own_profiles() {
        let b = MemoryBackend::new(&profiles(), 3);
        let engine = attache_compress::CompressionEngine::new();
        // Region 1 is RAND: incompressible.
        let base = b.core_base(1);
        let comp = (0..500)
            .filter(|i| engine.fits_subrank(&b.content(base + i)))
            .count();
        assert!(comp < 20, "RAND region compressed {comp}/500");
    }

    #[test]
    #[should_panic(expected = "outside all workload regions")]
    fn out_of_region_access_panics() {
        let b = MemoryBackend::new(&profiles(), 4);
        let _ = b.content(b.occupied_lines() + 10_000_000);
    }
}
