//! The five metadata strategies behind one interface.
//!
//! Everything else in the pipeline — cores, LLC, DRAM — is identical across
//! configurations; only the strategy decides (a) how the controller learns
//! a block's compressibility before reading, (b) what width each access
//! uses, and (c) what *extra* requests metadata management injects. This is
//! what makes the Figs. 12-15 comparisons apples-to-apples.
//!
//! # The Strategy / MemoryBackend split
//!
//! A [`Strategy`] is the *timing-side* brain of the memory controller: on
//! an LLC miss or writeback it produces a [`ReadPlan`] or [`WritePlan`] —
//! pure descriptions of which DRAM requests to issue, at which
//! [`AccessWidth`], in which order, and attributed to which [`Origin`].
//! The [`System`](crate::system::System) turns those plans into scheduled
//! [`attache_dram`] transactions; the strategy never touches bytes or
//! cycles itself.
//!
//! The [`MemoryBackend`](crate::backend::MemoryBackend) is the
//! *functional* ground truth the plans are checked against: what every
//! line actually contains, whether it really compresses, and where the
//! metadata and Replacement-Area regions live. Keeping the two apart is
//! what lets a strategy be *wrong* — COPR can mispredict a width, a CID
//! can collide — with the mismatch surfacing as corrective traffic in the
//! timing model rather than as corrupted data, exactly as in hardware.
//!
//! Concretely, per strategy:
//!
//! * **Baseline** (§II) — uncompressed, full-width reads, no side traffic.
//! * **MetadataCache** (§II-B) — an on-controller cache of metadata lines;
//!   misses prepend a blocking install read (`meta_first`), dirty
//!   evictions append metadata writes.
//! * **Attache** (§IV-V) — BLEM embeds the metadata in the line itself, so
//!   reads are issued immediately at the width COPR predicts; wrong
//!   guesses trigger corrective reads, CID collisions fall back to the
//!   Replacement Area.
//! * **Oracle** — free, always-correct metadata: the "Ideal" bound of
//!   Figs. 12-13.
//! * **Cram** — implicit metadata (PAPERS.md: CRAM): a compressed line
//!   *begins with* a marker word, so there is nothing to cache or
//!   predict; every read optimistically fetches the marker-bearing half
//!   and pays a corrective half when the marker is absent, and
//!   marker-colliding incompressible lines take a Touché-style escape
//!   encoding whose parked bytes cost exception-region traffic.

use attache_cache::{MetadataCache, MetadataCacheConfig};
use attache_core::blem::{Blem, StoredImage};
use attache_core::copr::{Copr, CoprConfig};
use attache_core::cram::Cram;
use attache_core::memo::MemoizedEngine;
use attache_dram::{AccessKind, AccessWidth, AddressMapping, Origin, SubrankId};
use attache_core::fasthash::FastMap;
use std::cell::RefCell;

use crate::backend::MemoryBackend;
use crate::config::MetadataStrategyKind;
use crate::faults::{FaultInjector, FaultOutcome, FaultPlan, FaultStats, FaultTargets};
use crate::integrity::{EccVerdict, IntegrityEngine, IntegrityStats};
use crate::mirror::{MirrorOracle, MirrorStats};

/// A request the strategy wants issued (the system assigns ids/cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqSpec {
    /// Physical line address.
    pub line: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Sub-rank footprint.
    pub width: AccessWidth,
    /// Traffic attribution.
    pub origin: Origin,
}

/// How a demand read must be orchestrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlan {
    /// A metadata install read that must complete *before* the data read
    /// can be issued (Metadata-Cache misses only).
    pub meta_first: Option<ReqSpec>,
    /// The data read itself.
    pub data: ReqSpec,
    /// Fire-and-forget side traffic (metadata eviction writes).
    pub side: Vec<ReqSpec>,
    /// COPR's prediction, if a predictor is active (resolved later).
    pub predicted_compressed: Option<bool>,
}

/// How a writeback must be orchestrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// The data write.
    pub data: ReqSpec,
    /// Fire-and-forget side traffic (metadata installs/evictions,
    /// Replacement-Area writes).
    pub side: Vec<ReqSpec>,
}

/// Read-resolution statistics kept by the strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrategyStats {
    /// Demand reads resolved.
    pub reads: u64,
    /// Demand reads that found a compressed block.
    pub compressed_reads: u64,
    /// Writebacks planned.
    pub writes: u64,
    /// Writebacks that stored a compressed block.
    pub compressed_writes: u64,
}

/// The strategy state machine.
#[derive(Debug)]
pub struct Strategy {
    kind: MetadataStrategyKind,
    engine: MemoizedEngine,
    mapping: AddressMapping,
    // MetadataCache / Oracle state: the stored layout's compressibility.
    stored_comp: FastMap<u64, bool>,
    /// Per-line results of probing *pristine* (never-written-back)
    /// contents: `(compressed, cid_collision)`. The pristine image is a
    /// deterministic function of boot-time contents, so the probe is
    /// stable — until a fault injection rewires the scrambler or
    /// scribbles on state, at which point [`apply_faults`](Self::apply_faults)
    /// drops the whole cache. `RefCell` because probes happen on `&self`
    /// read paths.
    pristine_probe: RefCell<FastMap<u64, (bool, bool)>>,
    meta_cache: Option<MetadataCache>,
    // Attaché state.
    blem: Option<Blem>,
    copr: Option<Copr>,
    // CRAM state: the implicit-marker engine (owns the exception region).
    cram: Option<Cram>,
    images: FastMap<u64, StoredImage>,
    stats: StrategyStats,
    // Optional shadow-copy correctness oracle (see crate::mirror).
    mirror: Option<MirrorOracle>,
    // Optional shared event-trace ring, dumped when the oracle fires.
    trace: Option<attache_metrics::SharedTraceRing>,
    // Optional fault injector (see crate::faults); None = chaos off and
    // zero per-access overhead.
    faults: Option<Box<FaultInjector>>,
    // Optional device-integrity engine (see crate::integrity); None =
    // every integrity knob off and zero per-access overhead.
    integrity: Option<Box<IntegrityEngine>>,
}

impl Strategy {
    /// Builds the strategy for `kind`.
    pub fn new(
        kind: MetadataStrategyKind,
        mapping: AddressMapping,
        metadata_cache: MetadataCacheConfig,
        copr: CoprConfig,
        seed: u64,
    ) -> Self {
        Self::with_cid_bits(kind, mapping, metadata_cache, copr, seed, 14)
    }

    /// Builds the strategy with an explicit BLEM CID width (Table I).
    pub fn with_cid_bits(
        kind: MetadataStrategyKind,
        mapping: AddressMapping,
        metadata_cache: MetadataCacheConfig,
        copr: CoprConfig,
        seed: u64,
        cid_bits: u8,
    ) -> Self {
        let meta_cache = (kind == MetadataStrategyKind::MetadataCache)
            .then(|| MetadataCache::new(metadata_cache));
        let blem = (kind == MetadataStrategyKind::Attache)
            .then(|| Blem::with_config(seed, attache_core::header::CidConfig::new(cid_bits)));
        let copr = (kind == MetadataStrategyKind::Attache).then(|| Copr::new(copr));
        let cram = (kind == MetadataStrategyKind::Cram).then(|| Cram::new(seed));
        Self {
            kind,
            engine: MemoizedEngine::new(),
            mapping,
            stored_comp: FastMap::default(),
            pristine_probe: RefCell::new(FastMap::default()),
            meta_cache,
            blem,
            copr,
            cram,
            images: FastMap::default(),
            stats: StrategyStats::default(),
            mirror: None,
            trace: None,
            faults: None,
            integrity: None,
        }
    }

    /// The strategy kind.
    pub fn kind(&self) -> MetadataStrategyKind {
        self.kind
    }

    /// Turns on the mirror-memory oracle: every writeback snapshots the
    /// bytes being stored, and every demand read re-checks what the
    /// functional path decoded against that snapshot, panicking on any
    /// divergence. Pure observer — timing, stats, and request streams
    /// are untouched.
    pub fn enable_mirror(&mut self) {
        self.mirror = Some(MirrorOracle::new());
    }

    /// Test hook: poison the (enabled) mirror oracle's records so the
    /// first checked re-read of a written-back line fails — exercising
    /// the failure-context dump path. No-op without a mirror.
    pub fn poison_mirror(&mut self) {
        if let Some(m) = self.mirror.as_mut() {
            m.poison();
        }
    }

    /// Shares an event-trace ring with this strategy; its contents are
    /// appended to the panic message when the mirror oracle fires.
    pub fn set_trace(&mut self, ring: attache_metrics::SharedTraceRing) {
        self.trace = Some(ring);
    }

    /// Arms the fault injector (see [`crate::faults`]). BLEM (when
    /// present) switches to fault-tolerant decode so corrupted images
    /// produce deterministic garbage blocks — caught by the mirror
    /// oracle and attributed to their fault class — instead of panics
    /// deep inside the decompressors.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        if let Some(b) = self.blem.as_mut() {
            b.set_fault_tolerant_decode(true);
        }
        if let Some(c) = self.cram.as_mut() {
            c.set_fault_tolerant_decode(true);
        }
        self.faults = Some(Box::new(FaultInjector::new(plan)));
    }

    /// Arms the device-integrity engine (see [`crate::integrity`]):
    /// soft errors at `ber_ppm` ppm of line-touches (0 = none) below a
    /// modeled SEC-DED ECC layer (`ecc`), with poison propagation and
    /// per-strategy recovery on uncorrectable reads.
    pub fn enable_integrity(&mut self, seed: u64, ber_ppm: u64, ecc: bool) {
        self.integrity = Some(Box::new(IntegrityEngine::new(seed, ber_ppm, ecc)));
    }

    /// Integrity counters, when the engine is armed.
    pub fn integrity_stats(&self) -> Option<IntegrityStats> {
        self.integrity.as_ref().map(|e| e.stats())
    }

    /// Extra read latency of the ECC syndrome check in bus cycles (one
    /// when the ECC pipeline is modeled, zero otherwise).
    pub fn ecc_read_delay_bus_cycles(&self) -> u64 {
        u64::from(self.integrity.as_ref().is_some_and(|e| e.ecc_enabled()))
    }

    /// One background scrub check of `line` (see
    /// [`IntegrityEngine::scrub_line`]); no-op without the engine.
    pub fn scrub_line(&mut self, line: u64, backend: &MemoryBackend) {
        if let Some(eng) = self.integrity.as_mut() {
            eng.scrub_line(line, backend);
        }
    }

    /// Accounts a scrub slot skipped because the controller was busy.
    pub fn note_scrub_busy(&mut self) {
        if let Some(eng) = self.integrity.as_mut() {
            eng.note_scrub_busy();
        }
    }

    /// Runs the fault-injection schedule for bus cycle `now`. Returns
    /// `None` when faults are off or no injection is due; otherwise the
    /// actions/events the system must apply.
    pub fn apply_faults(&mut self, now: u64) -> Option<FaultOutcome> {
        let Self {
            images,
            blem,
            cram,
            meta_cache,
            faults,
            pristine_probe,
            ..
        } = self;
        let inj = faults.as_mut()?;
        let mut targets = FaultTargets {
            images,
            blem: blem.as_mut(),
            cram: cram.as_mut(),
            meta_cache: meta_cache.as_mut(),
        };
        let outcome = inj.tick(now, &mut targets);
        if outcome.is_some() {
            // An injection landed: a key swap changes every pristine
            // line's scrambled image (and so its CID-collision bit), so
            // every cached probe is now suspect.
            pristine_probe.get_mut().clear();
        }
        outcome
    }

    /// The next scheduled injection tick (`u64::MAX` when faults are off
    /// or the event budget is spent) — the event engine clamps its skip
    /// horizon to this so both engines inject at identical cycles.
    pub fn next_fault_tick(&self) -> u64 {
        self.faults.as_ref().map_or(u64::MAX, |f| f.next_tick())
    }

    /// Per-class fault counters, when injection is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// The attached trace ring's dump, prefixed with a newline, or the
    /// empty string when no ring is attached. Evaluated only inside
    /// failure paths.
    fn trace_dump(&self) -> String {
        self.trace
            .as_ref()
            .map(|r| format!("\n{}", attache_metrics::dump_shared(r)))
            .unwrap_or_default()
    }

    /// The mirror oracle's activity counters, if it is enabled.
    pub fn mirror_stats(&self) -> Option<MirrorStats> {
        self.mirror.as_ref().map(|m| m.stats())
    }

    /// Oracle hook (Attaché written path): the block the BLEM decode
    /// produced must be byte-identical to the snapshot taken when the
    /// line was written back. This is the end-to-end losslessness check
    /// across compression, the CID/XID header, scrambling, and the
    /// Replacement Area.
    fn mirror_check_decoded(&mut self, line: u64, decoded: &[u8; 64]) {
        let Self {
            kind,
            mirror,
            trace,
            faults,
            ..
        } = self;
        let Some(mirror) = mirror.as_mut() else {
            // No oracle to check against: if this line carries an
            // injected corruption, the read just consumed it silently.
            if let Some(inj) = faults.as_mut() {
                inj.note_unverified_read(line);
            }
            return;
        };
        match mirror.check_read(line, decoded) {
            Ok(()) => {
                if let Some(inj) = faults.as_mut() {
                    inj.note_clean_read(line);
                }
            }
            Err(m) => {
                if let Some(inj) = faults.as_mut() {
                    if inj.note_mismatch(line) {
                        // Attributed to an injected fault: count the
                        // detection and re-align the shadow record to the
                        // corrupted decode, so the run continues and only
                        // *new* divergences fire.
                        mirror.heal(line, decoded);
                        return;
                    }
                }
                let dump = trace
                    .as_ref()
                    .map(|r| format!("\n{}", attache_metrics::dump_shared(r)))
                    .unwrap_or_default();
                panic!("[attache-sim] {kind} mirror oracle: {m}{dump}");
            }
        }
    }

    /// Oracle hook (Attaché pristine path): a read that skipped the
    /// functional decode is only legal for a line that was never written
    /// back — a recorded snapshot here means the strategy lost track of
    /// a stored image.
    fn mirror_check_pristine(&mut self, line: u64) {
        if let Some(mirror) = self.mirror.as_ref() {
            assert!(
                mirror.recorded(line).is_none(),
                "[attache-sim] {} mirror oracle: line {line:#x} was written back \
                 but the read took the pristine path{}",
                self.kind,
                self.trace_dump()
            );
        }
    }

    /// Oracle hook (MetadataCache / Oracle): those strategies store lines
    /// verbatim, so there are no decoded bytes to diff; instead the
    /// stored-layout classification the read resolved is re-derived from
    /// the snapshot bytes and cross-checked.
    fn mirror_check_classification(&mut self, line: u64, comp: bool) {
        let Some(rec) = self.mirror.as_ref().and_then(|m| m.recorded(line)).copied() else {
            return;
        };
        let expect = self.engine.fits_subrank(&rec);
        // Count it as a checked read (the byte comparison is the identity
        // for verbatim strategies, so `check_read` cannot fail here).
        let mirror = self.mirror.as_mut().expect("mirror present");
        mirror.check_read(line, &rec).expect("identity check");
        assert_eq!(
            comp, expect,
            "[attache-sim] {} mirror oracle: line {line:#x} classified \
             compressed={comp} but the stored bytes compress to {expect}{}",
            self.kind,
            self.trace_dump()
        );
    }

    /// The compressed line's home sub-rank: odd rows in sub-rank 0, even
    /// rows in sub-rank 1 (§IV-E).
    pub fn primary_subrank(&self, line: u64) -> SubrankId {
        SubrankId((self.mapping.decompose(line).row % 2) as u8)
    }

    /// The block holding `line`'s compression metadata. Following the
    /// paper's Fig. 7, metadata lives **in the same DRAM row** as its
    /// data (the head block of the row), so an install issued around the
    /// data access is a row-buffer hit, not a second random access.
    pub fn metadata_line_of(&self, line: u64) -> u64 {
        let mut loc = self.mapping.decompose(line);
        loc.col = 0;
        self.mapping.compose(loc)
    }

    /// The stored layout's compressibility for `line`.
    ///
    /// Lines that were written back carry explicit state; lines still in
    /// their boot-time (pristine) state are evaluated on demand — the
    /// stored image is a deterministic function of the pristine contents,
    /// so nothing needs to be materialized.
    fn actual_compressed(&self, line: u64, backend: &MemoryBackend) -> bool {
        match self.kind {
            MetadataStrategyKind::Baseline => false,
            MetadataStrategyKind::Attache | MetadataStrategyKind::Cram => {
                match self.images.get(&line) {
                    Some(img) => img.is_compressed(),
                    None => self.probe_pristine(line, backend).0,
                }
            }
            MetadataStrategyKind::MetadataCache | MetadataStrategyKind::Oracle => {
                match self.stored_comp.get(&line) {
                    Some(&c) => c,
                    None => self.probe_pristine(line, backend).0,
                }
            }
        }
    }

    /// Probes `line`'s pristine contents through the per-line cache:
    /// `(compressed, cid_collision)` for Attaché, `(compressed,
    /// marker_collision)` for Cram, `(fits_subrank, false)` for the
    /// verbatim strategies. Every demand read of a never-written line
    /// lands here (often twice: plan + resolve), so the cache turns the
    /// steady-state cost into one map lookup.
    fn probe_pristine(&self, line: u64, backend: &MemoryBackend) -> (bool, bool) {
        if let Some(&hit) = self.pristine_probe.borrow().get(&line) {
            return hit;
        }
        let result = match self.kind {
            MetadataStrategyKind::Attache => {
                let blem = self.blem.as_ref().expect("attache has blem");
                blem.probe_line(line, &backend.pristine_content(line))
            }
            MetadataStrategyKind::Cram => {
                let cram = self.cram.as_ref().expect("cram present");
                cram.probe(&backend.pristine_content(line))
            }
            _ => (
                self.engine.fits_subrank(&backend.pristine_content(line)),
                false,
            ),
        };
        self.pristine_probe.borrow_mut().insert(line, result);
        result
    }

    /// Plans a demand read of `line` for `core`.
    pub fn plan_read(&mut self, line: u64, core: u8, backend: &MemoryBackend) -> ReadPlan {
        let actual = self.actual_compressed(line, backend);
        let demand = Origin::Demand { core };
        match self.kind {
            MetadataStrategyKind::Baseline => ReadPlan {
                meta_first: None,
                data: ReqSpec {
                    line,
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: demand,
                },
                side: Vec::new(),
                predicted_compressed: None,
            },
            MetadataStrategyKind::Oracle => ReadPlan {
                meta_first: None,
                data: ReqSpec {
                    line,
                    kind: AccessKind::Read,
                    width: self.width_for(line, actual),
                    origin: demand,
                },
                side: Vec::new(),
                predicted_compressed: None,
            },
            MetadataStrategyKind::MetadataCache => {
                let mc = self.meta_cache.as_mut().expect("metadata cache present");
                let lookup = mc.lookup(line);
                let meta_line = self.metadata_line_of(line);
                let meta_first = lookup.install_read.then_some(ReqSpec {
                    line: meta_line,
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: Origin::MetadataInstall,
                });
                let side = if lookup.eviction_write {
                    vec![ReqSpec {
                        line: meta_line,
                        kind: AccessKind::Write,
                        width: AccessWidth::Full,
                        origin: Origin::MetadataWriteback,
                    }]
                } else {
                    Vec::new()
                };
                ReadPlan {
                    meta_first,
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Read,
                        width: self.width_for(line, actual),
                        origin: demand,
                    },
                    side,
                    predicted_compressed: None,
                }
            }
            MetadataStrategyKind::Attache => {
                let predicted = self.copr.as_ref().expect("copr present").predict(line);
                let width = self.width_for(line, predicted);
                ReadPlan {
                    meta_first: None,
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Read,
                        width,
                        origin: demand,
                    },
                    side: Vec::new(),
                    predicted_compressed: Some(predicted),
                }
            }
            MetadataStrategyKind::Cram => ReadPlan {
                meta_first: None,
                data: ReqSpec {
                    line,
                    kind: AccessKind::Read,
                    // Implicit metadata: the controller cannot know the
                    // stored width until the data arrives, so it always
                    // fetches the marker-bearing half first and corrects
                    // when the marker is absent.
                    width: AccessWidth::Half(self.primary_subrank(line)),
                    origin: demand,
                },
                side: Vec::new(),
                predicted_compressed: None,
            },
        }
    }

    fn width_for(&self, line: u64, compressed: bool) -> AccessWidth {
        if compressed {
            AccessWidth::Half(self.primary_subrank(line))
        } else {
            AccessWidth::Full
        }
    }

    /// Called when the demand data read of `line` completes; appends the
    /// follow-up requests the transaction must still wait on (corrective
    /// second-half fetches, Replacement-Area reads) to `follow`, a
    /// caller-owned scratch buffer that is cleared first — reusing it
    /// keeps the per-read fast path allocation-free.
    pub fn on_read_data(
        &mut self,
        line: u64,
        predicted: Option<bool>,
        core: u8,
        backend: &MemoryBackend,
        follow: &mut Vec<ReqSpec>,
    ) {
        follow.clear();
        self.stats.reads += 1;
        // The device/ECC layer sees the read first: by the time bytes
        // reach the decode chain below they are corrected — or the read
        // is poisoned and a recovery path is appended after the arm.
        let verdict = match self.integrity.take() {
            Some(mut eng) => {
                let compressed = self.actual_compressed(line, backend);
                let primary = self.primary_subrank(line).0;
                let v = eng.touch_read(line, primary, compressed, backend);
                self.integrity = Some(eng);
                Some(v)
            }
            None => None,
        };
        match self.kind {
            MetadataStrategyKind::Baseline => {}
            MetadataStrategyKind::MetadataCache | MetadataStrategyKind::Oracle => {
                let comp = self.actual_compressed(line, backend);
                if comp {
                    self.stats.compressed_reads += 1;
                }
                self.mirror_check_classification(line, comp);
            }
            MetadataStrategyKind::Attache => {
                // Written-back lines go through the full functional BLEM
                // read (verifying the header flow and servicing the RA);
                // pristine lines are evaluated with the (cached) pure probe.
                let (actual, collision, decoded) = match self.images.get(&line) {
                    Some(image) => {
                        let image = image.clone();
                        let blem = self.blem.as_mut().expect("blem present");
                        let (block, info) = blem.read_line(line, &image);
                        (info.compressed, info.collision, Some(block))
                    }
                    None => {
                        let (c, coll) = self.probe_pristine(line, backend);
                        (c, coll, None)
                    }
                };
                match decoded {
                    Some(block) => self.mirror_check_decoded(line, &block),
                    None => self.mirror_check_pristine(line),
                }
                if actual {
                    self.stats.compressed_reads += 1;
                }
                let predicted = predicted.expect("attache reads carry a prediction");
                let copr = self.copr.as_mut().expect("copr present");
                copr.record(line, predicted, actual);
                copr.train(line, actual);
                if predicted && !actual {
                    // COPR overpredicted: fetch the other 32B half.
                    follow.push(ReqSpec {
                        line,
                        kind: AccessKind::Read,
                        width: AccessWidth::Half(self.primary_subrank(line).other()),
                        origin: Origin::Corrective { core },
                    });
                }
                if collision {
                    follow.push(ReqSpec {
                        line: backend.ra_line_of(line),
                        kind: AccessKind::Read,
                        width: AccessWidth::Full,
                        origin: Origin::ReplacementArea,
                    });
                }
            }
            MetadataStrategyKind::Cram => {
                // Written-back lines go through the full functional CRAM
                // read (marker classification, escape restoration);
                // pristine lines are evaluated with the (cached) pure
                // probe.
                let (compressed, exception, decoded) = match self.images.get(&line) {
                    Some(image) => {
                        let image = image.clone();
                        let cram = self.cram.as_mut().expect("cram present");
                        let (block, info) = cram.read_line(line, &image);
                        (info.compressed, info.exception, Some(block))
                    }
                    None => {
                        let (c, exc) = self.probe_pristine(line, backend);
                        (c, exc, None)
                    }
                };
                match decoded {
                    Some(block) => self.mirror_check_decoded(line, &block),
                    None => self.mirror_check_pristine(line),
                }
                if compressed {
                    self.stats.compressed_reads += 1;
                } else {
                    // The optimistic half read found no marker: the line
                    // is stored full-width, fetch the other half.
                    follow.push(ReqSpec {
                        line,
                        kind: AccessKind::Read,
                        width: AccessWidth::Half(self.primary_subrank(line).other()),
                        origin: Origin::Corrective { core },
                    });
                }
                if exception {
                    // Escape-led line: the parked bytes live in the
                    // exception region (the RA address range doubles as
                    // CRAM's exception store).
                    follow.push(ReqSpec {
                        line: backend.ra_line_of(line),
                        kind: AccessKind::Read,
                        width: AccessWidth::Full,
                        origin: Origin::ReplacementArea,
                    });
                }
            }
        }
        if verdict == Some(EccVerdict::Poisoned) {
            self.recover_poisoned(line, core, backend, follow);
        }
    }

    /// Graceful degradation on a detected-uncorrectable read: each
    /// strategy re-sources the line from whatever redundancy it has,
    /// paying the traffic; Baseline has none and surfaces the loss as an
    /// accounted machine-check outcome instead of panicking.
    fn recover_poisoned(
        &mut self,
        line: u64,
        core: u8,
        backend: &MemoryBackend,
        follow: &mut Vec<ReqSpec>,
    ) {
        let full_reread = ReqSpec {
            line,
            kind: AccessKind::Read,
            width: AccessWidth::Full,
            origin: Origin::Corrective { core },
        };
        match self.kind {
            MetadataStrategyKind::Baseline => {
                let eng = self.integrity.as_mut().expect("poison implies engine");
                eng.surface_unrecoverable(line);
                return;
            }
            MetadataStrategyKind::Oracle => {
                // Ideal metadata: the bound re-reads at full width and
                // recovers by fiat.
                follow.push(full_reread);
            }
            MetadataStrategyKind::MetadataCache => {
                // The cached metadata covering the line can no longer be
                // trusted: invalidate it, re-install from DRAM, then
                // re-read the data at full width.
                let mc = self.meta_cache.as_mut().expect("metadata cache present");
                mc.fault_invalidate_covering(line);
                follow.push(ReqSpec {
                    line: self.metadata_line_of(line),
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: Origin::MetadataInstall,
                });
                follow.push(full_reread);
            }
            MetadataStrategyKind::Attache => {
                // The header bits travel inside the poisoned line, so
                // the displaced-bit copy in the Replacement Area is the
                // redundancy: refetch it, then the full-width line.
                follow.push(ReqSpec {
                    line: backend.ra_line_of(line),
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: Origin::ReplacementArea,
                });
                follow.push(full_reread);
            }
            MetadataStrategyKind::Cram => {
                // The marker is implicit in the poisoned bytes: fetch
                // the other half (full-width view) and consult the
                // exception store for an escape-parked copy.
                follow.push(ReqSpec {
                    line: backend.ra_line_of(line),
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: Origin::ReplacementArea,
                });
                follow.push(full_reread);
            }
        }
        let eng = self.integrity.as_mut().expect("poison implies engine");
        eng.recover(line);
    }

    /// Plans a writeback of `line` (LLC dirty eviction) for `core`.
    pub fn plan_write(&mut self, line: u64, _core: u8, backend: &MemoryBackend) -> WritePlan {
        self.stats.writes += 1;
        if let Some(mirror) = self.mirror.as_mut() {
            // Snapshot exactly what the strategy is being asked to store;
            // the live backend contents may advance past this (store-issue
            // time versioning) before the line is next read.
            mirror.record_write(line, &backend.content(line));
        }
        let mut wrote_collision = false;
        let plan = match self.kind {
            MetadataStrategyKind::Baseline => WritePlan {
                data: ReqSpec {
                    line,
                    kind: AccessKind::Write,
                    width: AccessWidth::Full,
                    origin: Origin::Writeback,
                },
                side: Vec::new(),
            },
            MetadataStrategyKind::Oracle => {
                let c = self.engine.fits_subrank(&backend.content(line));
                self.stored_comp.insert(line, c);
                if c {
                    self.stats.compressed_writes += 1;
                }
                WritePlan {
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Write,
                        width: self.width_for(line, c),
                        origin: Origin::Writeback,
                    },
                    side: Vec::new(),
                }
            }
            MetadataStrategyKind::MetadataCache => {
                let c = self.engine.fits_subrank(&backend.content(line));
                let old = self
                    .stored_comp
                    .insert(line, c)
                    .unwrap_or_else(|| self.probe_pristine(line, backend).0);
                if c {
                    self.stats.compressed_writes += 1;
                }
                let changed = old != c;
                let mc = self.meta_cache.as_mut().expect("metadata cache present");
                let lookup = if changed { mc.update(line) } else { mc.lookup(line) };
                let meta_line = self.metadata_line_of(line);
                let mut side = Vec::new();
                if lookup.install_read {
                    side.push(ReqSpec {
                        line: meta_line,
                        kind: AccessKind::Read,
                        width: AccessWidth::Full,
                        origin: Origin::MetadataInstall,
                    });
                }
                if lookup.eviction_write {
                    side.push(ReqSpec {
                        line: meta_line,
                        kind: AccessKind::Write,
                        width: AccessWidth::Full,
                        origin: Origin::MetadataWriteback,
                    });
                }
                WritePlan {
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Write,
                        width: self.width_for(line, c),
                        origin: Origin::Writeback,
                    },
                    side,
                }
            }
            MetadataStrategyKind::Attache => {
                let blem = self.blem.as_mut().expect("blem present");
                let w = blem.write_line(line, &backend.content(line));
                let compressed = w.compressed;
                let collision = w.collision;
                wrote_collision = collision;
                self.images.insert(line, w.image);
                if compressed {
                    self.stats.compressed_writes += 1;
                }
                self.copr
                    .as_mut()
                    .expect("copr present")
                    .train(line, compressed);
                let mut side = Vec::new();
                if collision {
                    side.push(ReqSpec {
                        line: backend.ra_line_of(line),
                        kind: AccessKind::Write,
                        width: AccessWidth::Full,
                        origin: Origin::ReplacementArea,
                    });
                }
                WritePlan {
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Write,
                        width: self.width_for(line, compressed),
                        origin: Origin::Writeback,
                    },
                    side,
                }
            }
            MetadataStrategyKind::Cram => {
                let cram = self.cram.as_mut().expect("cram present");
                let w = cram.write_line(line, &backend.content(line));
                let compressed = w.compressed;
                let exception = w.exception;
                wrote_collision = exception;
                self.images.insert(line, w.image);
                if compressed {
                    self.stats.compressed_writes += 1;
                }
                let mut side = Vec::new();
                if exception {
                    // Park the displaced marker-colliding bytes in the
                    // exception region.
                    side.push(ReqSpec {
                        line: backend.ra_line_of(line),
                        kind: AccessKind::Write,
                        width: AccessWidth::Full,
                        origin: Origin::ReplacementArea,
                    });
                }
                WritePlan {
                    data: ReqSpec {
                        line,
                        kind: AccessKind::Write,
                        width: self.width_for(line, compressed),
                        origin: Origin::Writeback,
                    },
                    side,
                }
            }
        };
        if let Some(inj) = self.faults.as_mut() {
            // A write both refreshes the targetable-line lists and
            // absorbs any corruption still pending on this line (the
            // corrupted image was just replaced, so no read can ever
            // surface it).
            inj.note_write(line, wrote_collision);
        }
        if let Some(eng) = self.integrity.as_mut() {
            // The device cells are rewritten: snapshot the clean image
            // and encode fresh check bytes. The plan's data width is
            // the stored layout (half ⇔ compressed).
            let compressed = matches!(plan.data.width, AccessWidth::Half(_));
            eng.note_write(line, &backend.content(line), compressed);
        }
        plan
    }

    /// Read-side latency of the metadata structure consulted before a read
    /// is issued, in **bus cycles** (8 CPU cycles ≈ 3 bus cycles for both
    /// the Metadata-Cache and COPR, per §V; zero for baseline/oracle and
    /// for Cram, which consults nothing before issuing — that is the
    /// point of implicit metadata).
    pub fn lookup_delay_bus_cycles(&self) -> u64 {
        match self.kind {
            MetadataStrategyKind::MetadataCache | MetadataStrategyKind::Attache => 3,
            _ => 0,
        }
    }

    /// Strategy-level counters.
    pub fn stats(&self) -> StrategyStats {
        self.stats
    }

    /// COPR accuracy counters (Attaché only).
    pub fn copr_stats(&self) -> Option<attache_core::copr::CoprStats> {
        self.copr.as_ref().map(|c| c.stats())
    }

    /// COPR accuracy counters split by the predictor component that
    /// answered, in priority order (Attaché only).
    pub fn copr_source_stats(
        &self,
    ) -> Option<[(&'static str, attache_core::copr::CoprStats); 4]> {
        use attache_core::copr::CoprSource;
        self.copr
            .as_ref()
            .map(|c| CoprSource::ALL.map(|s| (s.key(), c.source_stats(s))))
    }

    /// BLEM XID 0→1 forcings among write collisions (Attaché only).
    pub fn blem_xid_flips(&self) -> Option<u64> {
        self.blem.as_ref().map(|b| b.xid_flips())
    }

    /// BLEM counters (Attaché only).
    pub fn blem_stats(&self) -> Option<attache_core::blem::BlemStats> {
        self.blem.as_ref().map(|b| b.stats())
    }

    /// Replacement-Area counters (Attaché only).
    pub fn ra_stats(&self) -> Option<attache_core::replacement_area::ReplacementAreaStats> {
        self.blem.as_ref().map(|b| b.ra_stats())
    }

    /// Metadata-Cache statistics (MetadataCache only).
    pub fn metadata_cache_stats(
        &self,
    ) -> Option<(attache_cache::CacheStats, attache_cache::metadata_cache::MetadataTraffic)> {
        self.meta_cache.as_ref().map(|m| (m.stats(), m.traffic()))
    }

    /// CRAM implicit-metadata counters (Cram only).
    pub fn cram_stats(&self) -> Option<attache_core::cram::CramStats> {
        self.cram.as_ref().map(|c| c.stats())
    }

    /// Resets all statistics after warm-up (training state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = StrategyStats::default();
        if let Some(c) = self.copr.as_mut() {
            c.reset_stats();
        }
        if let Some(b) = self.blem.as_mut() {
            b.reset_stats();
        }
        if let Some(m) = self.meta_cache.as_mut() {
            m.reset_stats();
        }
        if let Some(c) = self.cram.as_mut() {
            c.reset_stats();
        }
        if let Some(e) = self.integrity.as_mut() {
            e.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attache_cache::MetadataCacheConfig;
    use attache_core::copr::CoprConfig;
    use attache_dram::DramConfig;
    use attache_workloads::Profile;

    fn backend() -> MemoryBackend {
        MemoryBackend::new(&[Profile::stream(), Profile::rand()], 9)
    }

    fn strategy(kind: MetadataStrategyKind) -> Strategy {
        Strategy::new(
            kind,
            AddressMapping::new(DramConfig::table2()),
            MetadataCacheConfig::paper_1mb(),
            CoprConfig::paper_default(1 << 22),
            9,
        )
    }

    #[test]
    fn baseline_reads_and_writes_are_always_full_width() {
        let mut s = strategy(MetadataStrategyKind::Baseline);
        let b = backend();
        for line in [0u64, 17, 999] {
            let plan = s.plan_read(line, 0, &b);
            assert_eq!(plan.data.width, AccessWidth::Full);
            assert!(plan.meta_first.is_none());
            assert!(plan.side.is_empty());
            assert!(plan.predicted_compressed.is_none());
            let wp = s.plan_write(line, 0, &b);
            assert_eq!(wp.data.width, AccessWidth::Full);
            assert!(wp.side.is_empty());
        }
    }

    #[test]
    fn oracle_width_matches_actual_compressibility() {
        let mut s = strategy(MetadataStrategyKind::Oracle);
        let b = backend();
        // Region 1 is RAND (incompressible): oracle must read full width.
        let rand_base = b.core_base(1);
        let plan = s.plan_read(rand_base + 5, 0, &b);
        assert_eq!(plan.data.width, AccessWidth::Full);
        // Find a compressible stream line; oracle must read half width.
        let comp_line = (0..500u64)
            .find(|&l| s.actual_compressed(l, &b))
            .expect("stream region has compressible lines");
        let plan = s.plan_read(comp_line, 0, &b);
        assert!(matches!(plan.data.width, AccessWidth::Half(_)));
    }

    #[test]
    fn primary_subrank_follows_row_parity() {
        let s = strategy(MetadataStrategyKind::Attache);
        let mapping = AddressMapping::new(DramConfig::table2());
        for line in [0u64, 12345, 777_777] {
            let loc = mapping.decompose(line);
            assert_eq!(
                s.primary_subrank(line).0 as usize,
                loc.row % 2,
                "line {line}"
            );
        }
    }

    #[test]
    fn metadata_cache_cold_read_issues_install_then_data() {
        let mut s = strategy(MetadataStrategyKind::MetadataCache);
        let b = backend();
        let plan = s.plan_read(42, 0, &b);
        let meta = plan.meta_first.expect("cold lookup misses");
        assert_eq!(meta.origin, Origin::MetadataInstall);
        assert_eq!(meta.kind, AccessKind::Read);
        assert_eq!(meta.line, s.metadata_line_of(42));
        // Fig. 7 placement: the install targets the same DRAM row.
        let mapping = AddressMapping::new(DramConfig::table2());
        let data_loc = mapping.decompose(42);
        let meta_loc = mapping.decompose(meta.line);
        assert_eq!(meta_loc.row, data_loc.row);
        assert_eq!(meta_loc.bank, data_loc.bank);
        assert_eq!(meta_loc.channel, data_loc.channel);
        // Second read in the covered 128-block region hits: no install.
        let plan2 = s.plan_read(43, 0, &b);
        assert!(plan2.meta_first.is_none());
    }

    #[test]
    fn attache_overprediction_costs_one_corrective_read() {
        let mut s = strategy(MetadataStrategyKind::Attache);
        let b = backend();
        let rand_base = b.core_base(1);
        // Train COPR to believe everything is compressed.
        for i in 0..256 {
            if let Some(copr) = s.copr.as_mut() {
                copr.train(rand_base + i, true);
            }
        }
        let line = rand_base + 3;
        let plan = s.plan_read(line, 0, &b);
        assert_eq!(plan.predicted_compressed, Some(true));
        assert!(matches!(plan.data.width, AccessWidth::Half(_)));
        let mut follow = Vec::new();
        s.on_read_data(line, plan.predicted_compressed, 0, &b, &mut follow);
        let corrective: Vec<_> = follow
            .iter()
            .filter(|f| matches!(f.origin, Origin::Corrective { .. }))
            .collect();
        assert_eq!(corrective.len(), 1, "one corrective half fetch");
        assert!(matches!(
            corrective[0].width,
            AccessWidth::Half(sr) if sr == s.primary_subrank(line).other()
        ));
    }

    #[test]
    fn attache_underprediction_costs_nothing() {
        let mut s = strategy(MetadataStrategyKind::Attache);
        let b = backend();
        // Cold predictor: predicts uncompressed; stream lines are often
        // compressed -> underprediction, but both halves were fetched.
        let comp_line = (0..500u64)
            .find(|&l| s.actual_compressed(l, &b))
            .expect("compressible line exists");
        let plan = s.plan_read(comp_line, 0, &b);
        assert_eq!(plan.predicted_compressed, Some(false));
        assert_eq!(plan.data.width, AccessWidth::Full);
        let mut follow = Vec::new();
        s.on_read_data(comp_line, plan.predicted_compressed, 0, &b, &mut follow);
        assert!(follow.is_empty());
        let stats = s.copr_stats().unwrap();
        assert_eq!(stats.underpredictions, 1);
        assert_eq!(stats.overpredictions, 0);
    }

    #[test]
    fn attache_writeback_of_compressed_line_is_half_width() {
        let mut s = strategy(MetadataStrategyKind::Attache);
        let b = backend();
        let comp_line = (0..500u64)
            .find(|&l| s.actual_compressed(l, &b))
            .expect("compressible line exists");
        let wp = s.plan_write(comp_line, 0, &b);
        assert!(matches!(wp.data.width, AccessWidth::Half(_)));
        assert_eq!(wp.data.origin, Origin::Writeback);
    }

    #[test]
    fn lookup_delays_match_strategies() {
        assert_eq!(strategy(MetadataStrategyKind::Baseline).lookup_delay_bus_cycles(), 0);
        assert_eq!(strategy(MetadataStrategyKind::Oracle).lookup_delay_bus_cycles(), 0);
        assert_eq!(strategy(MetadataStrategyKind::Attache).lookup_delay_bus_cycles(), 3);
        assert_eq!(
            strategy(MetadataStrategyKind::MetadataCache).lookup_delay_bus_cycles(),
            3
        );
        // Implicit metadata consults nothing before issuing.
        assert_eq!(strategy(MetadataStrategyKind::Cram).lookup_delay_bus_cycles(), 0);
    }

    #[test]
    fn cram_reads_are_always_optimistic_half_width() {
        let mut s = strategy(MetadataStrategyKind::Cram);
        let b = backend();
        let rand_base = b.core_base(1);
        for line in [0u64, 17, rand_base + 3] {
            let plan = s.plan_read(line, 0, &b);
            assert!(plan.meta_first.is_none());
            assert!(plan.side.is_empty());
            assert!(plan.predicted_compressed.is_none());
            assert_eq!(
                plan.data.width,
                AccessWidth::Half(s.primary_subrank(line)),
                "line {line}"
            );
        }
    }

    #[test]
    fn cram_plain_line_costs_one_corrective_half() {
        let mut s = strategy(MetadataStrategyKind::Cram);
        let b = backend();
        let rand_base = b.core_base(1);
        let line = (rand_base..rand_base + 500)
            .find(|&l| !s.actual_compressed(l, &b))
            .expect("rand region has incompressible lines");
        let plan = s.plan_read(line, 0, &b);
        let mut follow = Vec::new();
        s.on_read_data(line, plan.predicted_compressed, 0, &b, &mut follow);
        assert_eq!(follow.len(), 1, "exactly one corrective fetch");
        assert!(matches!(follow[0].origin, Origin::Corrective { .. }));
        assert!(matches!(
            follow[0].width,
            AccessWidth::Half(sr) if sr == s.primary_subrank(line).other()
        ));
    }

    #[test]
    fn cram_marker_hit_needs_no_follow_up() {
        let mut s = strategy(MetadataStrategyKind::Cram);
        let b = backend();
        let comp_line = (0..500u64)
            .find(|&l| s.actual_compressed(l, &b))
            .expect("stream region has compressible lines");
        // Write it back so the read goes through the functional engine.
        let wp = s.plan_write(comp_line, 0, &b);
        assert!(matches!(wp.data.width, AccessWidth::Half(_)));
        assert!(wp.side.is_empty());
        let plan = s.plan_read(comp_line, 0, &b);
        let mut follow = Vec::new();
        s.on_read_data(comp_line, plan.predicted_compressed, 0, &b, &mut follow);
        assert!(follow.is_empty(), "implicit hit resolves in one access");
        let cs = s.cram_stats().expect("cram stats present");
        assert_eq!(cs.compressed_reads, 1);
        assert_eq!(cs.read_exceptions, 0);
    }

    #[test]
    fn cram_stats_are_exclusive_to_the_cram_strategy() {
        assert!(strategy(MetadataStrategyKind::Cram).cram_stats().is_some());
        for kind in MetadataStrategyKind::ALL {
            if kind != MetadataStrategyKind::Cram {
                assert!(strategy(kind).cram_stats().is_none(), "{kind}");
            }
            // Conversely Cram carries none of the rival machinery.
        }
        let s = strategy(MetadataStrategyKind::Cram);
        assert!(s.copr_stats().is_none());
        assert!(s.blem_stats().is_none());
        assert!(s.ra_stats().is_none());
        assert!(s.metadata_cache_stats().is_none());
    }
}
