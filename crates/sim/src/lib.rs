//! The full-system simulator for the Attaché reproduction.
//!
//! Ties together the substrates: trace-driven OoO [cores](core_model), the
//! shared [LLC](attache_cache::Llc), a [metadata strategy](strategy)
//! (Baseline / Metadata-Cache / Attaché / Oracle / Cram) and the cycle-level
//! [DRAM model](attache_dram). One [`System::run_rate_mode`] call
//! reproduces one bar of one figure.
//!
//! # Example
//!
//! ```
//! use attache_sim::{MetadataStrategyKind, SimConfig, System};
//! use attache_workloads::Profile;
//!
//! let cfg = SimConfig::table2_baseline()
//!     .with_strategy(MetadataStrategyKind::Attache)
//!     .with_instructions(20_000, 2_000);
//! let report = System::run_rate_mode(&cfg, Profile::stream(), 42);
//! assert!(report.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod core_model;
pub mod env;
pub mod faults;
pub mod inline;
pub mod integrity;
pub mod mirror;
pub mod observe;
pub mod report_io;
pub mod stats;
pub mod strategy;
pub mod system;

pub use attache_dram::BackendKind;
pub use config::{
    backend_from_env, backend_from_env_value, shards_from_env, CoreConfig, EngineKind,
    MetadataStrategyKind, SimConfig,
};
pub use env::{env_u64, env_u64_opt, unknown_knobs, KNOWN_KNOBS};
pub use faults::{FaultClass, FaultCounters, FaultPlan, FaultStats, TickBudgetExceeded};
pub use inline::InlineVec;
pub use integrity::{EccVerdict, IntegrityEngine, IntegrityStats};
pub use mirror::{MirrorGlobalStats, MirrorMismatch, MirrorOracle, MirrorStats};
pub use observe::Observation;
pub use stats::{RunReport, BUS_CYCLE_NS};
pub use strategy::{ReadPlan, ReqSpec, Strategy, StrategyStats, WritePlan};
pub use system::System;
