//! The mirror-memory oracle: an independent shadow copy of "what should
//! be stored" per line, used to catch silent data corruption anywhere in
//! the strategy stack.
//!
//! Attaché folds metadata *into* the stored line (CID/XID header bits,
//! scrambling, the Replacement Area for displaced bits), so a bug in any
//! of those layers corrupts data silently — the simulator would keep
//! producing plausible timing numbers from garbage contents. The oracle
//! closes that hole: every writeback records the exact 64 bytes the
//! strategy was asked to store, and every demand read that goes through
//! the functional decode path re-checks the decoded bytes against that
//! record. Zero model state is shared with the strategies: the oracle is
//! a plain `line → bytes` map.
//!
//! Enablement is per-run: `SimConfig::mirror` (builder
//! [`crate::SimConfig::with_mirror`], or `ATTACHE_MIRROR=1` in the
//! environment, read per config construction so tests can toggle it).
//! The oracle is a pure observer — it never changes timing, stats, or
//! request streams — so enabling it in CI is behavior-neutral.
//!
//! Process-wide counters ([`global_stats`]) let end-to-end suites assert
//! the oracle actually observed traffic (a disabled oracle that reports
//! "zero mismatches" vacuously would be worse than none).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 64-byte cache line, the unit the oracle records.
pub type MirrorLine = [u8; 64];

static GLOBAL_WRITES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_READS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide oracle activity counters, summed over every
/// oracle instance that ever ran in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirrorGlobalStats {
    /// Writebacks recorded into any mirror.
    pub writes_recorded: u64,
    /// Demand reads checked against any mirror.
    pub reads_checked: u64,
}

/// Snapshot of the process-wide counters. Monotonic: suites assert deltas
/// across a run rather than absolute values, so concurrently running
/// tests only ever add.
pub fn global_stats() -> MirrorGlobalStats {
    MirrorGlobalStats {
        writes_recorded: GLOBAL_WRITES.load(Ordering::Relaxed),
        reads_checked: GLOBAL_READS.load(Ordering::Relaxed),
    }
}

/// Per-oracle activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// Writebacks recorded.
    pub writes_recorded: u64,
    /// Reads checked byte-for-byte against the shadow copy.
    pub reads_checked: u64,
}

/// A detected divergence between what was stored and what a read decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorMismatch {
    /// The line address that diverged.
    pub line: u64,
    /// The bytes recorded at writeback time.
    pub expected: MirrorLine,
    /// The bytes the read path returned.
    pub got: MirrorLine,
}

impl fmt::Display for MirrorMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mirror-memory mismatch at line {:#x} ({} byte(s) differ)",
            self.line,
            self.expected
                .iter()
                .zip(&self.got)
                .filter(|(a, b)| a != b)
                .count()
        )?;
        for (i, (e, g)) in self.expected.iter().zip(&self.got).enumerate() {
            if e != g {
                writeln!(f, "  byte {i:2}: stored {e:#04x}, read back {g:#04x}")?;
            }
        }
        Ok(())
    }
}

/// The shadow map: last bytes written per line, as handed to the
/// strategy at writeback time.
///
/// Note the recording point deliberately snapshots the backend contents
/// *at writeback planning time*: the functional backend advances line
/// versions when stores are issued to the LLC, so by the time a dirty
/// line is evicted the live contents may already describe a newer write.
/// What must survive DRAM is exactly what the strategy encoded.
#[derive(Debug, Default)]
pub struct MirrorOracle {
    map: HashMap<u64, MirrorLine>,
    stats: MirrorStats,
    poison: bool,
}

impl MirrorOracle {
    /// An empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Test hook: corrupt byte 0 of every record at write time, so the
    /// first checked re-read of a written-back line reports a mismatch.
    /// Used to exercise the failure-reporting path (the panic message
    /// and its attached trace-ring dump) end to end.
    pub fn poison(&mut self) {
        self.poison = true;
    }

    /// Records `bytes` as the authoritative contents of `line`.
    pub fn record_write(&mut self, line: u64, bytes: &MirrorLine) {
        let mut stored = *bytes;
        if self.poison {
            stored[0] ^= 0xFF;
        }
        self.map.insert(line, stored);
        self.stats.writes_recorded += 1;
        GLOBAL_WRITES.fetch_add(1, Ordering::Relaxed);
    }

    /// The recorded contents of `line`, if it was ever written.
    pub fn recorded(&self, line: u64) -> Option<&MirrorLine> {
        self.map.get(&line)
    }

    /// Overwrites the record for `line` without touching activity
    /// counters or the poison hook. Used by the fault-injection recovery
    /// path: after a mismatch is attributed to an injected fault, the
    /// record is re-aligned to what the (corrupted) memory now decodes
    /// to, so the run continues and only *new* divergences fire.
    pub fn heal(&mut self, line: u64, bytes: &MirrorLine) {
        self.map.insert(line, *bytes);
    }

    /// Checks bytes returned by a read of `line` against the record.
    ///
    /// Lines with no record (never written back — still pristine) are
    /// not checked here; callers assert that invariant separately
    /// because "no record" means the read must have gone down the
    /// pristine path, which is itself worth verifying.
    pub fn check_read(&mut self, line: u64, got: &MirrorLine) -> Result<(), Box<MirrorMismatch>> {
        self.stats.reads_checked += 1;
        GLOBAL_READS.fetch_add(1, Ordering::Relaxed);
        match self.map.get(&line) {
            Some(expected) if expected != got => Err(Box::new(MirrorMismatch {
                line,
                expected: *expected,
                got: *got,
            })),
            _ => Ok(()),
        }
    }

    /// Activity counters for this oracle.
    pub fn stats(&self) -> MirrorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(fill: u8) -> MirrorLine {
        let mut b = [0u8; 64];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = fill.wrapping_add(i as u8);
        }
        b
    }

    #[test]
    fn matching_read_passes() {
        let mut m = MirrorOracle::new();
        m.record_write(7, &patterned(3));
        assert!(m.check_read(7, &patterned(3)).is_ok());
        assert_eq!(m.stats().writes_recorded, 1);
        assert_eq!(m.stats().reads_checked, 1);
    }

    #[test]
    fn injected_corruption_is_caught() {
        // The acceptance gate: a deliberately flipped byte must surface.
        let mut m = MirrorOracle::new();
        m.record_write(42, &patterned(0));
        let mut corrupted = patterned(0);
        corrupted[17] ^= 0x80;
        let err = m.check_read(42, &corrupted).expect_err("must catch the flip");
        assert_eq!(err.line, 42);
        let msg = err.to_string();
        assert!(msg.contains("byte 17"), "diagnostic must name the byte: {msg}");
        assert!(msg.contains("1 byte(s) differ"), "diagnostic: {msg}");
    }

    #[test]
    fn rewrites_update_the_record() {
        let mut m = MirrorOracle::new();
        m.record_write(9, &patterned(1));
        m.record_write(9, &patterned(2));
        assert!(m.check_read(9, &patterned(2)).is_ok());
        assert!(m.check_read(9, &patterned(1)).is_err());
    }

    #[test]
    fn unrecorded_lines_are_not_flagged() {
        let mut m = MirrorOracle::new();
        assert!(m.check_read(1, &patterned(5)).is_ok());
        assert!(m.recorded(1).is_none());
    }

    #[test]
    fn global_counters_are_monotonic() {
        let before = global_stats();
        let mut m = MirrorOracle::new();
        m.record_write(1, &patterned(0));
        let _ = m.check_read(1, &patterned(0));
        let after = global_stats();
        assert!(after.writes_recorded > before.writes_recorded);
        assert!(after.reads_checked > before.reads_checked);
    }
}
