//! A tiny inline-first vector for per-transaction bookkeeping.
//!
//! Every read transaction carries its list of waiting ROB entries. The
//! list is almost always one entry (the initiating core) and never more
//! than a handful even under heavy sharing, yet a `Vec` pays a heap
//! allocation per transaction — millions per run. [`InlineVec`] keeps the
//! first `N` elements in the struct itself and spills to a `Vec` only
//! past that, so the common case never touches the allocator.
//!
//! Deliberately minimal: `Copy + Default` elements, push/iterate/len.
//! That covers the simulator's waiter lists without any `unsafe`.

/// A vector that stores up to `N` elements inline and spills to the heap
/// beyond that.
#[derive(Debug, Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: usize,
    /// Elements past the first `N`, in push order. Empty (and never
    /// allocated) until an overflowing push.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        Self {
            buf: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// A one-element vector (no allocation).
    pub fn of(first: T) -> Self {
        let mut v = Self::new();
        v.push(first);
        v
    }

    /// Appends `value`, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.buf[self.len] = value;
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let inline = self.len.min(N);
        self.buf[..inline].iter().chain(self.spill.iter()).copied()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pushes_stay_on_the_stack() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.spill.capacity(), 0, "no heap allocation inline");
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn overflow_spills_and_preserves_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::of(10);
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 6);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![10, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn of_builds_a_singleton() {
        let v: InlineVec<(usize, bool), 4> = InlineVec::of((3, true));
        assert_eq!(v.len(), 1);
        assert_eq!(v.iter().next(), Some((3, true)));
    }
}
