//! Run-level reports: everything a figure needs from one simulation.

use attache_cache::metadata_cache::MetadataTraffic;
use attache_cache::CacheStats;
use attache_core::blem::BlemStats;
use attache_core::copr::CoprStats;
use attache_core::cram::CramStats;
use attache_core::replacement_area::ReplacementAreaStats;
use attache_dram::{ChannelStats, EnergyBreakdown};

use crate::config::MetadataStrategyKind;
use crate::integrity::IntegrityStats;
use crate::strategy::StrategyStats;

/// Memory-bus period at 1600 MHz, in nanoseconds.
pub const BUS_CYCLE_NS: f64 = 0.625;

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload name (benchmark or mix).
    pub name: String,
    /// The metadata strategy that ran.
    pub strategy: MetadataStrategyKind,
    /// Memory-bus cycles in the measured region.
    pub bus_cycles: u64,
    /// Instructions retired in the measured region (all cores).
    pub instructions: u64,
    /// Aggregated memory-system statistics.
    pub mem: ChannelStats,
    /// DRAM energy breakdown.
    pub energy: EnergyBreakdown,
    /// Shared-LLC statistics.
    pub llc: CacheStats,
    /// Strategy-level read/write counters.
    pub strategy_stats: StrategyStats,
    /// COPR accuracy (Attaché runs only).
    pub copr: Option<CoprStats>,
    /// BLEM counters (Attaché runs only).
    pub blem: Option<BlemStats>,
    /// Replacement-Area counters (Attaché runs only).
    pub ra: Option<ReplacementAreaStats>,
    /// Metadata-Cache statistics and traffic (MetadataCache runs only).
    pub metadata_cache: Option<(CacheStats, MetadataTraffic)>,
    /// CRAM implicit-marker counters (Cram runs only).
    pub cram: Option<CramStats>,
    /// Device-level soft-error / ECC counters (only when an integrity
    /// knob — `ATTACHE_BER`, `ATTACHE_ECC` or `ATTACHE_SCRUB` — armed
    /// the engine; `None` keeps integrity-off reports byte-identical to
    /// their pre-integrity goldens).
    pub integrity: Option<IntegrityStats>,
}

impl RunReport {
    /// CPU cycles in the measured region (4 GHz core over the 1600 MHz
    /// bus: 2.5 CPU cycles per bus cycle).
    pub fn cpu_cycles(&self) -> u64 {
        self.bus_cycles * 5 / 2
    }

    /// Total instructions retired across cores.
    pub fn total_instructions(&self) -> u64 {
        self.instructions
    }

    /// Aggregate instructions per CPU cycle.
    pub fn ipc(&self) -> f64 {
        if self.cpu_cycles() == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cpu_cycles() as f64
        }
    }

    /// Speedup relative to `baseline` for the same configured work
    /// (ratio of execution times).
    ///
    /// The measured region stops once the *total* retired-instruction
    /// target is reached, so two runs may overshoot it by a handful of
    /// instructions each; they must still be within 1% of each other.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        debug_assert!(
            (self.instructions as f64 - baseline.instructions as f64).abs()
                <= baseline.instructions as f64 * 0.01,
            "speedup comparison across different workloads: {} vs {}",
            self.instructions,
            baseline.instructions
        );
        baseline.bus_cycles as f64 / self.bus_cycles as f64
    }

    /// Energy relative to `baseline` (< 1 means savings).
    pub fn energy_ratio_vs(&self, baseline: &RunReport) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Average demand-read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.mem.avg_read_latency() * BUS_CYCLE_NS
    }

    /// Mean consumed memory bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.bus_cycles == 0 {
            0.0
        } else {
            self.mem.bytes as f64 / (self.bus_cycles as f64 * BUS_CYCLE_NS)
        }
    }

    /// Fraction of demand reads that found a compressed block.
    pub fn compressed_read_fraction(&self) -> f64 {
        if self.strategy_stats.reads == 0 {
            0.0
        } else {
            self.strategy_stats.compressed_reads as f64 / self.strategy_stats.reads as f64
        }
    }

    /// Memory requests attributable to metadata management, as a fraction
    /// of demand traffic (the Fig. 1 / Fig. 15 metric).
    pub fn metadata_traffic_overhead(&self) -> f64 {
        let demand = self.mem.demand_reads + self.mem.corrective_reads + self.mem.data_writes;
        let metadata = self.mem.metadata_reads
            + self.mem.metadata_writes
            + self.mem.replacement_area_reads
            + self.mem.replacement_area_writes;
        if demand == 0 {
            0.0
        } else {
            metadata as f64 / demand as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(bus_cycles: u64, instructions: u64) -> RunReport {
        RunReport {
            name: "test".into(),
            strategy: MetadataStrategyKind::Baseline,
            bus_cycles,
            instructions,
            mem: ChannelStats::default(),
            energy: EnergyBreakdown::default(),
            llc: CacheStats::default(),
            strategy_stats: StrategyStats::default(),
            copr: None,
            blem: None,
            ra: None,
            metadata_cache: None,
            cram: None,
            integrity: None,
        }
    }

    #[test]
    fn cpu_cycles_are_2_5x_bus() {
        assert_eq!(blank(1000, 0).cpu_cycles(), 2500);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = blank(2000, 100);
        let fast = blank(1000, 100);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_counts_all_cores() {
        let r = blank(1000, 5000);
        assert!((r.ipc() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn metadata_overhead_fraction() {
        let mut r = blank(100, 100);
        r.mem.demand_reads = 100;
        r.mem.metadata_reads = 25;
        assert!((r.metadata_traffic_overhead() - 0.25).abs() < 1e-9);
    }
}
