//! Simulation configuration (Table II plus run controls).

use attache_cache::{LlcConfig, MetadataCacheConfig};
use attache_core::copr::CoprConfig;
use attache_dram::{BackendKind, DramConfig, PowerParams};

/// Which metadata scheme the memory controller runs — the comparison axis
/// of Figs. 12-15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataStrategyKind {
    /// No compression, no sub-ranking: the paper's baseline.
    Baseline,
    /// Compression + sub-ranking with an on-controller Metadata-Cache
    /// (Memzip-style): metadata misses cost install reads, dirty evictions
    /// cost writes.
    MetadataCache,
    /// Compression + sub-ranking with Attaché (BLEM + COPR): metadata
    /// travels with data; the predictor chooses the sub-ranks.
    Attache,
    /// Compression + sub-ranking with free, always-correct metadata — the
    /// "ideal" bars in Figs. 12-13.
    Oracle,
    /// Compression + sub-ranking with CRAM-style implicit metadata
    /// (PAPERS.md, Young/Kariyappa/Qureshi): compression state is
    /// inferred from an in-line marker word — no metadata region, no
    /// metadata-cache, no predictor — with a Touché-style escape encoding
    /// absorbing the incompressible lines whose content collides with
    /// the marker.
    Cram,
}

impl MetadataStrategyKind {
    /// Every strategy, in the canonical sweep order. Strategy-generic
    /// test suites and the bench grid iterate this slice so a new
    /// variant cannot silently skip the oracle: [`ordinal`]
    /// (MetadataStrategyKind::ordinal) is an exhaustive match the
    /// compiler re-checks on every added variant, and the `const` block
    /// below fails the build unless `ALL` lists each variant exactly
    /// once, in ordinal order.
    pub const ALL: [Self; 5] = [
        Self::Baseline,
        Self::MetadataCache,
        Self::Attache,
        Self::Oracle,
        Self::Cram,
    ];

    /// This strategy's position in [`ALL`](Self::ALL). The exhaustive
    /// match is the compile-time guard: adding a variant without
    /// extending it refuses to build.
    pub const fn ordinal(self) -> usize {
        match self {
            Self::Baseline => 0,
            Self::MetadataCache => 1,
            Self::Attache => 2,
            Self::Oracle => 3,
            Self::Cram => 4,
        }
    }
}

const _: () = {
    let mut i = 0;
    while i < MetadataStrategyKind::ALL.len() {
        assert!(
            MetadataStrategyKind::ALL[i].ordinal() == i,
            "MetadataStrategyKind::ALL must list every variant in ordinal order"
        );
        i += 1;
    }
};

impl core::fmt::Display for MetadataStrategyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            MetadataStrategyKind::Baseline => "Baseline",
            MetadataStrategyKind::MetadataCache => "MetadataCache",
            MetadataStrategyKind::Attache => "Attache",
            MetadataStrategyKind::Oracle => "Ideal",
            MetadataStrategyKind::Cram => "Cram",
        };
        f.write_str(s)
    }
}

impl core::str::FromStr for MetadataStrategyKind {
    type Err = UnknownStrategy;

    /// Parses the Display form; "Oracle" is accepted as an alias for the
    /// figure label "Ideal".
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Baseline" => Ok(MetadataStrategyKind::Baseline),
            "MetadataCache" => Ok(MetadataStrategyKind::MetadataCache),
            "Attache" => Ok(MetadataStrategyKind::Attache),
            "Ideal" | "Oracle" => Ok(MetadataStrategyKind::Oracle),
            "Cram" => Ok(MetadataStrategyKind::Cram),
            _ => Err(UnknownStrategy),
        }
    }
}

/// Error returned when parsing an unknown strategy name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownStrategy;

impl core::fmt::Display for UnknownStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(
            "unknown metadata strategy (expected Baseline, MetadataCache, Attache, Ideal or Cram)",
        )
    }
}

impl std::error::Error for UnknownStrategy {}

/// Which main-loop engine advances simulated time. Both produce
/// bit-identical [`RunReport`](crate::RunReport)s (asserted by the
/// differential tests in `crates/sim/tests/`); they differ only in
/// wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Poll every bus cycle — the reference engine.
    Cycle,
    /// Skip straight to the next cycle at which anything can change
    /// (DRAM command legality, burst retirement, refresh, core
    /// retire/issue, delayed releases, retry acceptance).
    #[default]
    Event,
}

impl EngineKind {
    /// Reads `ATTACHE_ENGINE` (`cycle` or `event`); unset or unparsable
    /// values fall back to [`EngineKind::Event`] with a warning on stderr
    /// (once).
    pub fn from_env() -> Self {
        static CHOICE: std::sync::OnceLock<EngineKind> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("ATTACHE_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("cycle") => EngineKind::Cycle,
            Ok(v) if v.eq_ignore_ascii_case("event") => EngineKind::Event,
            Ok(v) => {
                eprintln!("warning: ATTACHE_ENGINE={v:?} is not \"cycle\" or \"event\"; using the event engine");
                EngineKind::Event
            }
            Err(_) => EngineKind::Event,
        })
    }
}

/// Core-model parameters (Table II: 8 OoO cores, 4 GHz, 4-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Number of cores.
    pub cores: usize,
    /// Retire/issue width per CPU cycle.
    pub issue_width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_size: u32,
    /// Outstanding memory transactions per core (MSHRs).
    pub max_outstanding: usize,
    /// CPU cycles per memory-bus cycle, times two (Table II: 4 GHz over
    /// 1600 MHz = 2.5, stored as 5 to stay integral).
    pub cpu_cycles_per_2_bus_cycles: u32,
}

impl CoreConfig {
    /// Table II: 8 cores, 4-wide, 4 GHz on a 1600 MHz bus.
    pub fn table2() -> Self {
        Self {
            cores: 8,
            issue_width: 4,
            rob_size: 192,
            max_outstanding: 8,
            cpu_cycles_per_2_bus_cycles: 5,
        }
    }

    /// The production-scale core complex paired with
    /// [`DramConfig::scale8`]: 64 Table-II cores (8 per channel).
    pub fn scale64() -> Self {
        Self {
            cores: 64,
            ..Self::table2()
        }
    }
}

/// The full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core model parameters.
    pub core: CoreConfig,
    /// Shared LLC parameters.
    pub llc: LlcConfig,
    /// Memory system parameters.
    pub dram: DramConfig,
    /// DRAM electrical parameters.
    pub power: PowerParams,
    /// Metadata scheme under test.
    pub strategy: MetadataStrategyKind,
    /// Metadata-Cache parameters (used when `strategy` is
    /// [`MetadataStrategyKind::MetadataCache`]).
    pub metadata_cache: MetadataCacheConfig,
    /// COPR component toggles/geometry (used when `strategy` is
    /// [`MetadataStrategyKind::Attache`]). `None` selects the paper
    /// default sized to the occupied footprint.
    pub copr: Option<CoprConfig>,
    /// Instructions to retire per core in the measured region.
    pub instructions_per_core: u64,
    /// Instructions to retire per core during warm-up (stats then reset).
    pub warmup_instructions_per_core: u64,
    /// Mean probability that a store flips its line's compressibility
    /// class (per 16 stores), exercising metadata dirtiness.
    pub store_version_salt: bool,
    /// CID width in bits for BLEM's metadata header (the paper evaluates
    /// 14 bits + 1 algorithm bit; Table I explores 13..=15).
    pub cid_bits: u8,
    /// Main-loop engine (bit-identical results either way; see
    /// [`EngineKind`]).
    pub engine: EngineKind,
    /// Memory timing backend (`ATTACHE_BACKEND=cycle|fast`; see
    /// `docs/BACKENDS.md`). [`BackendKind::Cycle`] is the reference and
    /// the default — goldens and figures are pinned to it;
    /// [`BackendKind::Fast`] trades row/refresh fidelity for severalfold
    /// faster exploratory sweeps inside a documented tolerance envelope.
    pub backend: BackendKind,
    /// Run with the mirror-memory oracle attached (see [`crate::mirror`]):
    /// every writeback is shadow-copied and every functional read decode
    /// is verified against it, panicking on divergence. Pure observer —
    /// results are bit-identical with it on or off.
    pub mirror: bool,
    /// Epoch length in bus cycles for observability sampling: when
    /// `Some(n)`, the run snapshots its metric registry into a
    /// time-series every `n` bus cycles of the measured region
    /// (`ATTACHE_EPOCH=<ticks>`, `0`/unset = disabled). Pure observer —
    /// results are bit-identical with it on or off.
    pub epoch: Option<u64>,
    /// Capacity of the event-trace ring (`ATTACHE_TRACE_RING=<n>`,
    /// `0`/unset = disabled): the last `n` decoded sim/DRAM events are
    /// retained and dumped when the mirror oracle or the DRAM
    /// conformance auditor fires. Pure observer.
    pub trace_ring: Option<usize>,
    /// Test hook (builder-only, no environment knob): corrupt every
    /// mirror-oracle shadow record so the first re-read of a
    /// written-back line reports a mismatch — proving the
    /// failure-context dump path end to end.
    pub mirror_poison: bool,
    /// Fault-injection schedule (`ATTACHE_FAULTS=<spec>`, unset/`0` =
    /// disabled; see [`crate::faults`]). When `None`, no injector is
    /// constructed and results are bit-identical to a faults-free build.
    pub faults: Option<crate::faults::FaultPlan>,
    /// Cooperative tick budget in bus cycles
    /// (`ATTACHE_JOB_TICK_BUDGET=<n>`, unset/`0` = unlimited): a run
    /// that exceeds it panics with a
    /// [`TickBudgetExceeded`](crate::faults::TickBudgetExceeded) payload,
    /// which the resilient grid executor converts into a structured
    /// timed-out outcome.
    pub tick_budget: Option<u64>,
    /// Device soft-error rate in ppm of line-touches
    /// (`ATTACHE_BER=<ppm>`, unset/`0` = no soft errors; see
    /// [`crate::integrity`]). Deterministic for a fixed seed.
    pub ber_ppm: Option<u64>,
    /// Model the (72,64) SEC-DED ECC pipeline (`ATTACHE_ECC=1`):
    /// per-word encode on writeback, syndrome-check/correct on read
    /// completion, a +1 bus-cycle check latency on reads, and poison
    /// propagation with per-strategy recovery on uncorrectable errors.
    pub ecc: bool,
    /// Background patrol-scrub period in bus cycles
    /// (`ATTACHE_SCRUB=<cycles>`, unset/`0` = no scrub): every period,
    /// an idle controller walks one line, correcting what SEC-DED can.
    pub scrub_period: Option<u64>,
    /// Channel shards for the cycle backend (`ATTACHE_SHARDS=<n>`,
    /// unset/`0`/`1` = serial): the DRAM channels are partitioned across
    /// `n` worker threads that rendezvous at every executed tick.
    /// Results are **bit-identical** to the serial run for any value
    /// (pinned by `crates/sim/tests/sharded.rs`) — the knob trades
    /// wall-clock only, so it is absent from cache keys at the default.
    pub shards: usize,
}

impl SimConfig {
    /// The paper's Table II baseline configuration with laptop-scale run
    /// lengths.
    pub fn table2_baseline() -> Self {
        crate::env::warn_unknown_knobs_once();
        Self {
            core: CoreConfig::table2(),
            llc: LlcConfig::table2(),
            dram: DramConfig::table2(),
            power: PowerParams::ddr4_1600(),
            strategy: MetadataStrategyKind::Baseline,
            metadata_cache: MetadataCacheConfig::paper_1mb(),
            copr: None,
            instructions_per_core: 1_000_000,
            warmup_instructions_per_core: 200_000,
            store_version_salt: true,
            cid_bits: 14,
            engine: EngineKind::from_env(),
            backend: backend_from_env(),
            mirror: mirror_from_env(),
            epoch: crate::env::env_u64_opt("ATTACHE_EPOCH"),
            trace_ring: crate::env::env_u64_opt("ATTACHE_TRACE_RING").map(|n| n as usize),
            mirror_poison: false,
            faults: crate::faults::FaultPlan::from_env(),
            tick_budget: crate::env::env_u64_opt("ATTACHE_JOB_TICK_BUDGET"),
            ber_ppm: crate::env::env_u64_opt("ATTACHE_BER"),
            ecc: ecc_from_env(),
            scrub_period: crate::env::env_u64_opt("ATTACHE_SCRUB"),
            shards: shards_from_env(),
        }
    }

    /// Whether any integrity knob is armed (soft errors, ECC, scrub) —
    /// when false, no [`IntegrityEngine`](crate::integrity::IntegrityEngine)
    /// is constructed and results are bit-identical to an
    /// integrity-free build.
    pub fn integrity_armed(&self) -> bool {
        self.ecc || self.ber_ppm.is_some() || self.scrub_period.is_some()
    }

    /// The production-scale configuration the ROADMAP targets: 8 DRAM
    /// channels ([`DramConfig::scale8`]) fed by 64 cores
    /// ([`CoreConfig::scale64`]), with every run control inherited from
    /// [`table2_baseline`](SimConfig::table2_baseline). This is the
    /// profile the sharded executor exists for — at 8 channels a
    /// single-threaded run is the wall-clock ceiling.
    pub fn scale8_baseline() -> Self {
        let mut cfg = Self::table2_baseline();
        cfg.core = CoreConfig::scale64();
        cfg.dram = attache_dram::DramConfig::scale8();
        cfg
    }

    /// Same configuration with a different strategy.
    pub fn with_strategy(mut self, strategy: MetadataStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Same configuration with a different run length.
    pub fn with_instructions(mut self, measured: u64, warmup: u64) -> Self {
        self.instructions_per_core = measured;
        self.warmup_instructions_per_core = warmup;
        self
    }

    /// Same configuration with an explicit main-loop engine (overriding
    /// whatever `ATTACHE_ENGINE` selected).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Same configuration with an explicit memory backend (overriding
    /// whatever `ATTACHE_BACKEND` selected).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Same configuration with the mirror-memory oracle toggled
    /// (overriding whatever `ATTACHE_MIRROR` selected).
    pub fn with_mirror(mut self, mirror: bool) -> Self {
        self.mirror = mirror;
        self
    }

    /// Same configuration with an explicit epoch-sampling period
    /// (overriding whatever `ATTACHE_EPOCH` selected; `None` disables).
    pub fn with_epoch(mut self, epoch: Option<u64>) -> Self {
        self.epoch = epoch;
        self
    }

    /// Same configuration with an explicit event-trace ring capacity
    /// (overriding whatever `ATTACHE_TRACE_RING` selected; `None`
    /// disables).
    pub fn with_trace_ring(mut self, cap: Option<usize>) -> Self {
        self.trace_ring = cap;
        self
    }

    /// Same configuration with mirror-record poisoning toggled (test
    /// hook; see [`SimConfig::mirror_poison`]).
    pub fn with_mirror_poison(mut self, poison: bool) -> Self {
        self.mirror_poison = poison;
        self
    }

    /// Same configuration with an explicit fault-injection plan
    /// (overriding whatever `ATTACHE_FAULTS` selected; `None` disables).
    pub fn with_faults(mut self, plan: Option<crate::faults::FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Same configuration with an explicit tick budget (overriding
    /// whatever `ATTACHE_JOB_TICK_BUDGET` selected; `None` = unlimited).
    pub fn with_tick_budget(mut self, budget: Option<u64>) -> Self {
        self.tick_budget = budget;
        self
    }

    /// Same configuration with an explicit shard count (overriding
    /// whatever `ATTACHE_SHARDS` selected; `1` = serial execution).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Same configuration with an explicit soft-error rate in ppm of
    /// line-touches (overriding whatever `ATTACHE_BER` selected; `None`
    /// disables soft errors).
    pub fn with_ber(mut self, ppm: Option<u64>) -> Self {
        self.ber_ppm = ppm.filter(|&p| p > 0);
        self
    }

    /// Same configuration with the SEC-DED ECC pipeline toggled
    /// (overriding whatever `ATTACHE_ECC` selected).
    pub fn with_ecc(mut self, ecc: bool) -> Self {
        self.ecc = ecc;
        self
    }

    /// Same configuration with an explicit patrol-scrub period in bus
    /// cycles (overriding whatever `ATTACHE_SCRUB` selected; `None`
    /// disables scrubbing).
    pub fn with_scrub(mut self, period: Option<u64>) -> Self {
        self.scrub_period = period.filter(|&p| p > 0);
        self
    }
}

/// Reads `ATTACHE_SHARDS`: the channel-shard count for the cycle
/// backend. Unset, empty, `0` and `1` all select serial execution;
/// unparsable values warn on stderr (via [`crate::env::env_u64_opt`])
/// and fall back to serial, never panic. Deliberately *not* cached in a
/// `OnceLock`: sharding is bit-identity-pinned, and tests toggle the
/// variable between config constructions.
pub fn shards_from_env() -> usize {
    crate::env::env_u64_opt("ATTACHE_SHARDS")
        .map(|n| n as usize)
        .unwrap_or(1)
        .max(1)
}

/// Reads `ATTACHE_MIRROR`: any non-empty value other than `0` enables the
/// mirror-memory oracle for configs built afterwards. Deliberately *not*
/// cached in a `OnceLock` — the oracle is a pure observer, and tests
/// toggle the variable between config constructions.
fn mirror_from_env() -> bool {
    match std::env::var("ATTACHE_MIRROR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Reads `ATTACHE_ECC`: any non-empty value other than `0` enables the
/// modeled SEC-DED ECC pipeline for configs built afterwards.
/// Deliberately *not* cached in a `OnceLock` — tests toggle the
/// variable between config constructions.
fn ecc_from_env() -> bool {
    match std::env::var("ATTACHE_ECC") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Reads `ATTACHE_BACKEND` (`cycle` or `fast`); unset, empty or
/// unparsable values fall back to the cycle backend — with a warning on
/// stderr for unparsable values, never a panic, so a typo cannot kill a
/// sweep mid-flight. Deliberately *not* cached in a `OnceLock`: tests
/// and the grid toggle the variable between config constructions.
pub fn backend_from_env() -> BackendKind {
    backend_from_env_value(std::env::var("ATTACHE_BACKEND").ok().as_deref())
}

/// The pure classifier behind [`backend_from_env`], testable without
/// touching the process environment.
pub fn backend_from_env_value(value: Option<&str>) -> BackendKind {
    match value {
        None => BackendKind::Cycle,
        Some("") => BackendKind::Cycle,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!(
                "warning: ATTACHE_BACKEND={v:?} is not \"cycle\" or \"fast\"; \
                 using the cycle backend"
            );
            BackendKind::Cycle
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let cfg = SimConfig::table2_baseline();
        assert_eq!(cfg.core.cores, 8);
        assert_eq!(cfg.core.issue_width, 4);
        assert_eq!(cfg.llc.size_bytes, 8 << 20);
        assert_eq!(cfg.llc.ways, 8);
        assert_eq!(cfg.llc.latency_cycles, 20);
        assert_eq!(cfg.dram.channels, 2);
        assert_eq!(cfg.dram.ranks, 1);
        assert_eq!(cfg.dram.bank_groups, 4);
        assert_eq!(cfg.dram.banks_per_group, 4);
        assert_eq!(cfg.dram.rows, 64 * 1024);
        assert_eq!(cfg.dram.blocks_per_row, 128);
        assert_eq!(cfg.dram.timing.t_rcd, 22);
        assert_eq!(cfg.dram.timing.t_rp, 22);
        assert_eq!(cfg.dram.timing.t_cas, 22);
        // 4 GHz cpu over 1600 MHz bus = 2.5.
        assert_eq!(cfg.core.cpu_cycles_per_2_bus_cycles, 5);
    }

    #[test]
    fn builders_chain() {
        let cfg = SimConfig::table2_baseline()
            .with_strategy(MetadataStrategyKind::Attache)
            .with_instructions(1000, 100);
        assert_eq!(cfg.strategy, MetadataStrategyKind::Attache);
        assert_eq!(cfg.instructions_per_core, 1000);
        assert_eq!(cfg.warmup_instructions_per_core, 100);
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(MetadataStrategyKind::Baseline.to_string(), "Baseline");
        assert_eq!(MetadataStrategyKind::Oracle.to_string(), "Ideal");
        assert_eq!(MetadataStrategyKind::Cram.to_string(), "Cram");
    }

    #[test]
    fn all_slice_roundtrips_through_display_and_from_str() {
        for (i, kind) in MetadataStrategyKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.ordinal(), i);
            let parsed: MetadataStrategyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind, "Display form must parse back");
        }
        assert_eq!(
            "bogus".parse::<MetadataStrategyKind>(),
            Err(UnknownStrategy)
        );
    }
}
