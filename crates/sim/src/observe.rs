//! The observability layer: samples the simulator's existing statistics
//! into an [`attache_metrics::Registry`], optionally snapshotting it
//! into an epoch time-series and feeding a bounded event-trace ring.
//!
//! Everything here follows the pure-observer discipline established by
//! the mirror oracle and the DRAM conformance auditor in PR 3: the
//! observer reads model state, never writes it, and with all knobs off
//! no observer exists at all — `RunReport`s are bit-identical either
//! way (asserted by `crates/sim/tests/observability.rs`).
//!
//! # Metric key scheme
//!
//! Dotted, lexicographically sortable names, stable across runs:
//!
//! * `sim.bus_cycles`, `sim.traffic.{reads,writes}.{data,metadata}` —
//!   the paper's headline split: demand/corrective traffic vs. traffic
//!   that exists only to move metadata (installs, evictions, RA).
//! * `dram.ch{i}.*` — per-channel command mix, row locality, bus
//!   occupancy; `dram.ch{i}.sr{s}.*` — per-sub-rank busy/CAS split;
//!   `dram.ch{i}.read_latency` — a log-2 histogram of read round-trips;
//!   `dram.ch{i}.{read,write}_q_depth` — queue-occupancy gauges at
//!   sample time.
//! * `cache.llc.{policy}.*` / `cache.mc.{policy}.*` — hit/miss/evict by
//!   replacement policy, plus the Metadata-Cache's install/eviction
//!   traffic.
//! * `core.blem.*`, `core.ra.*`, `core.copr.{source}.*` — BLEM
//!   collisions and XID flips, Replacement-Area traffic, and COPR
//!   accuracy split by the predictor component that answered.

use attache_metrics::{EpochSeries, Registry, SharedTraceRing};

use crate::config::SimConfig;
use crate::strategy::Strategy;
use attache_dram::MemoryBackend as DramBackend;

/// The observability output of a run: the final cumulative registry,
/// and the epoch series when `ATTACHE_EPOCH`/`with_epoch` was set.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Cumulative metrics over the measured region.
    pub registry: Registry,
    /// Registry snapshots at each epoch boundary plus a final snapshot
    /// (`None` when epoch sampling was disabled).
    pub series: Option<EpochSeries>,
}

/// Per-run observer state, owned by the `System` when any observability
/// knob is on.
#[derive(Debug)]
pub(crate) struct Observer {
    epoch: Option<u64>,
    /// Next bus cycle to snapshot at (`u64::MAX` when disabled).
    next_sample: u64,
    pub(crate) ring: Option<SharedTraceRing>,
    registry: Registry,
    series: EpochSeries,
}

impl Observer {
    /// Builds an observer when `cfg` enables any observability knob.
    pub(crate) fn from_config(cfg: &SimConfig) -> Option<Box<Observer>> {
        if cfg.epoch.is_none() && cfg.trace_ring.is_none() {
            return None;
        }
        Some(Box::new(Observer {
            epoch: cfg.epoch,
            next_sample: u64::MAX, // armed by `reset` at the measured region
            ring: cfg.trace_ring.map(attache_metrics::shared_ring),
            registry: Registry::new(),
            series: EpochSeries::new(),
        }))
    }

    /// Clears the sampled state at the warm-up boundary and arms the
    /// epoch clock relative to `now`. The trace ring is deliberately
    /// *not* cleared: it exists to explain failures, and warm-up events
    /// are valid history.
    pub(crate) fn reset(&mut self, now: u64) {
        self.registry.clear();
        self.series.clear();
        self.next_sample = match self.epoch {
            Some(e) => now + e,
            None => u64::MAX,
        };
    }

    /// The epoch clock's next sample cycle, for the event engine's
    /// horizon (`u64::MAX` when epoch sampling is off).
    pub(crate) fn next_sample(&self) -> u64 {
        self.next_sample
    }

    /// Appends an event to the trace ring, if one is configured. The
    /// caller pays the `format!` only after checking
    /// [`wants_events`](Self::wants_events).
    pub(crate) fn push_event(&self, tick: u64, text: String) {
        if let Some(ring) = &self.ring {
            if let Ok(mut r) = ring.lock() {
                r.push(tick, text);
            }
        }
    }

    /// Whether event pushes would be retained (a ring is configured).
    pub(crate) fn wants_events(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one completed DRAM read's round-trip latency.
    pub(crate) fn record_read_latency(&mut self, channel: usize, latency: u64) {
        self.registry
            .hist_mut(&format!("dram.ch{channel}.read_latency"))
            .record(latency);
    }

    /// Called at the end of every bus tick: takes an epoch snapshot when
    /// the epoch clock expires.
    pub(crate) fn on_tick(
        &mut self,
        now: u64,
        mem: &dyn DramBackend,
        llc: &attache_cache::Llc,
        strategy: &Strategy,
        cfg: &SimConfig,
    ) {
        if now < self.next_sample {
            return;
        }
        self.refresh(now, mem, llc, strategy, cfg);
        self.series.push(now, self.registry.clone());
        let epoch = self.epoch.expect("sampling implies an epoch");
        self.next_sample = now + epoch;
        self.push_event(now, format!("epoch sample #{}", self.series.len()));
    }

    /// Takes the final snapshot and hands the observation out.
    pub(crate) fn finish(
        &mut self,
        now: u64,
        mem: &dyn DramBackend,
        llc: &attache_cache::Llc,
        strategy: &Strategy,
        cfg: &SimConfig,
    ) -> Observation {
        self.refresh(now, mem, llc, strategy, cfg);
        if self.epoch.is_some() {
            // A final snapshot so per-epoch deltas sum to the totals
            // even when the run ends mid-epoch. Skip the duplicate when
            // the last tick happened to land exactly on a boundary.
            if self.series.last().map(|s| s.tick) != Some(now) {
                self.series.push(now, self.registry.clone());
            }
        }
        Observation {
            registry: self.registry.clone(),
            series: self.epoch.map(|_| self.series.clone()),
        }
    }

    /// Copies every model statistic into the registry (counters and
    /// gauges; the read-latency histograms accumulate incrementally).
    fn refresh(
        &mut self,
        now: u64,
        mem: &dyn DramBackend,
        llc: &attache_cache::Llc,
        strategy: &Strategy,
        cfg: &SimConfig,
    ) {
        let _ = now;
        let r = &mut self.registry;

        // sim.* — the metadata-bandwidth split the paper argues from.
        let m = mem.stats();
        r.set_counter("sim.bus_cycles", m.cycles);
        r.set_counter("sim.traffic.reads.data", m.demand_reads + m.corrective_reads);
        r.set_counter(
            "sim.traffic.reads.metadata",
            m.metadata_reads + m.replacement_area_reads,
        );
        r.set_counter("sim.traffic.writes.data", m.data_writes);
        r.set_counter(
            "sim.traffic.writes.metadata",
            m.metadata_writes + m.replacement_area_writes,
        );

        // dram.ch{i}.* — per-channel command mix and occupancy.
        let depths = mem.queue_depths();
        let sr_busy = mem.subrank_busy();
        let sr_cas = mem.subrank_cas();
        for (i, ch) in mem.channel_stats().iter().enumerate() {
            let p = format!("dram.ch{i}");
            r.set_counter(&format!("{p}.demand_reads"), ch.demand_reads);
            r.set_counter(&format!("{p}.data_writes"), ch.data_writes);
            r.set_counter(&format!("{p}.row_hits"), ch.row_hits);
            r.set_counter(&format!("{p}.row_misses"), ch.row_misses);
            r.set_counter(&format!("{p}.activates"), ch.activates);
            r.set_counter(&format!("{p}.precharges"), ch.precharges);
            r.set_counter(&format!("{p}.refreshes"), ch.refreshes);
            r.set_counter(&format!("{p}.bytes"), ch.bytes);
            r.set_counter(&format!("{p}.busy_bus_cycles"), ch.busy_bus_cycles);
            r.set_counter(&format!("{p}.forwarded_reads"), ch.forwarded_reads);
            r.set_gauge(&format!("{p}.read_q_depth"), depths[i].0 as f64);
            r.set_gauge(&format!("{p}.write_q_depth"), depths[i].1 as f64);
            for (s, (&busy, &cas)) in sr_busy[i].iter().zip(&sr_cas[i]).enumerate() {
                r.set_counter(&format!("{p}.sr{s}.busy_cycles"), busy);
                r.set_counter(&format!("{p}.sr{s}.cas"), cas);
            }
        }

        // cache.llc.{policy}.* — keyed by replacement policy so sweeps
        // over policies produce distinct series.
        let lp = cfg.llc.policy.key();
        let ls = llc.stats();
        r.set_counter(&format!("cache.llc.{lp}.accesses"), ls.accesses);
        r.set_counter(&format!("cache.llc.{lp}.hits"), ls.hits);
        r.set_counter(&format!("cache.llc.{lp}.misses"), ls.misses);
        r.set_counter(&format!("cache.llc.{lp}.evictions"), ls.evictions);
        r.set_counter(&format!("cache.llc.{lp}.dirty_evictions"), ls.dirty_evictions);

        // cache.mc.{policy}.* — MetadataCache strategy only.
        if let Some((mc, traffic)) = strategy.metadata_cache_stats() {
            let mp = cfg.metadata_cache.policy.key();
            r.set_counter(&format!("cache.mc.{mp}.accesses"), mc.accesses);
            r.set_counter(&format!("cache.mc.{mp}.hits"), mc.hits);
            r.set_counter(&format!("cache.mc.{mp}.misses"), mc.misses);
            r.set_counter(&format!("cache.mc.{mp}.evictions"), mc.evictions);
            r.set_counter(&format!("cache.mc.{mp}.dirty_evictions"), mc.dirty_evictions);
            r.set_counter(&format!("cache.mc.{mp}.install_reads"), traffic.install_reads);
            r.set_counter(&format!("cache.mc.{mp}.eviction_writes"), traffic.eviction_writes);
        }

        // core.* — Attaché strategy only.
        if let Some(b) = strategy.blem_stats() {
            r.set_counter("core.blem.writes", b.writes);
            r.set_counter("core.blem.compressed_writes", b.compressed_writes);
            r.set_counter("core.blem.write_collisions", b.write_collisions);
            r.set_counter("core.blem.reads", b.reads);
            r.set_counter("core.blem.compressed_reads", b.compressed_reads);
            r.set_counter("core.blem.read_collisions", b.read_collisions);
        }
        if let Some(flips) = strategy.blem_xid_flips() {
            r.set_counter("core.blem.xid_flips", flips);
        }
        if let Some(ra) = strategy.ra_stats() {
            r.set_counter("core.ra.reads", ra.reads);
            r.set_counter("core.ra.writes", ra.writes);
        }
        if let Some(total) = strategy.copr_stats() {
            r.set_counter("core.copr.total.predictions", total.predictions);
            r.set_counter("core.copr.total.correct", total.correct);
            r.set_counter("core.copr.total.underpredictions", total.underpredictions);
            r.set_counter("core.copr.total.overpredictions", total.overpredictions);
            r.set_gauge("core.copr.total.accuracy", total.accuracy());
        }
        if let Some(per_source) = strategy.copr_source_stats() {
            for (key, s) in per_source {
                let p = format!("core.copr.{key}");
                r.set_counter(&format!("{p}.predictions"), s.predictions);
                r.set_counter(&format!("{p}.correct"), s.correct);
                r.set_counter(&format!("{p}.underpredictions"), s.underpredictions);
                r.set_counter(&format!("{p}.overpredictions"), s.overpredictions);
                r.set_gauge(&format!("{p}.accuracy"), s.accuracy());
            }
        }

        // core.cram.* — Cram strategy only, so the other strategies'
        // exported key sets are untouched.
        if let Some(c) = strategy.cram_stats() {
            r.set_counter("core.cram.writes", c.writes);
            r.set_counter("core.cram.compressed_writes", c.compressed_writes);
            r.set_counter("core.cram.write_exceptions", c.write_exceptions);
            r.set_counter("core.cram.reads", c.reads);
            r.set_counter("core.cram.compressed_reads", c.compressed_reads);
            r.set_counter("core.cram.read_exceptions", c.read_exceptions);
            r.set_gauge("core.cram.implicit_hit_rate", c.implicit_hit_rate());
        }

        // faults.{class}.* — only when fault injection is armed, so
        // faults-off runs export exactly the same key set as before.
        if let Some(fs) = strategy.fault_stats() {
            for (class, c) in fs.iter() {
                let p = format!("faults.{class}");
                r.set_counter(&format!("{p}.injected"), c.injected);
                r.set_counter(&format!("{p}.detected"), c.detected);
                r.set_counter(&format!("{p}.absorbed"), c.absorbed);
                r.set_counter(&format!("{p}.undetected"), c.undetected);
                r.set_counter(&format!("{p}.skipped"), c.skipped);
            }
        }

        // integrity.* — only when an integrity knob armed the engine, so
        // integrity-off runs export exactly the same key set as before.
        if let Some(i) = strategy.integrity_stats() {
            r.set_counter("integrity.reads_checked", i.reads_checked);
            r.set_counter("integrity.injected_flips", i.injected_flips);
            r.set_counter("integrity.sticky_lines", i.sticky_lines);
            for sr in 0..2 {
                r.set_counter(&format!("integrity.subrank{sr}.corrected"), i.corrected[sr]);
                r.set_counter(
                    &format!("integrity.subrank{sr}.uncorrectable"),
                    i.uncorrectable[sr],
                );
            }
            r.set_counter("integrity.recovered", i.recovered);
            r.set_counter("integrity.sdc_averted", i.sdc_averted);
            r.set_counter("integrity.data_loss", i.data_loss);
            r.set_counter(
                "integrity.silent_corruption_reads",
                i.silent_corruption_reads,
            );
            r.set_counter(
                "integrity.corrupted_bytes_delivered",
                i.corrupted_bytes_delivered,
            );
            r.set_counter("integrity.scrub.checks", i.scrub_checks);
            r.set_counter("integrity.scrub.corrected", i.scrub_corrected);
            r.set_counter("integrity.scrub.uncorrectable", i.scrub_uncorrectable);
            r.set_counter("integrity.scrub.skipped_busy", i.scrub_skipped_busy);
            r.set_counter("integrity.ecc_check_bytes", i.ecc_check_bytes);
        }
    }
}
