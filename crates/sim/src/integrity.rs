//! End-to-end data integrity: device soft errors, the SEC-DED ECC
//! pipeline, poison propagation and per-strategy recovery accounting.
//!
//! # Layering
//!
//! The integrity engine models the device/controller boundary on the
//! **logical 64-byte block view** — the same bytes the mirror oracle
//! snapshots at writeback time. ECC sits *between* the DRAM cells and
//! the controller: by the time bytes reach the BLEM/CRAM decode chain
//! they have either been corrected, or the read was flagged poisoned
//! and a strategy recovery path re-sourced the data. Uncorrected device
//! errors therefore never enter the functional decode chain — which is
//! exactly why the mirror oracle stays green with ECC on, and why the
//! PR 5 fault classes (which corrupt *above* this layer: stored images,
//! header bits, scrambler keys) remain a disjoint threat model.
//!
//! # State model
//!
//! Per line, the device image is `clean ⊕ flips ⊕ sticky`:
//!
//! * `clean` — the bytes last written back (snapshotted exactly like the
//!   mirror oracle; pristine lines fall back to the deterministic
//!   boot-time contents). With ECC on, the stored check byte per word is
//!   always `encode(clean)` — writes encode fresh.
//! * `flips` — accumulated transient upsets from the seeded
//!   [`SoftErrorProcess`], deposited at touch time and **not** removed
//!   by a correction: ECC fixes the delivered data, not the cell. Only
//!   a rewrite (writeback, recovery, scrub) clears them — that is what
//!   makes patrol scrub worth its bandwidth.
//! * `sticky` — a per-line stuck cell (pure function of seed and line)
//!   that re-asserts after every rewrite.
//!
//! Flip positions use the codec's 576-bit layout (`word * 72 + bit`,
//! bits `64..72` being the check byte). With ECC off there is no check
//! storage, so check-bit flips are dropped and data-bit flips are
//! *silent*: the engine counts the reads that would have delivered
//! corrupted bytes and the amplification (a corrupted compressed line
//! garbles the whole 64-byte block; a verbatim line only the flipped
//! bytes), while the in-model delivered data stays clean — measurement
//! mode, not a corruption simulator.

use attache_core::fasthash::FastMap;
use attache_dram::ecc::{decode_line, encode_line, LineDecode};
use attache_dram::soft_error::{SoftErrorProcess, WORD_BITS};

use crate::backend::MemoryBackend;

/// Counters kept by the [`IntegrityEngine`]; exported on
/// [`RunReport`](crate::RunReport) when the engine is armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Demand reads that went through the integrity check.
    pub reads_checked: u64,
    /// Transient flips deposited by the soft-error process.
    pub injected_flips: u64,
    /// Distinct lines with an active sticky cell seen by traffic.
    pub sticky_lines: u64,
    /// Single-bit word corrections on demand reads, per sub-rank.
    pub corrected: [u64; 2],
    /// Detected-uncorrectable words on demand reads, per sub-rank.
    pub uncorrectable: [u64; 2],
    /// Poisoned reads re-sourced by a strategy recovery path.
    pub recovered: u64,
    /// Poisoned reads surfaced as machine-check style outcomes (no
    /// recovery path): silent corruption averted by detection alone.
    pub sdc_averted: u64,
    /// Of those, reads whose data could not be re-sourced at all.
    pub data_loss: u64,
    /// ECC-off only: reads that delivered corrupted bytes undetected.
    pub silent_corruption_reads: u64,
    /// ECC-off only: corrupted data bytes delivered (the error-
    /// amplification numerator — a compressed line counts all 64).
    pub corrupted_bytes_delivered: u64,
    /// Background scrub line checks performed.
    pub scrub_checks: u64,
    /// Scrub checks that corrected (and cleaned) at least one word.
    pub scrub_corrected: u64,
    /// Scrub checks that found an uncorrectable word (left poisoned for
    /// the next demand read's recovery path).
    pub scrub_uncorrectable: u64,
    /// Scrub slots skipped because the controller was busy.
    pub scrub_skipped_busy: u64,
    /// ECC check bytes moved alongside data (the widened-bus tax).
    pub ecc_check_bytes: u64,
}

impl IntegrityStats {
    /// Total single-bit corrections on demand reads.
    pub fn total_corrected(&self) -> u64 {
        self.corrected[0] + self.corrected[1]
    }

    /// Total detected-uncorrectable words on demand reads.
    pub fn total_uncorrectable(&self) -> u64 {
        self.uncorrectable[0] + self.uncorrectable[1]
    }

    /// Corrupted bytes delivered per injected flip (the error
    /// amplification factor; zero when nothing was injected).
    pub fn amplification(&self) -> f64 {
        if self.injected_flips == 0 {
            0.0
        } else {
            self.corrupted_bytes_delivered as f64 / self.injected_flips as f64
        }
    }
}

/// What the integrity layer concluded about one demand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccVerdict {
    /// No active error touched the line (or everything cancelled out).
    Clean,
    /// ECC corrected every errored word; delivered data is trustworthy.
    Corrected,
    /// At least one word is detected-uncorrectable: the line is poison
    /// and the strategy must run its recovery path (or account the
    /// loss).
    Poisoned,
    /// ECC is off and corrupted bytes went out undetected (accounted
    /// analytically; the functional model still serves clean data).
    Silent,
}

/// The per-run integrity state machine (owned by the strategy; `None`
/// when every integrity knob is off, for zero overhead).
#[derive(Debug)]
pub struct IntegrityEngine {
    ecc: bool,
    process: SoftErrorProcess,
    /// Bytes last written back per line (the device's clean image).
    clean: FastMap<u64, [u8; 64]>,
    /// Active transient flips per line, XOR semantics (a repeat upset of
    /// the same cell cancels). Positions use the 576-bit codec layout.
    flips: FastMap<u64, Vec<u16>>,
    /// Sticky lines already counted in `stats.sticky_lines`.
    sticky_seen: FastMap<u64, ()>,
    stats: IntegrityStats,
}

impl IntegrityEngine {
    /// An engine with soft errors at `ber_ppm` (0 = none) and ECC
    /// on/off. The seed keys the error process only.
    pub fn new(seed: u64, ber_ppm: u64, ecc: bool) -> Self {
        Self {
            ecc,
            process: SoftErrorProcess::new(seed, ber_ppm),
            clean: FastMap::default(),
            flips: FastMap::default(),
            sticky_seen: FastMap::default(),
            stats: IntegrityStats::default(),
        }
    }

    /// Whether the ECC pipeline is modeled (drives the +1 bus-cycle
    /// check latency and the check-byte bandwidth tax).
    pub fn ecc_enabled(&self) -> bool {
        self.ecc
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IntegrityStats {
        self.stats
    }

    /// Clears the counters (warm-up boundary) while keeping the device
    /// state — sticky cells and still-latched transient flips are
    /// physical, not statistics.
    pub fn reset_stats(&mut self) {
        self.stats = IntegrityStats::default();
    }

    /// XORs `pos` into the line's transient-flip set.
    fn toggle_flip(&mut self, line: u64, pos: u16) {
        let set = self.flips.entry(line).or_default();
        if let Some(i) = set.iter().position(|&p| p == pos) {
            set.swap_remove(i);
            if set.is_empty() {
                self.flips.remove(&line);
            }
        } else {
            set.push(pos);
        }
    }

    /// The line's sticky cell, counting first sightings.
    fn sticky_of(&mut self, line: u64) -> Option<u16> {
        let s = self.process.sticky(line)?;
        if self.sticky_seen.insert(line, ()).is_none() {
            self.stats.sticky_lines += 1;
        }
        Some(s)
    }

    /// All active flip positions of `line` (transients ⊕ sticky), with
    /// check-bit positions dropped when ECC is off (no check storage).
    fn active_flips(&mut self, line: u64) -> Vec<u16> {
        let mut set = self.flips.get(&line).cloned().unwrap_or_default();
        if let Some(s) = self.sticky_of(line) {
            if let Some(i) = set.iter().position(|&p| p == s) {
                set.swap_remove(i);
            } else {
                set.push(s);
            }
        }
        if !self.ecc {
            set.retain(|&p| u32::from(p) % WORD_BITS < 64);
        }
        set
    }

    /// The device's clean image of `line`.
    fn clean_of(&self, line: u64, backend: &MemoryBackend) -> [u8; 64] {
        match self.clean.get(&line) {
            Some(b) => *b,
            None => backend.pristine_content(line),
        }
    }

    /// Materializes the corrupted stored image `(data, check)`.
    fn corrupted_image(
        &mut self,
        line: u64,
        backend: &MemoryBackend,
    ) -> ([u8; 64], [u8; 8], Vec<u16>) {
        let mut data = self.clean_of(line, backend);
        let mut check = encode_line(&data);
        let flips = self.active_flips(line);
        for &pos in &flips {
            let w = usize::from(pos) / WORD_BITS as usize;
            let b = u32::from(pos) % WORD_BITS;
            if b < 64 {
                data[w * 8 + (b / 8) as usize] ^= 1 << (b % 8);
            } else {
                check[w] ^= 1 << (b - 64);
            }
        }
        (data, check, flips)
    }

    /// Samples the soft-error process for one touch of `line`.
    fn sample(&mut self, line: u64) {
        if let Some(pos) = self.process.touch(line) {
            self.stats.injected_flips += 1;
            self.toggle_flip(line, pos);
        }
    }

    /// One demand read of `line`. `primary` is the line's home sub-rank
    /// (bytes `0..32`); `compressed` whether the stored layout is
    /// compressed (drives the check-byte tax and the amplification
    /// model). Returns what the controller saw.
    pub fn touch_read(
        &mut self,
        line: u64,
        primary: u8,
        compressed: bool,
        backend: &MemoryBackend,
    ) -> EccVerdict {
        self.stats.reads_checked += 1;
        self.sample(line);
        if self.ecc {
            self.stats.ecc_check_bytes += if compressed { 4 } else { 8 };
        }
        let (mut data, mut check, flips) = self.corrupted_image(line, backend);
        if flips.is_empty() {
            return EccVerdict::Clean;
        }
        if self.ecc {
            let d = decode_line(&mut data, &mut check);
            self.account_decode(&d, primary);
            if d.is_poisoned() {
                EccVerdict::Poisoned
            } else if d.corrected != 0 {
                EccVerdict::Corrected
            } else {
                EccVerdict::Clean
            }
        } else {
            // No ECC: corrupted data bytes go out undetected. Amplify
            // through the layout: a flipped bit in a compressed payload
            // garbles the whole decompressed block.
            let mut bytes = [false; 64];
            for &pos in &flips {
                let w = usize::from(pos) / WORD_BITS as usize;
                let b = u32::from(pos) % WORD_BITS;
                bytes[w * 8 + (b / 8) as usize] = true;
            }
            let distinct = bytes.iter().filter(|&&x| x).count() as u64;
            self.stats.silent_corruption_reads += 1;
            self.stats.corrupted_bytes_delivered += if compressed { 64 } else { distinct };
            EccVerdict::Silent
        }
    }

    /// Folds one line decode into the per-sub-rank counters. Word `w`
    /// covers bytes `8w..8w+8`: the first four words live in the home
    /// sub-rank, the rest in the other.
    fn account_decode(&mut self, d: &LineDecode, primary: u8) {
        for w in 0..8u8 {
            let sr = usize::from(if w < 4 { primary } else { 1 - primary });
            if d.corrected & (1 << w) != 0 {
                self.stats.corrected[sr] += 1;
            }
            if d.uncorrectable & (1 << w) != 0 {
                self.stats.uncorrectable[sr] += 1;
            }
        }
    }

    /// A writeback of `line`: snapshot the clean image, encode fresh
    /// check bytes, clear transient flips (the cells were rewritten; the
    /// sticky cell re-asserts by construction).
    pub fn note_write(&mut self, line: u64, bytes: &[u8; 64], compressed: bool) {
        self.clean.insert(line, *bytes);
        self.flips.remove(&line);
        if self.ecc {
            self.stats.ecc_check_bytes += if compressed { 4 } else { 8 };
        }
    }

    /// A strategy recovery path re-sourced the poisoned line (RA copy,
    /// exception store, or ideal re-read): the line is rewritten clean.
    pub fn recover(&mut self, line: u64) {
        self.flips.remove(&line);
        self.stats.recovered += 1;
    }

    /// No recovery path exists (Baseline): the detection is surfaced as
    /// a machine-check style outcome. The cell state is reset so
    /// subsequent traffic measures fresh errors, not one stuck event.
    pub fn surface_unrecoverable(&mut self, line: u64) {
        self.flips.remove(&line);
        self.stats.sdc_averted += 1;
        self.stats.data_loss += 1;
    }

    /// One background scrub check of `line`: a touch (scrubbing is
    /// reading), then — with ECC on — correctable words are rewritten
    /// clean while uncorrectable ones are left poisoned for the next
    /// demand read's recovery path. Returns whether the scrub found
    /// anything to do.
    pub fn scrub_line(&mut self, line: u64, backend: &MemoryBackend) -> LineDecode {
        self.stats.scrub_checks += 1;
        self.sample(line);
        if self.ecc {
            self.stats.ecc_check_bytes += 8;
        }
        let (mut data, mut check, flips) = self.corrupted_image(line, backend);
        if flips.is_empty() {
            return LineDecode::default();
        }
        if !self.ecc {
            // Without ECC a scrub read cannot even see the corruption.
            return LineDecode::default();
        }
        let d = decode_line(&mut data, &mut check);
        if d.is_poisoned() {
            self.stats.scrub_uncorrectable += 1;
        } else if d.corrected != 0 {
            // Every error was correctable: the scrubber writes the
            // corrected line back, clearing the accumulated transients.
            self.stats.scrub_corrected += 1;
            self.flips.remove(&line);
        }
        d
    }

    /// Accounts a scrub slot that found the controller busy.
    pub fn note_scrub_busy(&mut self) {
        self.stats.scrub_skipped_busy += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attache_workloads::Profile;

    fn backend() -> MemoryBackend {
        MemoryBackend::new(&[Profile::stream(), Profile::rand()], 9)
    }

    /// A rate that flips something on essentially every touch.
    const ALWAYS: u64 = 1_000_000;

    #[test]
    fn clean_lines_decode_clean() {
        let mut e = IntegrityEngine::new(1, 0, true);
        let b = backend();
        for line in 0..64 {
            assert_eq!(e.touch_read(line, 0, false, &b), EccVerdict::Clean);
        }
        let s = e.stats();
        assert_eq!(s.reads_checked, 64);
        assert_eq!(s.total_corrected() + s.total_uncorrectable(), 0);
        assert_eq!(s.ecc_check_bytes, 64 * 8);
    }

    #[test]
    fn single_flips_are_corrected_and_accumulate_to_uncorrectable() {
        let mut e = IntegrityEngine::new(7, ALWAYS, true);
        let b = backend();
        // Find a line whose first touch corrects: every touch deposits a
        // flip, so the first read of any non-sticky line has exactly one.
        let line = (0..512u64).find(|&l| e.process.sticky(l).is_none()).unwrap();
        let v1 = e.touch_read(line, 0, false, &b);
        assert_eq!(v1, EccVerdict::Corrected);
        assert_eq!(e.stats().total_corrected(), 1);
        // Keep touching without rewriting: flips accumulate (XOR), so an
        // uncorrectable double error appears within a few touches.
        let mut poisoned = false;
        for _ in 0..64 {
            match e.touch_read(line, 0, false, &b) {
                EccVerdict::Poisoned => {
                    poisoned = true;
                    break;
                }
                v => assert_ne!(v, EccVerdict::Silent),
            }
        }
        assert!(poisoned, "accumulated flips must exceed SEC-DED");
        assert!(e.stats().total_uncorrectable() > 0);
    }

    #[test]
    fn writes_and_recovery_clear_transients() {
        let mut e = IntegrityEngine::new(3, ALWAYS, true);
        let b = backend();
        let line = (0..512u64).find(|&l| e.process.sticky(l).is_none()).unwrap();
        assert_eq!(e.touch_read(line, 0, false, &b), EccVerdict::Corrected);
        // A writeback replaces the cells: the next touch sees only the
        // fresh flip it deposits itself.
        e.note_write(line, &b.content(line), false);
        assert_eq!(e.touch_read(line, 0, false, &b), EccVerdict::Corrected);
        e.recover(line);
        assert_eq!(e.stats().recovered, 1);
        assert_eq!(e.touch_read(line, 0, false, &b), EccVerdict::Corrected);
    }

    #[test]
    fn sticky_cells_reassert_after_rewrite() {
        let mut e = IntegrityEngine::new(11, 800_000, true);
        let b = backend();
        let sticky = (0..4096u64)
            .find(|&l| e.process.sticky(l).is_some())
            .expect("a sticky line exists at this rate");
        // Write, then read: the sticky flip must be back even though the
        // rewrite cleared every transient.
        e.note_write(sticky, &b.content(sticky), false);
        let v = e.touch_read(sticky, 0, false, &b);
        assert_ne!(v, EccVerdict::Clean, "sticky cell must re-assert");
        assert_eq!(e.stats().sticky_lines, 1);
    }

    #[test]
    fn ecc_off_counts_silent_corruption_and_amplification() {
        let mut e = IntegrityEngine::new(5, ALWAYS, false);
        let b = backend();
        let line = (0..512u64).find(|&l| e.process.sticky(l).is_none()).unwrap();
        // Touch until a *data* bit flips (check-bit flips are dropped
        // with ECC off, decoding as Clean).
        let mut silent = 0u64;
        for _ in 0..32 {
            if e.touch_read(line, 0, false, &b) == EccVerdict::Silent {
                silent += 1;
            }
        }
        assert!(silent > 0, "data-bit flips must surface as Silent");
        let s = e.stats();
        assert_eq!(s.silent_corruption_reads, silent);
        assert!(s.corrupted_bytes_delivered >= silent);
        assert_eq!(s.ecc_check_bytes, 0, "no ECC, no check traffic");
        // A compressed layout amplifies to the full block.
        e.flips.clear();
        let mut e2 = IntegrityEngine::new(5, ALWAYS, false);
        let mut seen_compressed_amp = false;
        for _ in 0..32 {
            let before = e2.stats().corrupted_bytes_delivered;
            if e2.touch_read(line, 0, true, &b) == EccVerdict::Silent {
                assert_eq!(e2.stats().corrupted_bytes_delivered - before, 64);
                seen_compressed_amp = true;
                break;
            }
        }
        assert!(seen_compressed_amp);
    }

    #[test]
    fn scrub_corrects_singles_and_leaves_doubles_poisoned() {
        let mut e = IntegrityEngine::new(13, 0, true);
        let b = backend();
        // Hand-plant flips to make the scrub outcome exact.
        e.toggle_flip(10, 3); // single data flip in word 0
        let d = e.scrub_line(10, &b);
        assert_eq!(d.corrected, 1);
        assert!(!e.flips.contains_key(&10), "scrub rewrites the line");
        e.toggle_flip(11, 3);
        e.toggle_flip(11, 7); // double flip in word 0
        let d = e.scrub_line(11, &b);
        assert!(d.is_poisoned());
        assert!(e.flips.contains_key(&11), "poison left for recovery");
        let s = e.stats();
        assert_eq!(s.scrub_checks, 2);
        assert_eq!(s.scrub_corrected, 1);
        assert_eq!(s.scrub_uncorrectable, 1);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let b = backend();
        let run = || {
            let mut e = IntegrityEngine::new(99, 200_000, true);
            for t in 0..2_000u64 {
                let line = (t * 31) % 512;
                let _ = e.touch_read(line, (line % 2) as u8, line % 3 == 0, &b);
                if t % 17 == 0 {
                    e.note_write(line, &b.content(line), false);
                }
                if t % 29 == 0 {
                    let _ = e.scrub_line((t * 7) % 512, &b);
                }
            }
            e.stats()
        };
        assert_eq!(run(), run());
    }
}
