//! The trace-driven out-of-order core model.
//!
//! A USIMM/Ariel-style approximation of the paper's 4-wide OoO cores: a
//! reorder buffer holds a window of the instruction stream; loads that
//! miss the LLC block retirement when they reach the head, while younger
//! independent misses keep issuing (memory-level parallelism). Stores are
//! posted through a store buffer and never block retirement once issued.
//! This captures exactly the sensitivity the paper measures: how memory
//! latency and bandwidth changes translate into IPC.

use attache_workloads::TraceGenerator;
use std::collections::VecDeque;

/// Where a memory instruction stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemState {
    /// Not yet presented to the LLC / memory system.
    NeedIssue,
    /// LLC hit: data ready at this CPU cycle.
    WaitLlc(u64),
    /// LLC miss: waiting on the memory transaction with this id.
    WaitMem(u64),
    /// Data available; the instruction may retire.
    Ready,
}

/// One reorder-buffer slot: either a batch of non-memory instructions or a
/// single memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// `remaining` non-memory instructions.
    Gap {
        /// Instructions left to retire from this batch.
        remaining: u32,
    },
    /// A memory instruction.
    Mem {
        /// Physical line address.
        line: u64,
        /// Store (true) or load (false).
        is_write: bool,
        /// Progress state.
        state: MemState,
    },
}

/// One simulated core.
#[derive(Debug)]
pub struct Core {
    /// Core index.
    pub id: usize,
    trace: TraceGenerator,
    base_line: u64,
    /// The reorder buffer.
    pub rob: VecDeque<Slot>,
    /// Instructions currently held in the ROB.
    pub occupancy: u32,
    /// Instructions retired since the last reset.
    pub retired: u64,
    /// Local CPU cycle counter.
    pub cpu_now: u64,
    /// Outstanding memory transactions (MSHR occupancy).
    pub outstanding: usize,
    /// Most outstanding transactions this core will sustain: the MSHR
    /// count, further capped by the workload's
    /// [`mlp_limit`](attache_workloads::Profile::mlp_limit) (a serialized
    /// pointer chase caps it at 1).
    pub max_outstanding: usize,
}

impl Core {
    /// Creates a core running `trace` with its footprint based at
    /// `base_line`, sustaining at most `max_outstanding` memory
    /// transactions.
    pub fn new(id: usize, trace: TraceGenerator, base_line: u64, max_outstanding: usize) -> Self {
        Self {
            id,
            trace,
            base_line,
            rob: VecDeque::new(),
            occupancy: 0,
            retired: 0,
            cpu_now: 0,
            outstanding: 0,
            max_outstanding,
        }
    }

    /// Fills the ROB from the trace up to `rob_size` instructions.
    pub fn fill_rob(&mut self, rob_size: u32) {
        while self.occupancy < rob_size {
            let ev = self.trace.next_event();
            if ev.gap_instructions > 0 {
                self.rob.push_back(Slot::Gap {
                    remaining: ev.gap_instructions,
                });
                self.occupancy += ev.gap_instructions;
            }
            self.rob.push_back(Slot::Mem {
                line: self.base_line + ev.line_offset,
                is_write: ev.is_write,
                state: MemState::NeedIssue,
            });
            self.occupancy += 1;
        }
    }

    /// Retires up to `width` instructions from the ROB head; returns how
    /// many retired.
    pub fn retire(&mut self, width: u32) -> u32 {
        let mut budget = width;
        while budget > 0 {
            match self.rob.front_mut() {
                Some(Slot::Gap { remaining }) => {
                    let take = (*remaining).min(budget);
                    *remaining -= take;
                    budget -= take;
                    self.occupancy -= take;
                    self.retired += take as u64;
                    if *remaining == 0 {
                        self.rob.pop_front();
                    }
                }
                Some(Slot::Mem {
                    is_write, state, ..
                }) => {
                    let ready = if *is_write {
                        // Stores retire once issued (store buffer).
                        *state != MemState::NeedIssue
                    } else {
                        match *state {
                            MemState::Ready => true,
                            MemState::WaitLlc(t) => t <= self.cpu_now,
                            _ => false,
                        }
                    };
                    if !ready {
                        break;
                    }
                    self.rob.pop_front();
                    self.occupancy -= 1;
                    self.retired += 1;
                    budget -= 1;
                }
                None => break,
            }
        }
        width - budget
    }

    /// Marks every load waiting on transaction `txn` as ready, without
    /// touching the MSHR count (used for piggybacked waiters).
    pub fn mark_txn_ready(&mut self, txn: u64) {
        for slot in self.rob.iter_mut() {
            if let Slot::Mem { state, .. } = slot {
                if *state == MemState::WaitMem(txn) {
                    *state = MemState::Ready;
                }
            }
        }
    }

    /// Marks every load waiting on transaction `txn` as ready and releases
    /// the initiator's MSHR slot.
    pub fn complete_txn(&mut self, txn: u64) {
        self.mark_txn_ready(txn);
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
    }

    /// Resets retirement counting (warm-up boundary).
    pub fn reset_retired(&mut self) {
        self.retired = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attache_workloads::Profile;

    fn core() -> Core {
        Core::new(0, TraceGenerator::new(&Profile::stream(), 1), 0, 8)
    }

    #[test]
    fn fill_respects_rob_size() {
        let mut c = core();
        c.fill_rob(192);
        assert!(c.occupancy >= 192);
        // Overshoot is at most one gap batch + one memory instruction.
        assert!(c.occupancy < 192 + 64);
    }

    #[test]
    fn gaps_retire_at_issue_width() {
        let mut c = core();
        c.rob.push_back(Slot::Gap { remaining: 10 });
        c.occupancy = 10;
        assert_eq!(c.retire(4), 4);
        assert_eq!(c.retire(4), 4);
        assert_eq!(c.retire(4), 2);
        assert_eq!(c.retired, 10);
    }

    #[test]
    fn pending_load_blocks_retirement() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: false,
            state: MemState::WaitMem(7),
        });
        c.rob.push_back(Slot::Gap { remaining: 8 });
        c.occupancy = 9;
        assert_eq!(c.retire(4), 0, "load at head blocks");
        c.outstanding = 1;
        c.complete_txn(7);
        assert_eq!(c.retire(4), 4, "load + 3 gap instructions");
    }

    #[test]
    fn issued_store_does_not_block() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: true,
            state: MemState::WaitMem(3),
        });
        c.rob.push_back(Slot::Gap { remaining: 4 });
        c.occupancy = 5;
        assert_eq!(c.retire(4), 4, "posted store retires immediately");
    }

    #[test]
    fn unissued_store_blocks() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: true,
            state: MemState::NeedIssue,
        });
        c.occupancy = 1;
        assert_eq!(c.retire(4), 0);
    }

    #[test]
    fn llc_hit_ready_after_latency() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: false,
            state: MemState::WaitLlc(20),
        });
        c.occupancy = 1;
        c.cpu_now = 19;
        assert_eq!(c.retire(4), 0);
        c.cpu_now = 20;
        assert_eq!(c.retire(4), 1);
    }
}
