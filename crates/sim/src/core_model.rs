//! The trace-driven out-of-order core model.
//!
//! A USIMM/Ariel-style approximation of the paper's 4-wide OoO cores: a
//! reorder buffer holds a window of the instruction stream; loads that
//! miss the LLC block retirement when they reach the head, while younger
//! independent misses keep issuing (memory-level parallelism). Stores are
//! posted through a store buffer and never block retirement once issued.
//! This captures exactly the sensitivity the paper measures: how memory
//! latency and bandwidth changes translate into IPC.

use attache_workloads::TraceGenerator;
use std::collections::VecDeque;

/// Where a memory instruction stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemState {
    /// Not yet presented to the LLC / memory system.
    NeedIssue,
    /// LLC hit: data ready at this CPU cycle.
    WaitLlc(u64),
    /// LLC miss: waiting on the memory transaction with this id.
    WaitMem(u64),
    /// Data available; the instruction may retire.
    Ready,
}

/// One reorder-buffer slot: either a batch of non-memory instructions or a
/// single memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// `remaining` non-memory instructions.
    Gap {
        /// Instructions left to retire from this batch.
        remaining: u32,
    },
    /// A memory instruction.
    Mem {
        /// Physical line address.
        line: u64,
        /// Store (true) or load (false).
        is_write: bool,
        /// Progress state.
        state: MemState,
    },
}

/// One simulated core.
#[derive(Debug)]
pub struct Core {
    /// Core index.
    pub id: usize,
    trace: TraceGenerator,
    base_line: u64,
    /// The reorder buffer.
    pub rob: VecDeque<Slot>,
    /// Instructions currently held in the ROB.
    pub occupancy: u32,
    /// Instructions retired since the last reset.
    pub retired: u64,
    /// Local CPU cycle counter.
    pub cpu_now: u64,
    /// Outstanding memory transactions (MSHR occupancy).
    pub outstanding: usize,
    /// Most outstanding transactions this core will sustain: the MSHR
    /// count, further capped by the workload's
    /// [`mlp_limit`](attache_workloads::Profile::mlp_limit) (a serialized
    /// pointer chase caps it at 1).
    pub max_outstanding: usize,
    /// Exact count of [`MemState::NeedIssue`] slots in the ROB. Together
    /// with [`issue_from`](Self::issue_from) this lets the per-cycle issue
    /// pass (and the event engine's wake probe) stop as soon as every
    /// un-issued op has been visited instead of walking the whole ROB.
    /// Maintained by [`fill_rob`](Self::fill_rob) / [`retire`](Self::retire)
    /// here and by the issue pass in `sim::system`; only meaningful while
    /// the ROB is mutated through those paths.
    pub need_issue: u32,
    /// Index of the first ROB slot that can be in `NeedIssue` state — a
    /// lower bound kept exact by the issue pass (first stalled slot), by
    /// `fill_rob` (first push while `need_issue == 0`), and by `retire`
    /// (shifted down as head slots pop). Unspecified while
    /// `need_issue == 0`.
    pub issue_from: usize,
    /// Snapshot taken after an issue pass in which *every* un-issued slot
    /// stalled (such a pass is side-effect-free): the system's
    /// issue-environment generation, paired with
    /// [`stall_outstanding`](Self::stall_outstanding) /
    /// [`stall_need_issue`](Self::stall_need_issue). While all three still
    /// match, repeating the pass would provably stall identically, so
    /// `sim::system` skips it. `u64::MAX` means "no valid snapshot".
    pub stall_env_gen: u64,
    /// MSHR occupancy at the snapshot (a completion freeing an MSHR can
    /// turn a stall into an issue).
    pub stall_outstanding: usize,
    /// `need_issue` at the snapshot (`fill_rob` appending a fresh op must
    /// re-run the pass).
    pub stall_need_issue: u32,
}

impl Core {
    /// Creates a core running `trace` with its footprint based at
    /// `base_line`, sustaining at most `max_outstanding` memory
    /// transactions.
    pub fn new(id: usize, trace: TraceGenerator, base_line: u64, max_outstanding: usize) -> Self {
        Self {
            id,
            trace,
            base_line,
            rob: VecDeque::new(),
            occupancy: 0,
            retired: 0,
            cpu_now: 0,
            outstanding: 0,
            max_outstanding,
            need_issue: 0,
            issue_from: 0,
            stall_env_gen: u64::MAX,
            stall_outstanding: 0,
            stall_need_issue: 0,
        }
    }

    /// Fills the ROB from the trace up to `rob_size` instructions.
    pub fn fill_rob(&mut self, rob_size: u32) {
        while self.occupancy < rob_size {
            let ev = self.trace.next_event();
            if ev.gap_instructions > 0 {
                self.rob.push_back(Slot::Gap {
                    remaining: ev.gap_instructions,
                });
                self.occupancy += ev.gap_instructions;
            }
            if self.need_issue == 0 {
                self.issue_from = self.rob.len();
            }
            self.rob.push_back(Slot::Mem {
                line: self.base_line + ev.line_offset,
                is_write: ev.is_write,
                state: MemState::NeedIssue,
            });
            self.need_issue += 1;
            self.occupancy += 1;
        }
    }

    /// Retires up to `width` instructions from the ROB head; returns how
    /// many retired.
    pub fn retire(&mut self, width: u32) -> u32 {
        let mut budget = width;
        // Slots popped off the head shift every remaining index down, so
        // the `issue_from` bound must shift with them. A popped slot is
        // never in `NeedIssue` state (an un-issued head blocks retirement),
        // so `need_issue` itself is unaffected.
        let mut pops = 0usize;
        while budget > 0 {
            match self.rob.front_mut() {
                Some(Slot::Gap { remaining }) => {
                    let take = (*remaining).min(budget);
                    *remaining -= take;
                    budget -= take;
                    self.occupancy -= take;
                    self.retired += take as u64;
                    if *remaining == 0 {
                        self.rob.pop_front();
                        pops += 1;
                    }
                }
                Some(Slot::Mem {
                    is_write, state, ..
                }) => {
                    let ready = if *is_write {
                        // Stores retire once issued (store buffer).
                        *state != MemState::NeedIssue
                    } else {
                        match *state {
                            MemState::Ready => true,
                            MemState::WaitLlc(t) => t <= self.cpu_now,
                            _ => false,
                        }
                    };
                    if !ready {
                        break;
                    }
                    self.rob.pop_front();
                    pops += 1;
                    self.occupancy -= 1;
                    self.retired += 1;
                    budget -= 1;
                }
                None => break,
            }
        }
        self.issue_from = self.issue_from.saturating_sub(pops);
        width - budget
    }

    /// Marks every load waiting on transaction `txn` as ready, without
    /// touching the MSHR count (used for piggybacked waiters).
    pub fn mark_txn_ready(&mut self, txn: u64) {
        for slot in self.rob.iter_mut() {
            if let Slot::Mem { state, .. } = slot {
                if *state == MemState::WaitMem(txn) {
                    *state = MemState::Ready;
                }
            }
        }
    }

    /// Marks every load waiting on transaction `txn` as ready and releases
    /// the initiator's MSHR slot.
    pub fn complete_txn(&mut self, txn: u64) {
        self.mark_txn_ready(txn);
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
    }

    /// Resets retirement counting (warm-up boundary).
    pub fn reset_retired(&mut self) {
        self.retired = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attache_workloads::Profile;

    fn core() -> Core {
        Core::new(0, TraceGenerator::new(&Profile::stream(), 1), 0, 8)
    }

    #[test]
    fn fill_respects_rob_size() {
        let mut c = core();
        c.fill_rob(192);
        assert!(c.occupancy >= 192);
        // Overshoot is at most one gap batch + one memory instruction.
        assert!(c.occupancy < 192 + 64);
    }

    #[test]
    fn gaps_retire_at_issue_width() {
        let mut c = core();
        c.rob.push_back(Slot::Gap { remaining: 10 });
        c.occupancy = 10;
        assert_eq!(c.retire(4), 4);
        assert_eq!(c.retire(4), 4);
        assert_eq!(c.retire(4), 2);
        assert_eq!(c.retired, 10);
    }

    #[test]
    fn pending_load_blocks_retirement() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: false,
            state: MemState::WaitMem(7),
        });
        c.rob.push_back(Slot::Gap { remaining: 8 });
        c.occupancy = 9;
        assert_eq!(c.retire(4), 0, "load at head blocks");
        c.outstanding = 1;
        c.complete_txn(7);
        assert_eq!(c.retire(4), 4, "load + 3 gap instructions");
    }

    #[test]
    fn issued_store_does_not_block() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: true,
            state: MemState::WaitMem(3),
        });
        c.rob.push_back(Slot::Gap { remaining: 4 });
        c.occupancy = 5;
        assert_eq!(c.retire(4), 4, "posted store retires immediately");
    }

    #[test]
    fn unissued_store_blocks() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: true,
            state: MemState::NeedIssue,
        });
        c.occupancy = 1;
        assert_eq!(c.retire(4), 0);
    }

    #[test]
    fn llc_hit_ready_after_latency() {
        let mut c = core();
        c.rob.push_back(Slot::Mem {
            line: 0,
            is_write: false,
            state: MemState::WaitLlc(20),
        });
        c.occupancy = 1;
        c.cpu_now = 19;
        assert_eq!(c.retire(4), 0);
        c.cpu_now = 20;
        assert_eq!(c.retire(4), 1);
    }
}
