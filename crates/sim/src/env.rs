//! Shared environment-variable parsing for run-control knobs.
//!
//! Every `ATTACHE_*` knob in the workspace follows the same contract: an
//! unset variable means "default", and a set-but-unparsable value warns
//! on stderr and falls back to the default — it never panics, because a
//! typo in a CI environment or a shell profile must not turn every
//! simulation into a crash. This module is the single implementation of
//! that contract (the bench runner previously carried its own copy).

/// Reads `name` as a `u64`, falling back to `default` when the variable
/// is unset, and warning on stderr (then falling back) when it is set
/// but unparsable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("[attache-sim] warning: {name}={v:?} is not a u64; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Every `ATTACHE_*` variable any part of the workspace reads. A set
/// variable outside this list is almost certainly a typo (the original
/// motivating case: `ATTACHE_EPOC=50000` silently sampling nothing), so
/// [`warn_unknown_knobs_once`] flags it at sim startup.
pub const KNOWN_KNOBS: &[&str] = &[
    "ATTACHE_BACKEND",
    "ATTACHE_BENCH_REPEAT",
    "ATTACHE_BER",
    "ATTACHE_BLESS",
    "ATTACHE_COMPRESS_MEMO",
    "ATTACHE_CONFORMANCE",
    "ATTACHE_ECC",
    "ATTACHE_ENGINE",
    "ATTACHE_ENV_KNOB_TEST",
    "ATTACHE_EPOCH",
    "ATTACHE_FAULTS",
    "ATTACHE_INSTR",
    "ATTACHE_JOB_LIMIT",
    "ATTACHE_JOB_RETRIES",
    "ATTACHE_JOB_TICK_BUDGET",
    "ATTACHE_MIRROR",
    "ATTACHE_NO_CACHE",
    "ATTACHE_QUICK",
    "ATTACHE_RESULTS",
    "ATTACHE_RESUME",
    "ATTACHE_SCRUB",
    "ATTACHE_SEED",
    "ATTACHE_SHARDS",
    "ATTACHE_TRACE",
    "ATTACHE_TRACE_RING",
    "ATTACHE_WARMUP",
    "ATTACHE_WORKERS",
];

/// The pure classifier behind [`warn_unknown_knobs_once`]: which of
/// `names` look like `ATTACHE_*` knobs but are not in [`KNOWN_KNOBS`].
/// Split out so tests can exercise it without mutating the process
/// environment.
pub fn unknown_knobs<'a, I>(names: I) -> Vec<String>
where
    I: IntoIterator<Item = &'a str>,
{
    names
        .into_iter()
        .filter(|n| n.starts_with("ATTACHE_") && !KNOWN_KNOBS.contains(n))
        .map(str::to_owned)
        .collect()
}

/// Scans the environment for set `ATTACHE_*` variables the workspace does
/// not recognize and warns on stderr, once per process. Called from
/// `SimConfig::table2_baseline` so every entry point gets the check
/// without each binary opting in.
pub fn warn_unknown_knobs_once() {
    static ONCE: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        let names: Vec<String> = std::env::vars_os()
            .filter_map(|(k, _)| k.into_string().ok())
            .collect();
        for knob in unknown_knobs(names.iter().map(String::as_str)) {
            eprintln!(
                "[attache-sim] warning: environment variable {knob} looks like an \
                 ATTACHE_* knob but is not one the workspace reads (typo?)"
            );
        }
    });
}

/// Reads `name` as an optional `u64` knob where absence, the empty
/// string, and `0` all mean "disabled" (`None`). A set-but-unparsable
/// value warns on stderr and disables the knob — it never panics.
pub fn env_u64_opt(name: &str) -> Option<u64> {
    match std::env::var(name) {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!(
                    "[attache-sim] warning: {name}={v:?} is not a u64; leaving the knob disabled"
                );
                None
            }
        },
        Err(_) => None,
    }
}
