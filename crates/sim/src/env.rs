//! Shared environment-variable parsing for run-control knobs.
//!
//! Every `ATTACHE_*` knob in the workspace follows the same contract: an
//! unset variable means "default", and a set-but-unparsable value warns
//! on stderr and falls back to the default — it never panics, because a
//! typo in a CI environment or a shell profile must not turn every
//! simulation into a crash. This module is the single implementation of
//! that contract (the bench runner previously carried its own copy).

/// Reads `name` as a `u64`, falling back to `default` when the variable
/// is unset, and warning on stderr (then falling back) when it is set
/// but unparsable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("[attache-sim] warning: {name}={v:?} is not a u64; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Reads `name` as an optional `u64` knob where absence, the empty
/// string, and `0` all mean "disabled" (`None`). A set-but-unparsable
/// value warns on stderr and disables the knob — it never panics.
pub fn env_u64_opt(name: &str) -> Option<u64> {
    match std::env::var(name) {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!(
                    "[attache-sim] warning: {name}={v:?} is not a u64; leaving the knob disabled"
                );
                None
            }
        },
        Err(_) => None,
    }
}
