//! The full system: cores + shared LLC + metadata strategy + DRAM.

use attache_core::copr::CoprConfig;
use attache_dram::{
    AccessKind, AccessWidth, AddressMapping, Completion, MemRequest,
    MemoryBackend as DramBackend, Origin,
};
use attache_workloads::{MixWorkload, Profile, TraceGenerator};
use std::cmp::Reverse;
use attache_core::fasthash::FastMap;
use std::collections::{BinaryHeap, VecDeque};

use crate::backend::MemoryBackend;
use crate::config::{EngineKind, SimConfig};
use crate::core_model::{Core, MemState, Slot};
use crate::inline::InlineVec;
use crate::observe::{Observation, Observer};
use crate::stats::RunReport;
use crate::strategy::{ReqSpec, Strategy};

/// Cap on deferred (queue-full) requests before cores stop issuing.
const RETRY_CAP: usize = 256;

#[derive(Debug)]
#[allow(clippy::enum_variant_names)] // the states *are* all waits
enum TxnState {
    /// Waiting for a metadata install read; the data read follows.
    WaitMeta { data: ReqSpec },
    /// Waiting for the demand data read.
    WaitData,
    /// Waiting for corrective / Replacement-Area follow-ups.
    WaitFollow { remaining: u32 },
}

/// A request waiting out a fixed lookup delay before submission. Ordered by
/// release cycle, ties broken by request id, so the min-heap releases
/// same-cycle entries in submission (FIFO) order.
#[derive(Debug)]
struct DelayedReq {
    release_at: u64,
    req: MemRequest,
}

impl PartialEq for DelayedReq {
    fn eq(&self, other: &Self) -> bool {
        self.release_at == other.release_at && self.req.id == other.req.id
    }
}

impl Eq for DelayedReq {}

impl PartialOrd for DelayedReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DelayedReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release_at, self.req.id).cmp(&(other.release_at, other.req.id))
    }
}

/// The background patrol-scrub walk: every `period` bus cycles, check one
/// line's ECC (correcting latched single-bit upsets before they pair into
/// uncorrectable doubles) and charge one `Origin::Scrub` read to the
/// memory system. Fires only on idle cycles — a backlogged retry queue
/// skips the interval and counts it instead of delaying demand traffic.
#[derive(Debug)]
struct ScrubState {
    period: u64,
    next_tick: u64,
    cursor: u64,
}

#[derive(Debug)]
struct Txn {
    line: u64,
    core: usize,
    predicted: Option<bool>,
    state: TxnState,
    /// Cores whose ROB entries wait on this transaction; `true` if the
    /// entry holds an MSHR slot (the initiator). Inline-first: almost
    /// every transaction has exactly one waiter, so the common case
    /// allocates nothing.
    waiters: InlineVec<(usize, bool), 4>,
}

/// The simulated system. Construct indirectly through
/// [`System::run_rate_mode`], [`System::run_mix`] or
/// [`System::run_profiles`].
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    llc: attache_cache::Llc,
    /// The memory *timing* backend (`cfg.backend`): cycle-level DDR4 or
    /// the fast queueing model, behind the `attache_dram::MemoryBackend`
    /// boundary. Distinct from [`MemoryBackend`], this crate's
    /// *functional* backend (contents/compressibility, cycle-free).
    mem: Box<dyn DramBackend>,
    strategy: Strategy,
    backend: MemoryBackend,
    txns: FastMap<u64, Txn>,
    txn_by_req: FastMap<u64, u64>,
    pending_lines: FastMap<u64, u64>,
    retry_q: VecDeque<MemRequest>,
    delayed: BinaryHeap<Reverse<DelayedReq>>,
    /// Reused buffer for [`Strategy::on_read_data`] follow-ups, so the
    /// per-completion fast path allocates nothing. [`ReqSpec`] is `Copy`;
    /// the buffer is taken, filled, drained, and put back per completion.
    follow_scratch: Vec<ReqSpec>,
    /// Reused buffer for each tick's drained completions (same
    /// take/fill/drain/put-back discipline as `follow_scratch`); with
    /// [`DramBackend::drain_completions_into`] the per-tick drain
    /// allocates nothing in steady state.
    completion_scratch: Vec<attache_dram::Completion>,
    next_txn: u64,
    next_req: u64,
    cpu_accum: u32,
    /// Event engine only: per-core cached wake cycle — the earliest bus
    /// cycle at which the core might do anything (`0` = unknown, forcing
    /// a full CPU cycle and a recompute). Maintained by
    /// [`bus_tick_event`](Self::bus_tick_event); the per-cycle engine
    /// ignores it.
    core_wake: Vec<u64>,
    /// Event engine only: the backend's
    /// [`mutation_gen`](DramBackend::mutation_gen) at the last retry
    /// flush pass. While unchanged, every retry would be rejected again,
    /// so the pass is skipped.
    flush_gen: u64,
    /// Generation counter for the state the issue pass reads beyond the
    /// core's own ROB: LLC contents, retry-queue headroom, and MSHR-
    /// freeing completions. Bumped (both engines) whenever that state
    /// changes in a direction that could turn a stalled `NeedIssue` slot
    /// issuable; cores gate their issue pass on it (see
    /// [`Core::stall_env_gen`]).
    issue_env_gen: u64,
    /// Event engine only: a fault action mutated DRAM state at the tail
    /// of the last executed tick (e.g. a derate overwrite that *raised*
    /// the capped read-queue capacity). Enqueue outcomes may have
    /// improved, so the next tick must run for real — the per-cycle
    /// engine re-flushes retries every cycle and would accept them
    /// there. Consumed by [`horizon`](Self::horizon).
    fault_mem_action: bool,
    /// Observability sampler/tracer — present only when a knob is on
    /// (`ATTACHE_EPOCH` / `ATTACHE_TRACE_RING` or their builders). A
    /// pure observer: never consulted by any model decision.
    observer: Option<Box<Observer>>,
    /// Background ECC patrol scrub — present only when `ATTACHE_SCRUB`
    /// (or `SimConfig::with_scrub`) set a period.
    scrub: Option<ScrubState>,
}

// The experiment harness fans simulations out across worker threads, so a
// `System` (and everything it owns, including the `Box<dyn
// ReplacementPolicy>` inside each cache) must stay `Send`. This fails to
// compile if a future field loses that property.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
};

impl System {
    /// Runs `profile` in rate mode (all cores execute the same profile, as
    /// in the paper's single-benchmark experiments) and reports.
    pub fn run_rate_mode(cfg: &SimConfig, profile: Profile, seed: u64) -> RunReport {
        Self::run_rate_mode_observed(cfg, profile, seed).0
    }

    /// [`run_rate_mode`](Self::run_rate_mode) plus the run's
    /// [`Observation`] when any observability knob is on.
    pub fn run_rate_mode_observed(
        cfg: &SimConfig,
        profile: Profile,
        seed: u64,
    ) -> (RunReport, Option<Observation>) {
        let name = profile.name.to_string();
        let profiles = vec![profile; cfg.core.cores];
        Self::run_profiles_observed(cfg, &profiles, &name, seed)
    }

    /// Runs an 8-threaded mixed workload.
    pub fn run_mix(cfg: &SimConfig, mix: &MixWorkload, seed: u64) -> RunReport {
        Self::run_mix_observed(cfg, mix, seed).0
    }

    /// [`run_mix`](Self::run_mix) plus the run's [`Observation`] when
    /// any observability knob is on.
    pub fn run_mix_observed(
        cfg: &SimConfig,
        mix: &MixWorkload,
        seed: u64,
    ) -> (RunReport, Option<Observation>) {
        assert_eq!(
            mix.cores.len(),
            cfg.core.cores,
            "mix must provide one profile per core"
        );
        Self::run_profiles_observed(cfg, &mix.cores, mix.name, seed)
    }

    /// Runs one profile per core: warm-up, stats reset, measured region.
    ///
    /// The measured region ends when the *total* retired instruction count
    /// reaches `cores x instructions_per_core` — the aggregate-throughput
    /// criterion. (Waiting for every core individually would measure the
    /// max over per-core tails, which is noisy.)
    pub fn run_profiles(cfg: &SimConfig, profiles: &[Profile], name: &str, seed: u64) -> RunReport {
        Self::run_profiles_observed(cfg, profiles, name, seed).0
    }

    /// [`run_profiles`](Self::run_profiles) plus the run's
    /// [`Observation`] when any observability knob is on. The
    /// observation covers the measured region only (the registry and
    /// series are cleared at the warm-up boundary).
    pub fn run_profiles_observed(
        cfg: &SimConfig,
        profiles: &[Profile],
        name: &str,
        seed: u64,
    ) -> (RunReport, Option<Observation>) {
        assert_eq!(profiles.len(), cfg.core.cores, "one profile per core");
        let mut sys = Self::build(cfg, profiles, seed);
        let cores = cfg.core.cores as u64;
        if cfg.warmup_instructions_per_core > 0 {
            sys.run_until(cores * cfg.warmup_instructions_per_core);
        }
        sys.reset_stats();
        let measured_base: u64 = sys.cores.iter().map(|c| c.retired).sum();
        sys.run_until(measured_base + cores * cfg.instructions_per_core);
        let report = sys.report_measured(name, measured_base);
        let now = sys.mem.now();
        let observation = sys
            .observer
            .as_mut()
            .map(|o| o.finish(now, sys.mem.as_ref(), &sys.llc, &sys.strategy, &sys.cfg));
        (report, observation)
    }

    fn build(cfg: &SimConfig, profiles: &[Profile], seed: u64) -> Self {
        let backend = MemoryBackend::new(profiles, seed);
        let mapping = AddressMapping::new(cfg.dram);
        let copr_cfg = cfg
            .copr
            .unwrap_or_else(|| CoprConfig::paper_default(backend.occupied_lines().max(1)));
        let mut strategy = Strategy::with_cid_bits(
            cfg.strategy,
            mapping,
            cfg.metadata_cache,
            copr_cfg,
            seed,
            cfg.cid_bits,
        );
        if cfg.mirror {
            strategy.enable_mirror();
        }
        if cfg.mirror_poison {
            strategy.poison_mirror();
        }
        if let Some(plan) = cfg.faults.clone() {
            strategy.enable_faults(plan);
        }
        if cfg.integrity_armed() {
            strategy.enable_integrity(seed, cfg.ber_ppm.unwrap_or(0), cfg.ecc);
        }
        let observer = Observer::from_config(cfg);
        let mut mem =
            attache_dram::new_backend_with_shards(cfg.backend, cfg.dram, cfg.power, cfg.shards);
        if let Some(ring) = observer.as_ref().and_then(|o| o.ring.clone()) {
            strategy.set_trace(ring.clone());
            mem.set_trace(ring);
        }
        let cores = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Core::new(
                    i,
                    TraceGenerator::new(p, seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9)),
                    backend.core_base(i),
                    cfg.core
                        .max_outstanding
                        .min(p.mlp_limit.unwrap_or(usize::MAX)),
                )
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            cores,
            llc: attache_cache::Llc::new(cfg.llc),
            mem,
            strategy,
            backend,
            txns: FastMap::default(),
            txn_by_req: FastMap::default(),
            pending_lines: FastMap::default(),
            retry_q: VecDeque::new(),
            delayed: BinaryHeap::new(),
            follow_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            next_txn: 0,
            next_req: 0,
            cpu_accum: 0,
            core_wake: vec![0; cfg.core.cores],
            flush_gen: u64::MAX,
            issue_env_gen: 0,
            fault_mem_action: false,
            observer,
            scrub: cfg.scrub_period.map(|period| ScrubState {
                period,
                next_tick: period,
                cursor: 0,
            }),
        }
    }

    fn run_until(&mut self, total_target: u64) {
        match self.cfg.engine {
            EngineKind::Cycle => self.run_until_cycle(total_target),
            EngineKind::Event => self.run_until_event(total_target),
        }
    }

    /// The per-cycle reference engine: one [`bus_tick`](Self::bus_tick) per
    /// bus cycle, no skipping.
    fn run_until_cycle(&mut self, total_target: u64) {
        let mut guard: u64 = 0;
        while self.cores.iter().map(|c| c.retired).sum::<u64>() < total_target {
            self.bus_tick();
            self.check_tick_budget();
            guard += 1;
            assert!(
                guard < 20_000_000_000,
                "simulation failed to make progress"
            );
        }
    }

    /// The event engine: after each real tick, jump straight to the next
    /// cycle at which anything can change. Instructions retire only inside
    /// `bus_tick` (skipped spans are quiescent by construction), so the
    /// stop cycle — and every statistic — matches the per-cycle engine
    /// exactly.
    fn run_until_event(&mut self, total_target: u64) {
        let mut guard: u64 = 0;
        while self.cores.iter().map(|c| c.retired).sum::<u64>() < total_target {
            self.bus_tick_event();
            self.check_tick_budget();
            guard += 1;
            assert!(
                guard < 20_000_000_000,
                "simulation failed to make progress"
            );
            // The reference engine stops on the exact tick that reaches the
            // target; skipping ahead here would overshoot `mem.now()` past
            // that cycle (shifting the warm-up boundary and the final
            // bus-cycle count), so re-check before advancing.
            if self.cores.iter().map(|c| c.retired).sum::<u64>() >= total_target {
                break;
            }
            let now = self.mem.now();
            let horizon = self.horizon(now);
            debug_assert!(horizon > now, "horizon must be in the future");
            if horizon > now + 1 {
                self.advance(horizon - now - 1);
            }
        }
    }

    /// One bus cycle of the event engine. Bit-identical to
    /// [`bus_tick`](Self::bus_tick), but every phase consults a cached
    /// bound before doing work:
    ///
    /// * channels with a future [`next_event`](DramBackend::next_event)
    ///   bound skip their scheduler pass ([`DramBackend::tick_event`]);
    /// * retries are only re-attempted when queue/bank state has mutated
    ///   since the last pass (`mutation_gen`) — enqueue outcomes are pure
    ///   functions of that state, so a pass against frozen state is a
    ///   guaranteed all-fail rotation, i.e. a no-op;
    /// * cores sleeping until a cached wake cycle (`core_wake`) skip their
    ///   CPU cycles entirely (each is provably a pure `cpu_now`
    ///   increment). Wakes are invalidated whenever state they depend on
    ///   can change: the waiter cores of a finishing transaction (ready
    ///   data, MSHR release) and every core on a retry-queue shrink
    ///   (issue-gate headroom). Cross-core coupling needs no wider
    ///   invalidation: per-core footprints are disjoint, and the LLC/retry
    ///   effects of one core's activity can only keep a blocked core
    ///   blocked, never wake it mid-tick.
    fn bus_tick_event(&mut self) {
        self.mem.tick_event();
        let mut completions = std::mem::take(&mut self.completion_scratch);
        self.mem.drain_completions_into(&mut completions);
        self.observe_completions(&completions);
        for c in completions.drain(..) {
            // `finish_txn` invalidates the wakes of exactly the cores each
            // completion can unblock.
            self.on_completion(c);
        }
        self.completion_scratch = completions;
        self.release_delayed();
        if !self.retry_q.is_empty() && self.mem.mutation_gen() != self.flush_gen {
            let before = self.retry_q.len();
            self.flush_retries();
            self.flush_gen = self.mem.mutation_gen();
            if self.retry_q.len() < before {
                self.core_wake.fill(0);
            }
        }

        self.cpu_accum += self.cfg.core.cpu_cycles_per_2_bus_cycles;
        let now = self.mem.now();
        while self.cpu_accum >= 2 {
            self.cpu_accum -= 2;
            let mut cores = std::mem::take(&mut self.cores);
            for core in &mut cores {
                if self.core_wake[core.id] > now {
                    core.cpu_now += 1;
                } else {
                    self.cpu_cycle(core);
                }
            }
            self.cores = cores;
        }
        for i in 0..self.cores.len() {
            if self.core_wake[i] <= now {
                let wake = self.core_horizon(&self.cores[i], now);
                self.core_wake[i] = wake;
            }
        }
        self.inject_faults_tick();
        self.scrub_tick();
        self.observe_tick();
    }

    /// Skips `span` bus cycles known to be event-free: bulk-accounts DRAM
    /// background power and drain-cycle statistics, and advances each
    /// core's CPU clock by the cycles the per-cycle engine would have run
    /// (all of them no-ops — every core is quiescent during the span).
    fn advance(&mut self, span: u64) {
        self.mem.advance_noop(span);
        let total =
            self.cpu_accum as u64 + self.cfg.core.cpu_cycles_per_2_bus_cycles as u64 * span;
        let cpu_cycles = total / 2;
        self.cpu_accum = (total % 2) as u32;
        for core in &mut self.cores {
            core.cpu_now += cpu_cycles;
        }
    }

    /// The earliest future bus cycle at which the next bus tick would do
    /// anything: a DRAM event (command legality, burst retirement, refresh,
    /// drain-mode flip), a delayed request release, or a core that can
    /// retire or issue — assembled entirely from the cached per-core wakes
    /// and per-channel bounds.
    ///
    /// Underestimates are safe (the engine degrades toward per-cycle
    /// polling); overestimates would change behavior, so every bound
    /// mirrors its per-cycle gate exactly.
    fn horizon(&mut self, now: u64) -> u64 {
        let soon = now + 1;
        // A fault action touched DRAM state after this tick's retry
        // flush (a derate overwrite can raise the capped capacity, i.e.
        // improve enqueue outcomes). The per-cycle engine re-flushes
        // next cycle; execute that tick for real so the gen-gated flush
        // runs at the same cycle.
        if std::mem::take(&mut self.fault_mem_action) {
            return soon;
        }
        let mut horizon = u64::MAX;
        for &w in &self.core_wake {
            debug_assert!(w > now, "stale core wake");
            if w == soon {
                return soon;
            }
            horizon = horizon.min(w);
        }
        if let Some(Reverse(d)) = self.delayed.peek() {
            horizon = horizon.min(d.release_at.max(soon));
        }
        // No explicit retry term: a retried request can only become
        // acceptable after a channel state mutation, and every mutation
        // happens on a cycle the memory bound already covers.
        horizon = horizon.min(self.mem.next_event_cached().max(soon));
        // Epoch sampling must observe the exact boundary cycle the
        // per-cycle engine samples at, so it is an event. (A forced tick
        // on a quiescent cycle is a no-op by the engine contract —
        // horizon underestimates are always safe.)
        if let Some(obs) = self.observer.as_ref() {
            let ns = obs.next_sample();
            if ns != u64::MAX {
                horizon = horizon.min(ns.max(soon));
            }
        }
        // A fault injection mutates model state, so the tick that fires
        // one must run for real — clamped exactly like epoch samples so
        // both engines inject at identical cycles.
        let nf = self.strategy.next_fault_tick();
        if nf != u64::MAX {
            horizon = horizon.min(nf.max(soon));
        }
        // A scrub check mutates model state (counters, possibly a
        // correction) and submits a read, so its scheduled tick must run
        // for real — clamped like fault injections so both engines scrub
        // at identical cycles.
        if let Some(scrub) = self.scrub.as_ref() {
            horizon = horizon.min(scrub.next_tick.max(soon));
        }
        horizon
    }

    /// When `core` can next make progress: refill the ROB, issue a stalled
    /// memory op, or retire its head. `u64::MAX` means the core is blocked
    /// on a memory event (tracked by the DRAM/txn horizons).
    fn core_horizon(&self, core: &Core, now: u64) -> u64 {
        let soon = now + 1;
        if core.occupancy < self.cfg.core.rob_size {
            return soon; // fill_rob will add instructions
        }
        // A stalled memory op that would issue now makes the core active.
        // Bounded by the same `need_issue` bookkeeping as the issue pass:
        // only the un-issued slots are probed.
        let mut remaining = core.need_issue;
        for idx in core.issue_from..core.rob.len() {
            if remaining == 0 {
                break;
            }
            if let Slot::Mem {
                line,
                state: MemState::NeedIssue,
                ..
            } = core.rob[idx]
            {
                remaining -= 1;
                // Headroom first: it is two integer compares, while the
                // LLC probe walks a set's tags. Both are pure, so the
                // short-circuit order is free to prefer the cheap one.
                if (core.outstanding < core.max_outstanding
                    && self.retry_q.len() < RETRY_CAP)
                    || self.llc.probe_line(line)
                {
                    return soon;
                }
            }
        }
        match core.rob.front() {
            // Gaps retire unconditionally; an empty ROB is covered by the
            // occupancy check above.
            None | Some(Slot::Gap { .. }) => soon,
            Some(Slot::Mem {
                is_write, state, ..
            }) => {
                let retirable = if *is_write {
                    *state != MemState::NeedIssue
                } else {
                    match state {
                        MemState::Ready => true,
                        MemState::WaitLlc(t) => *t <= core.cpu_now,
                        _ => false,
                    }
                };
                if retirable {
                    return soon;
                }
                if let MemState::WaitLlc(t) = state {
                    // The head retires during the CPU cycle that sees
                    // `cpu_now >= t`, i.e. after d = t - cpu_now + 1 more
                    // CPU cycles; each bus tick runs (accum + ratio)/2 of
                    // them, so the first tick with ratio*n >= 2d - accum.
                    let d = *t - core.cpu_now + 1;
                    let ratio = self.cfg.core.cpu_cycles_per_2_bus_cycles as u64;
                    let n = (2 * d - self.cpu_accum as u64).div_ceil(ratio);
                    return now + n.max(1);
                }
                // WaitMem, or a blocked NeedIssue: woken by completions or
                // queue-pressure changes, which are DRAM/retry events.
                u64::MAX
            }
        }
    }

    fn reset_stats(&mut self) {
        self.mem.reset_stats();
        self.llc.reset_stats();
        self.strategy.reset_stats();
        let now = self.mem.now();
        if let Some(obs) = self.observer.as_mut() {
            obs.reset(now);
        }
    }

    fn bus_tick(&mut self) {
        self.mem.tick();
        let mut completions = std::mem::take(&mut self.completion_scratch);
        self.mem.drain_completions_into(&mut completions);
        self.observe_completions(&completions);
        for c in completions.drain(..) {
            self.on_completion(c);
        }
        self.completion_scratch = completions;
        self.release_delayed();
        self.flush_retries();

        self.cpu_accum += self.cfg.core.cpu_cycles_per_2_bus_cycles;
        while self.cpu_accum >= 2 {
            self.cpu_accum -= 2;
            let mut cores = std::mem::take(&mut self.cores);
            for core in &mut cores {
                self.cpu_cycle(core);
            }
            self.cores = cores;
        }
        self.inject_faults_tick();
        self.scrub_tick();
        self.observe_tick();
    }

    /// Feeds this tick's completions to the observer: read-latency
    /// histogram points, and decoded completion events for the trace
    /// ring. No-op without an observer.
    fn observe_completions(&mut self, completions: &[Completion]) {
        let Some(obs) = self.observer.as_mut() else {
            return;
        };
        let want_events = obs.wants_events();
        for c in completions {
            if c.request.kind == AccessKind::Read {
                let ch = self.mem.channel_of(c.request.line_addr);
                obs.record_read_latency(ch, c.latency());
            }
            if want_events {
                obs.push_event(
                    c.finished_at,
                    format!(
                        "complete id={} line={:#x} {:?} {:?} {:?} latency={}",
                        c.request.id,
                        c.request.line_addr,
                        c.request.kind,
                        c.request.width,
                        c.request.origin,
                        c.latency()
                    ),
                );
            }
        }
    }

    /// End-of-tick fault hook: runs the injection schedule when armed.
    /// Strategy-level perturbations (stored images, BLEM, the metadata
    /// cache) happen inside [`Strategy::apply_faults`]; DRAM-level
    /// actions and trace events are applied here. One `Option` check
    /// when faults are off.
    fn inject_faults_tick(&mut self) {
        let now = self.mem.now();
        let Some(outcome) = self.strategy.apply_faults(now) else {
            return;
        };
        for action in outcome.actions {
            match action {
                crate::faults::FaultAction::DerateReads { cap, until } => {
                    self.mem.fault_derate_reads(cap, until);
                    self.fault_mem_action = true;
                }
            }
        }
        if let Some(obs) = self.observer.as_ref() {
            if obs.wants_events() {
                for e in outcome.events {
                    obs.push_event(now, e);
                }
            }
        }
    }

    /// End-of-tick patrol-scrub hook: when the scrub clock expires on an
    /// idle cycle (empty retry queue), functionally checks one line's ECC
    /// and charges one untracked `Origin::Scrub` read; on a backlogged
    /// cycle the interval is skipped and counted. Runs at the same cycle
    /// in both engines — [`horizon`](Self::horizon) clamps to
    /// `next_tick`, so the event engine executes the scheduled tick for
    /// real. One `Option` check when scrub is off.
    fn scrub_tick(&mut self) {
        let Some(scrub) = self.scrub.as_mut() else {
            return;
        };
        let now = self.mem.now();
        if now < scrub.next_tick {
            return;
        }
        // Catch up past `now` in one pass so a tiny period can never pin
        // `next_tick` in the past (which would force the event engine
        // into per-cycle polling forever).
        while scrub.next_tick <= now {
            scrub.next_tick += scrub.period;
        }
        let lines = self.backend.occupied_lines();
        if lines == 0 {
            return;
        }
        if !self.retry_q.is_empty() {
            self.strategy.note_scrub_busy();
            return;
        }
        // Workload regions are packed contiguously from address zero, so
        // the wrap-around cursor is itself a valid line address.
        let line = scrub.cursor % lines;
        scrub.cursor += 1;
        self.strategy.scrub_line(line, &self.backend);
        let spec = crate::strategy::ReqSpec {
            line,
            kind: AccessKind::Read,
            width: AccessWidth::Full,
            origin: Origin::Scrub,
        };
        // Untracked: `on_completion` ignores reads with no transaction,
        // so the scrub read costs bandwidth/energy without blocking
        // anything.
        self.submit_spec(spec, 0, None);
    }

    /// Cooperative watchdog: panics with a typed
    /// [`TickBudgetExceeded`](crate::faults::TickBudgetExceeded) payload
    /// once the bus clock passes the configured budget
    /// (`ATTACHE_JOB_TICK_BUDGET`). The resilient grid executor
    /// downcasts the payload into a structured timed-out outcome instead
    /// of treating the job as crashed.
    fn check_tick_budget(&self) {
        if let Some(budget) = self.cfg.tick_budget {
            let now = self.mem.now();
            if now > budget {
                std::panic::panic_any(crate::faults::TickBudgetExceeded { budget, now });
            }
        }
    }

    /// End-of-tick observer hook: takes an epoch snapshot when the
    /// epoch clock expires. No-op without an observer.
    fn observe_tick(&mut self) {
        let now = self.mem.now();
        if let Some(obs) = self.observer.as_mut() {
            obs.on_tick(now, self.mem.as_ref(), &self.llc, &self.strategy, &self.cfg);
        }
    }

    fn cpu_cycle(&mut self, core: &mut Core) {
        core.fill_rob(self.cfg.core.rob_size);

        // Issue pass: present NeedIssue memory ops to the LLC / memory, in
        // ROB order. The `need_issue` count and `issue_from` bound let the
        // walk start at the first un-issued slot and stop once all of them
        // have been visited — same slots, same order as a full scan. A
        // pass in which every slot stalls mutates nothing (`issue_mem_op`
        // returns `None` before touching any state), so while the stall
        // snapshot still matches, the whole pass is skipped: it would
        // provably stall identically.
        if core.need_issue > 0
            && core.stall_env_gen == self.issue_env_gen
            && core.stall_outstanding == core.outstanding
            && core.stall_need_issue == core.need_issue
        {
            // Identical all-stall pass: skip.
        } else if core.need_issue > 0 {
            let before = core.need_issue;
            let mut remaining = core.need_issue;
            let mut first_stalled = None;
            for idx in core.issue_from..core.rob.len() {
                if remaining == 0 {
                    break;
                }
                let Slot::Mem {
                    line,
                    is_write,
                    state,
                } = core.rob[idx]
                else {
                    continue;
                };
                if state != MemState::NeedIssue {
                    continue;
                }
                remaining -= 1;
                if let Some(new_state) = self.issue_mem_op(core, line, is_write) {
                    if let Slot::Mem { state, .. } = &mut core.rob[idx] {
                        *state = new_state;
                    }
                    core.need_issue -= 1;
                } else if first_stalled.is_none() {
                    first_stalled = Some(idx);
                }
            }
            core.issue_from = first_stalled.unwrap_or(core.rob.len());
            if core.need_issue == before {
                core.stall_env_gen = self.issue_env_gen;
                core.stall_outstanding = core.outstanding;
                core.stall_need_issue = core.need_issue;
            } else {
                // Issues mutated the LLC / transaction state; other cores
                // share none of it (disjoint footprints) but the retry
                // queue may have grown — growth only strengthens stalls,
                // so their snapshots stay valid. Clear only our own.
                core.stall_env_gen = u64::MAX;
            }
        }

        core.retire(self.cfg.core.issue_width);
        core.cpu_now += 1;
    }

    /// Attempts to issue one memory operation; `None` means "stall, retry
    /// next cycle".
    fn issue_mem_op(&mut self, core: &mut Core, line: u64, is_write: bool) -> Option<MemState> {
        let resident = self.llc.probe_line(line);
        if resident {
            if is_write {
                self.backend.record_store(line);
            }
            let acc = self.llc.access_line(line, is_write);
            debug_assert!(acc.hit);
            // A line filled by an in-flight transaction is "resident" in
            // the tag array; loads to it must still wait for the data.
            if let (false, Some(&txn_id)) = (is_write, self.pending_lines.get(&line)) {
                if let Some(txn) = self.txns.get_mut(&txn_id) {
                    txn.waiters.push((core.id, false));
                    return Some(MemState::WaitMem(txn_id));
                }
            }
            return Some(if is_write {
                MemState::Ready
            } else {
                MemState::WaitLlc(core.cpu_now + self.llc.latency())
            });
        }

        // LLC miss: need an MSHR (capped by the workload's MLP limit) and
        // memory-queue headroom.
        if core.outstanding >= core.max_outstanding || self.retry_q.len() >= RETRY_CAP {
            return None;
        }
        if is_write {
            self.backend.record_store(line);
        }
        let acc = self.llc.access_line(line, is_write);
        debug_assert!(!acc.hit);
        if let Some(victim) = acc.writeback {
            self.do_writeback(victim, core.id as u8);
        }
        let txn_id = self.start_read_txn(line, core.id);
        core.outstanding += 1;
        Some(if is_write {
            MemState::Ready // posted store; the fetch completes in background
        } else {
            MemState::WaitMem(txn_id)
        })
    }

    fn do_writeback(&mut self, victim_line: u64, core: u8) {
        let plan = self.strategy.plan_write(victim_line, core, &self.backend);
        self.submit_spec(plan.data, 0, None);
        for side in plan.side {
            self.submit_spec(side, 0, None);
        }
    }

    fn start_read_txn(&mut self, line: u64, core: usize) -> u64 {
        let txn_id = self.next_txn;
        self.next_txn += 1;
        let plan = self.strategy.plan_read(line, core as u8, &self.backend);
        // The ECC pipeline's syndrome check adds a bus cycle to every
        // demand-read path when enabled (zero when the engine is off).
        let delay =
            self.strategy.lookup_delay_bus_cycles() + self.strategy.ecc_read_delay_bus_cycles();
        for side in plan.side {
            self.submit_spec(side, delay, None);
        }
        let state = match plan.meta_first {
            Some(meta) => {
                self.submit_spec(meta, delay, Some(txn_id));
                TxnState::WaitMeta { data: plan.data }
            }
            None => {
                self.submit_spec(plan.data, delay, Some(txn_id));
                TxnState::WaitData
            }
        };
        self.txns.insert(
            txn_id,
            Txn {
                line,
                core,
                predicted: plan.predicted_compressed,
                state,
                waiters: InlineVec::of((core, true)),
            },
        );
        self.pending_lines.insert(line, txn_id);
        txn_id
    }

    fn submit_spec(&mut self, spec: ReqSpec, delay: u64, txn: Option<u64>) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        let req = MemRequest {
            id,
            line_addr: spec.line,
            kind: spec.kind,
            width: spec.width,
            origin: spec.origin,
            arrival: self.mem.now() + delay,
        };
        if let Some(t) = txn {
            self.txn_by_req.insert(id, t);
        }
        if let Some(obs) = self.observer.as_ref() {
            if obs.wants_events() {
                obs.push_event(
                    self.mem.now(),
                    format!(
                        "submit id={id} line={:#x} {:?} {:?} {:?} arrival={}",
                        req.line_addr, req.kind, req.width, req.origin, req.arrival
                    ),
                );
            }
        }
        if delay > 0 {
            self.delayed.push(Reverse(DelayedReq {
                release_at: self.mem.now() + delay,
                req,
            }));
        } else {
            self.try_submit(req);
        }
        id
    }

    fn try_submit(&mut self, req: MemRequest) {
        if self.mem.enqueue(req).is_err() {
            self.retry_q.push_back(req);
        }
    }

    fn release_delayed(&mut self) {
        let now = self.mem.now();
        while let Some(Reverse(d)) = self.delayed.peek() {
            if d.release_at > now {
                break;
            }
            let Reverse(d) = self.delayed.pop().expect("peeked entry exists");
            self.try_submit(d.req);
        }
    }

    fn flush_retries(&mut self) {
        let n = self.retry_q.len();
        for _ in 0..n {
            let req = self.retry_q.pop_front().expect("len checked");
            if self.mem.enqueue(req).is_err() {
                self.retry_q.push_back(req);
            }
        }
        if self.retry_q.len() < n {
            // Retry headroom appeared: stalled issue passes may now accept.
            self.issue_env_gen += 1;
        }
    }

    fn on_completion(&mut self, c: Completion) {
        let Some(txn_id) = self.txn_by_req.remove(&c.request.id) else {
            return; // untracked (writes, side traffic)
        };
        debug_assert_eq!(c.request.kind, AccessKind::Read);
        let Some(txn) = self.txns.get_mut(&txn_id) else {
            return;
        };
        match txn.state {
            TxnState::WaitMeta { data } => {
                txn.state = TxnState::WaitData;
                self.submit_spec(data, 0, Some(txn_id));
            }
            TxnState::WaitData => {
                let (line, predicted, core) = (txn.line, txn.predicted, txn.core);
                let mut follow = std::mem::take(&mut self.follow_scratch);
                self.strategy
                    .on_read_data(line, predicted, core as u8, &self.backend, &mut follow);
                if follow.is_empty() {
                    self.finish_txn(txn_id);
                } else {
                    let n = follow.len() as u32;
                    if let Some(t) = self.txns.get_mut(&txn_id) {
                        t.state = TxnState::WaitFollow { remaining: n };
                    }
                    for &f in &follow {
                        self.submit_spec(f, 0, Some(txn_id));
                    }
                }
                self.follow_scratch = follow;
            }
            TxnState::WaitFollow { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.finish_txn(txn_id);
                }
            }
        }
    }

    fn finish_txn(&mut self, txn_id: u64) {
        // A finishing transaction frees MSHRs and clears its pending
        // line: stalled issue passes must re-run.
        self.issue_env_gen += 1;
        let txn = self.txns.remove(&txn_id).expect("transaction exists");
        if self.pending_lines.get(&txn.line) == Some(&txn_id) {
            self.pending_lines.remove(&txn.line);
        }
        for (core, counted) in txn.waiters.iter() {
            // Invalidate the event engine's cached wake for exactly the
            // cores this transaction touches: a ready slot or a freed MSHR
            // can unblock them. No other core's gates can open here — the
            // LLC fill happened at issue time, and per-core footprints are
            // disjoint.
            self.core_wake[core] = 0;
            if counted {
                self.cores[core].complete_txn(txn_id);
            } else {
                self.cores[core].mark_txn_ready(txn_id);
            }
        }
    }

    fn report_measured(&self, name: &str, measured_base: u64) -> RunReport {
        RunReport {
            name: name.to_string(),
            strategy: self.cfg.strategy,
            bus_cycles: self.mem.stats().cycles,
            instructions: self.cores.iter().map(|c| c.retired).sum::<u64>() - measured_base,
            mem: self.mem.stats(),
            energy: self.mem.energy(),
            llc: self.llc.stats(),
            strategy_stats: self.strategy.stats(),
            copr: self.strategy.copr_stats(),
            blem: self.strategy.blem_stats(),
            ra: self.strategy.ra_stats(),
            metadata_cache: self.strategy.metadata_cache_stats(),
            cram: self.strategy.cram_stats(),
            integrity: self.strategy.integrity_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetadataStrategyKind;

    fn quick_cfg(strategy: MetadataStrategyKind) -> SimConfig {
        SimConfig::table2_baseline()
            .with_strategy(strategy)
            .with_instructions(30_000, 5_000)
    }

    #[test]
    fn baseline_run_completes_and_reports() {
        let r = System::run_rate_mode(&quick_cfg(MetadataStrategyKind::Baseline), Profile::stream(), 1);
        assert!(r.total_instructions() >= 8 * 30_000);
        assert!(r.bus_cycles > 0);
        assert!(r.ipc() > 0.0);
        assert!(r.mem.demand_reads > 0, "stream misses the LLC");
        assert_eq!(r.mem.metadata_reads, 0, "baseline has no metadata");
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn attache_run_predicts_and_compresses() {
        let r = System::run_rate_mode(&quick_cfg(MetadataStrategyKind::Attache), Profile::stream(), 1);
        let copr = r.copr.expect("attache reports copr");
        assert!(copr.predictions > 0);
        assert!(copr.accuracy() > 0.5, "accuracy {}", copr.accuracy());
        assert!(r.compressed_read_fraction() > 0.3);
        assert_eq!(r.mem.metadata_reads, 0, "attache never reads metadata");
    }

    #[test]
    fn metadata_cache_run_generates_installs() {
        let r = System::run_rate_mode(
            &quick_cfg(MetadataStrategyKind::MetadataCache),
            Profile::rand(),
            1,
        );
        assert!(r.mem.metadata_reads > 0, "random traffic misses the metadata cache");
        let (stats, traffic) = r.metadata_cache.expect("reports metadata cache");
        assert!(stats.accesses > 0);
        assert!(traffic.install_reads > 0);
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        let cfg = quick_cfg(MetadataStrategyKind::Attache);
        let a = System::run_rate_mode(&cfg, Profile::stream(), 7);
        let b = System::run_rate_mode(&cfg, Profile::stream(), 7);
        assert_eq!(a.bus_cycles, b.bus_cycles);
        assert_eq!(a.mem.demand_reads, b.mem.demand_reads);
        let c = System::run_rate_mode(&cfg, Profile::stream(), 8);
        assert_ne!(a.bus_cycles, c.bus_cycles);
    }

    #[test]
    fn oracle_beats_baseline_on_compressible_stream() {
        let base = System::run_rate_mode(&quick_cfg(MetadataStrategyKind::Baseline), Profile::stream(), 3);
        let ideal = System::run_rate_mode(&quick_cfg(MetadataStrategyKind::Oracle), Profile::stream(), 3);
        let speedup = ideal.speedup_vs(&base);
        assert!(
            speedup > 1.02,
            "ideal compression should beat baseline, got {speedup:.3}"
        );
    }

    #[test]
    fn mix_runs_one_profile_per_core() {
        let mix = attache_workloads::mixes().remove(0);
        let cfg = quick_cfg(MetadataStrategyKind::Attache).with_instructions(10_000, 2_000);
        let r = System::run_mix(&cfg, &mix, 5);
        assert!(r.total_instructions() >= 8 * 10_000);
    }
}
