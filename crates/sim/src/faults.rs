//! Deterministic fault injection: the chaos harness for BLEM/RA
//! recovery paths.
//!
//! Attaché's correctness story rests on rare paths — CID collisions,
//! XID displacement into the Replacement Area, scrambler key
//! sensitivity — that randomized traffic only reaches probabilistically.
//! This module reaches them on purpose: a seeded [`FaultPlan`]
//! (`SimConfig::with_faults` / `ATTACHE_FAULTS=<spec>`) schedules
//! targeted perturbations of the stored state, and the mirror oracle
//! plus the trace ring become the ground truth for which faults the
//! strategy *absorbs* (overwritten before anyone reads the corruption,
//! or provably decode-invisible) versus *surfaces* (a decoded read
//! diverges from the shadow copy and is attributed to its fault class).
//!
//! # Fault classes
//!
//! | class           | target                         | expected outcome          |
//! |-----------------|--------------------------------|---------------------------|
//! | `line_flip`     | one bit of a stored image body | detected or absorbed      |
//! | `cid_forge`     | header forged to `CID‖XID=1`   | detected (false collision)|
//! | `cid_erase`     | CID bit of a colliding header  | detected (lost collision) |
//! | `ra_corrupt`    | a displaced bit in the RA      | detected                  |
//! | `mc_invalidate` | a resident Metadata-Cache line | absorbed (timing only)    |
//! | `key_swap`      | the scrambler key register     | detected per stale line   |
//! | `bus_derate`    | read-queue capacity window     | absorbed (timing only)    |
//!
//! Under the Cram strategy the metadata-bearing state is the in-line
//! marker rather than a CID register, so the classes target the
//! analogous structures: `cid_forge` forges the *marker word* onto a
//! verbatim line (a false compression the fault-tolerant decode chain
//! must degrade through), `cid_erase` scribbles on an escape-led line's
//! first word so the parked bytes are never restored, `ra_corrupt`
//! flips a parked byte in the exception region, and `key_swap` stales
//! every *compressed* payload (verbatim lines carry no scrambling and
//! absorb it). `mc_invalidate` has no target and is skipped.
//!
//! Every injection increments `injected` for its class; its eventual
//! fate lands in exactly one of `detected` (mirror mismatch on a decoded
//! read), `absorbed` (overwritten first, or provably decode-invisible at
//! injection time), or `undetected` (a decoded read of a corrupted line
//! that nobody checked — the mirror was off — or that passed the check;
//! the CI gate asserts this stays zero with the mirror on). Corruptions
//! never read again by run end stay *latent*: `injected` minus the other
//! three. `skipped` counts scheduled injections that found no eligible
//! target; they still consume the event budget so both engines stay in
//! lockstep. Fault counters are cumulative over the whole run — they are
//! deliberately **not** reset at the warm-up boundary, because a fault
//! injected during warm-up can surface in the measured region.
//!
//! All targeting decisions draw from a dedicated
//! [`attache_testkit::Gen`] stream and depend only on model state, which
//! is bit-identical across the cycle and event engines at any given bus
//! tick — so with a fixed plan both engines inject, detect, and absorb
//! identically (asserted by `crates/sim/tests/faults.rs`).

use attache_core::fasthash::FastMap;
use std::collections::{HashMap, HashSet};
use std::fmt;

use attache_cache::MetadataCache;
use attache_core::blem::{Blem, StoredImage};
use attache_core::cram::Cram;
use attache_testkit::Gen;

/// Scheduled injections probe at most this many candidate lines before
/// giving up as `skipped` (keeps a tick's worst-case work bounded).
const MAX_PROBES: usize = 64;

/// The kinds of perturbation the injector knows how to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one random bit in a stored image's body (past the header).
    LineFlip,
    /// Rewrite a non-colliding uncompressed header to `CID‖XID=1`,
    /// forging a collision the write path never recorded.
    CidForge,
    /// Flip a CID bit of a genuinely colliding header, so the read path
    /// no longer consults the Replacement Area.
    CidErase,
    /// Flip a displaced bit inside the Replacement Area.
    RaCorrupt,
    /// Drop a resident Metadata-Cache line (performance-only).
    McInvalidate,
    /// Swap the scrambler key register mid-run.
    KeySwap,
    /// Temporarily cap the DRAM read queues (timing-only).
    BusDerate,
}

impl FaultClass {
    /// Every class, in the fixed order used for stats indexing and
    /// metric export.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::LineFlip,
        FaultClass::CidForge,
        FaultClass::CidErase,
        FaultClass::RaCorrupt,
        FaultClass::McInvalidate,
        FaultClass::KeySwap,
        FaultClass::BusDerate,
    ];

    /// The stable key used in `ATTACHE_FAULTS=classes=...` specs and in
    /// metric names (`faults.<key>.*`).
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::LineFlip => "line_flip",
            FaultClass::CidForge => "cid_forge",
            FaultClass::CidErase => "cid_erase",
            FaultClass::RaCorrupt => "ra_corrupt",
            FaultClass::McInvalidate => "mc_invalidate",
            FaultClass::KeySwap => "key_swap",
            FaultClass::BusDerate => "bus_derate",
        }
    }

    fn from_key(key: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.key() == key)
    }

    fn index(self) -> usize {
        FaultClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("ALL contains every class")
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Per-class injection/outcome counters. See the module docs for the
/// lifecycle; `injected >= detected + absorbed + undetected` always
/// holds (the remainder is latent at run end), and `skipped` counts
/// scheduled events that found no eligible target.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Perturbations actually applied.
    pub injected: u64,
    /// Surfaced as a mirror mismatch on a decoded read and attributed
    /// here.
    pub detected: u64,
    /// Overwritten before any read saw them, or provably
    /// decode-invisible at injection time.
    pub absorbed: u64,
    /// A corrupted line's decode went unchecked (mirror off) or passed
    /// the check; the CI fault stage asserts zero with the mirror on.
    pub undetected: u64,
    /// Scheduled injections with no eligible target.
    pub skipped: u64,
}

/// Counters for all classes, indexed by [`FaultClass::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    counters: [FaultCounters; FaultClass::ALL.len()],
}

impl FaultStats {
    /// The counters for one class.
    pub fn get(&self, class: FaultClass) -> FaultCounters {
        self.counters[class.index()]
    }

    fn get_mut(&mut self, class: FaultClass) -> &mut FaultCounters {
        &mut self.counters[class.index()]
    }

    /// Iterates `(class, counters)` in the fixed export order.
    pub fn iter(&self) -> impl Iterator<Item = (FaultClass, FaultCounters)> + '_ {
        FaultClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Sum of `injected` over all classes.
    pub fn total_injected(&self) -> u64 {
        self.counters.iter().map(|c| c.injected).sum()
    }

    /// Sum of `undetected` over all classes — the number the CI fault
    /// stage requires to be zero when the mirror oracle is on.
    pub fn total_undetected(&self) -> u64 {
        self.counters.iter().map(|c| c.undetected).sum()
    }

    /// The accounting invariant, checkable at any instant: every outcome
    /// was once an injection, so `injected >= detected + absorbed +
    /// undetected` per class (the remainder is still latent). `skipped`
    /// is deliberately *outside* the inequality — it counts scheduled
    /// events that never applied a perturbation, not injections with a
    /// pending fate. Returns the first violating class, `None` when the
    /// books balance.
    pub fn accounting_violation(&self) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|&class| {
            let c = self.get(class);
            c.injected < c.detected + c.absorbed + c.undetected
        })
    }
}

/// A seeded fault-injection schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injector's dedicated generator stream.
    pub seed: u64,
    /// Mean spacing between injections in bus cycles (each gap is drawn
    /// uniformly from `1..=2*period`).
    pub period: u64,
    /// Enabled classes (injection draws uniformly among them).
    pub classes: Vec<FaultClass>,
    /// Optional cap on the number of scheduled injection events.
    pub max: Option<u64>,
}

impl FaultPlan {
    /// The default mean injection spacing in bus cycles.
    pub const DEFAULT_PERIOD: u64 = 5_000;

    /// A plan with all classes enabled at the default period.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            period: Self::DEFAULT_PERIOD,
            classes: FaultClass::ALL.to_vec(),
            max: None,
        }
    }

    /// Parses an `ATTACHE_FAULTS` spec.
    ///
    /// Accepted forms: the empty string or `0` (⇒ `Ok(None)`, faults
    /// disabled); a bare integer (⇒ that seed with defaults); or a
    /// comma-separated `key=value` list with keys `seed`, `period`,
    /// `classes` (a `+`-separated list of class keys) and `max`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs; callers on
    /// the env path warn and disable rather than panic.
    pub fn parse(spec: &str) -> Result<Option<FaultPlan>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" {
            return Ok(None);
        }
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(Some(FaultPlan::new(seed)));
        }
        let mut plan = FaultPlan::new(0);
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("seed={value:?} is not a u64"))?;
                }
                "period" => {
                    let p: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("period={value:?} is not a u64"))?;
                    if p == 0 {
                        return Err("period must be >= 1".to_owned());
                    }
                    plan.period = p;
                }
                "classes" => {
                    let mut classes = Vec::new();
                    for name in value.split('+') {
                        let class = FaultClass::from_key(name.trim()).ok_or_else(|| {
                            format!(
                                "unknown fault class {name:?} (valid: {})",
                                FaultClass::ALL.map(FaultClass::key).join(", ")
                            )
                        })?;
                        if !classes.contains(&class) {
                            classes.push(class);
                        }
                    }
                    if classes.is_empty() {
                        return Err("classes= must name at least one class".to_owned());
                    }
                    plan.classes = classes;
                }
                "max" => {
                    plan.max = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("max={value:?} is not a u64"))?,
                    );
                }
                other => return Err(format!("unknown fault-spec key {other:?}")),
            }
        }
        Ok(Some(plan))
    }

    /// Reads `ATTACHE_FAULTS` per call (not cached, so tests can toggle
    /// it). A malformed spec warns on stderr and disables injection — a
    /// typo must not panic a sweep, and it must not silently inject
    /// either.
    pub fn from_env() -> Option<FaultPlan> {
        match std::env::var("ATTACHE_FAULTS") {
            Ok(spec) => match FaultPlan::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!(
                        "[attache-sim] warning: ATTACHE_FAULTS={spec:?} is invalid ({e}); \
                         fault injection disabled"
                    );
                    None
                }
            },
            Err(_) => None,
        }
    }
}

/// The model state the injector may perturb on one tick, borrowed from
/// the strategy (split-borrowed so the strategy's other fields stay
/// usable).
pub struct FaultTargets<'a> {
    /// The stored-image map (Attaché's / Cram's DRAM contents).
    pub images: &'a mut FastMap<u64, StoredImage>,
    /// The BLEM engine, when the strategy has one.
    pub blem: Option<&'a mut Blem>,
    /// The CRAM implicit-marker engine, when the strategy has one.
    pub cram: Option<&'a mut Cram>,
    /// The Metadata-Cache, when the strategy has one.
    pub meta_cache: Option<&'a mut MetadataCache>,
}

/// A side effect the `System` must apply outside the strategy (the
/// injector cannot reach the DRAM model through [`FaultTargets`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Cap every channel's read queue at `cap` slots until bus cycle
    /// `until`.
    DerateReads {
        /// Effective read-queue capacity during the window.
        cap: usize,
        /// Absolute bus cycle at which the cap lifts.
        until: u64,
    },
}

/// What one injection tick produced.
#[derive(Debug, Default)]
pub struct FaultOutcome {
    /// Actions for the `System` to apply (DRAM-level faults).
    pub actions: Vec<FaultAction>,
    /// Trace-ring event strings (pushed only when a ring is configured).
    pub events: Vec<String>,
}

/// The per-run injector: owns the schedule, the target bookkeeping, and
/// the per-class counters. Constructed only when a [`FaultPlan`] is
/// configured — with faults off, no injector exists and the simulator's
/// behavior is bit-identical to a build without this module.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    gen: Gen,
    /// Absolute bus cycle of the next scheduled injection (`u64::MAX`
    /// once the event budget is exhausted).
    next_tick: u64,
    /// Scheduled injection events so far (skipped ones included — they
    /// consume budget so the schedule stays engine-independent).
    events_fired: u64,
    stats: FaultStats,
    /// Lines carrying an undetected corruption, by the class that
    /// corrupted them first (later faults on the same line do not
    /// re-attribute it).
    pending: HashMap<u64, FaultClass>,
    /// Written-back lines in insertion order (deterministic targeting;
    /// `HashMap` iteration order would diverge between runs).
    written: Vec<u64>,
    written_set: HashSet<u64>,
    /// Lines whose latest write was a CID collision, in insertion order.
    colliding: Vec<u64>,
    colliding_set: HashSet<u64>,
}

impl FaultInjector {
    /// Creates an injector and arms the first injection tick.
    pub fn new(plan: FaultPlan) -> Self {
        let mut gen = Gen::new(plan.seed);
        let next_tick = 1 + gen.below(2 * plan.period.max(1));
        Self {
            plan,
            gen,
            next_tick,
            events_fired: 0,
            stats: FaultStats::default(),
            pending: HashMap::new(),
            written: Vec::new(),
            written_set: HashSet::new(),
            colliding: Vec::new(),
            colliding_set: HashSet::new(),
        }
    }

    /// Per-class counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The next scheduled injection tick, for the event engine's horizon
    /// clamp (`u64::MAX` once the budget is spent).
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// Debug-build check of [`FaultStats::accounting_violation`] after
    /// every counter mutation: an outcome recorded without a matching
    /// injection is a classification bug, caught at the mutation that
    /// introduced it rather than at run end.
    fn debug_check_accounting(&self) {
        debug_assert!(
            self.stats.accounting_violation().is_none(),
            "fault accounting violated for class {:?}: {:?}",
            self.stats.accounting_violation(),
            self.stats
        );
    }

    /// Bookkeeping hook for every strategy write: tracks targetable
    /// lines and absorbs any pending corruption (the corrupted image was
    /// just overwritten, so nothing can ever read it).
    pub fn note_write(&mut self, line: u64, collision: bool) {
        if let Some(class) = self.pending.remove(&line) {
            self.stats.get_mut(class).absorbed += 1;
            self.debug_check_accounting();
        }
        if self.written_set.insert(line) {
            self.written.push(line);
        }
        if collision {
            if self.colliding_set.insert(line) {
                self.colliding.push(line);
            }
        } else if self.colliding_set.remove(&line) {
            self.colliding.retain(|&l| l != line);
        }
    }

    /// A decoded read of `line` failed its mirror check. Returns whether
    /// the mismatch is attributable to an injected fault (in which case
    /// it is counted as detected and the caller recovers instead of
    /// panicking).
    pub fn note_mismatch(&mut self, line: u64) -> bool {
        match self.pending.remove(&line) {
            Some(class) => {
                self.stats.get_mut(class).detected += 1;
                self.debug_check_accounting();
                true
            }
            None => false,
        }
    }

    /// A decoded read of `line` passed its mirror check. A pending
    /// corruption that survives a *passing* check was not actually
    /// corrupting the decode — count it as undetected (this is the
    /// safety net for classification bugs, not an expected path).
    pub fn note_clean_read(&mut self, line: u64) {
        if let Some(class) = self.pending.remove(&line) {
            self.stats.get_mut(class).undetected += 1;
            self.debug_check_accounting();
        }
    }

    /// A decoded read of `line` happened with no mirror to check it.
    /// Any pending corruption there is now irrecoverably silent.
    pub fn note_unverified_read(&mut self, line: u64) {
        if let Some(class) = self.pending.remove(&line) {
            self.stats.get_mut(class).undetected += 1;
            self.debug_check_accounting();
        }
    }

    /// Runs the injection schedule for bus cycle `now`. Returns `None`
    /// when no injection is due.
    pub fn tick(&mut self, now: u64, targets: &mut FaultTargets<'_>) -> Option<FaultOutcome> {
        if now < self.next_tick {
            return None;
        }
        let class = self.plan.classes[self.gen.below(self.plan.classes.len() as u64) as usize];
        let mut out = FaultOutcome::default();
        self.inject(class, now, targets, &mut out);
        self.events_fired += 1;
        self.next_tick = if self.plan.max.is_some_and(|m| self.events_fired >= m) {
            u64::MAX
        } else {
            now + 1 + self.gen.below(2 * self.plan.period.max(1))
        };
        Some(out)
    }

    fn inject(
        &mut self,
        class: FaultClass,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) {
        let injected = match class {
            FaultClass::LineFlip => self.inject_line_flip(now, targets, out),
            FaultClass::CidForge => self.inject_cid_forge(now, targets, out),
            FaultClass::CidErase => self.inject_cid_erase(now, targets, out),
            FaultClass::RaCorrupt => self.inject_ra_corrupt(now, targets, out),
            FaultClass::McInvalidate => self.inject_mc_invalidate(now, targets, out),
            FaultClass::KeySwap => self.inject_key_swap(now, targets, out),
            FaultClass::BusDerate => self.inject_bus_derate(now, out),
        };
        if !injected {
            self.stats.get_mut(class).skipped += 1;
        }
        self.debug_check_accounting();
    }

    /// Draws a start index and linearly probes up to [`MAX_PROBES`]
    /// candidates of `list`, returning the first eligible line.
    fn probe(gen: &mut Gen, list: &[u64], mut eligible: impl FnMut(u64) -> bool) -> Option<u64> {
        if list.is_empty() {
            return None;
        }
        let n = list.len();
        let start = gen.below(n as u64) as usize;
        (0..n.min(MAX_PROBES))
            .map(|k| list[(start + k) % n])
            .find(|&line| eligible(line))
    }

    /// Marks `line` pending for `class` unless an earlier fault already
    /// owns it (first fault wins the attribution).
    fn mark_pending(&mut self, line: u64, class: FaultClass) {
        self.pending.entry(line).or_insert(class);
    }

    fn inject_line_flip(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(blem) = targets.blem.as_deref_mut() else {
            return self.inject_line_flip_cram(now, targets, out);
        };
        let images = &mut *targets.images;
        // A line already carrying an outstanding fault is ineligible: a
        // second flip could cancel the first (restoring the data while
        // the line stays pending), which would misread as undetected.
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.written, |l| {
            !pending.contains_key(&l) && images.contains_key(&l)
        }) else {
            return false;
        };
        let image = images.get(&line).expect("probe checked presence");
        let before = blem.peek_line(line, image);
        let mut mutated = image.clone();
        // Flip one bit in the body, past the 2-byte header: header
        // perturbations are their own classes (cid_forge / cid_erase).
        let (bytes, span): (&mut [u8], u64) = match &mut mutated {
            StoredImage::Compressed(b) => (&mut b[..], 30),
            StoredImage::Uncompressed(b) => (&mut b[..], 62),
        };
        let byte = 2 + self.gen.below(span) as usize;
        let bit = self.gen.below(8) as u32;
        bytes[byte] ^= 1 << bit;
        let after = blem.peek_line(line, &mutated);
        let absorbed = after == before;
        images.insert(line, mutated);
        self.stats.get_mut(FaultClass::LineFlip).injected += 1;
        if absorbed {
            // Decode-invisible (e.g. a flip in a compressed image's pad
            // region): classified absorbed at injection, or the
            // zero-undetected gate would misfire.
            self.stats.get_mut(FaultClass::LineFlip).absorbed += 1;
        } else {
            self.mark_pending(line, FaultClass::LineFlip);
        }
        out.events.push(format!(
            "fault line_flip @{now}: line {line:#x} byte {byte} bit {bit}{}",
            if absorbed { " (absorbed)" } else { "" }
        ));
        true
    }

    /// The Cram arm of `line_flip`: same body-bit flip, with the CRAM
    /// engine classifying the corruption as absorbed or pending.
    fn inject_line_flip_cram(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(cram) = targets.cram.as_deref_mut() else {
            return false;
        };
        let images = &mut *targets.images;
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.written, |l| {
            !pending.contains_key(&l) && images.contains_key(&l)
        }) else {
            return false;
        };
        let image = images.get(&line).expect("probe checked presence");
        let before = cram.peek_line(line, image);
        let mut mutated = image.clone();
        // Flip one bit in the body, past the 2-byte marker/escape word:
        // first-word perturbations are their own classes.
        let (bytes, span): (&mut [u8], u64) = match &mut mutated {
            StoredImage::Compressed(b) => (&mut b[..], 30),
            StoredImage::Uncompressed(b) => (&mut b[..], 62),
        };
        let byte = 2 + self.gen.below(span) as usize;
        let bit = self.gen.below(8) as u32;
        bytes[byte] ^= 1 << bit;
        let after = cram.peek_line(line, &mutated);
        let absorbed = after == before;
        images.insert(line, mutated);
        self.stats.get_mut(FaultClass::LineFlip).injected += 1;
        if absorbed {
            self.stats.get_mut(FaultClass::LineFlip).absorbed += 1;
        } else {
            self.mark_pending(line, FaultClass::LineFlip);
        }
        out.events.push(format!(
            "fault line_flip @{now}: line {line:#x} byte {byte} bit {bit}{}",
            if absorbed { " (absorbed)" } else { "" }
        ));
        true
    }

    fn inject_cid_forge(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(blem) = targets.blem.as_deref_mut() else {
            return self.inject_marker_forge_cram(now, targets, out);
        };
        let images = &mut *targets.images;
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.written, |l| {
            !pending.contains_key(&l)
                && matches!(images.get(&l), Some(img @ StoredImage::Uncompressed(_))
                    if !blem.inspect(&img.first_half()).cid_matches)
        }) else {
            return false;
        };
        let Some(StoredImage::Uncompressed(bytes)) = images.get_mut(&line) else {
            unreachable!("probe checked the image kind");
        };
        // Forge `CID‖…‖XID=1`: the read path now takes the collision
        // branch and restores a displaced bit that was never parked.
        let cid = blem.cid();
        let header = (cid.value() << (16 - cid.config().cid_bits)) | 1;
        bytes[..2].copy_from_slice(&header.to_be_bytes());
        self.stats.get_mut(FaultClass::CidForge).injected += 1;
        self.mark_pending(line, FaultClass::CidForge);
        out.events
            .push(format!("fault cid_forge @{now}: line {line:#x} header {header:#06x}"));
        true
    }

    /// The Cram arm of `cid_forge`: forge the *marker word* onto a
    /// verbatim uncompressed line, so the read path believes it is
    /// compressed and must degrade through the fault-tolerant decode
    /// chain.
    fn inject_marker_forge_cram(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(cram) = targets.cram.as_deref_mut() else {
            return false;
        };
        let images = &mut *targets.images;
        let codec = cram.codec();
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.written, |l| {
            !pending.contains_key(&l)
                && matches!(images.get(&l), Some(StoredImage::Uncompressed(b))
                    if !codec.collides(u16::from_be_bytes([b[0], b[1]])))
        }) else {
            return false;
        };
        let Some(StoredImage::Uncompressed(bytes)) = images.get_mut(&line) else {
            unreachable!("probe checked the image kind");
        };
        let marker = codec.encode(attache_compress::Algorithm::Bdi);
        bytes[..2].copy_from_slice(&marker.to_be_bytes());
        self.stats.get_mut(FaultClass::CidForge).injected += 1;
        self.mark_pending(line, FaultClass::CidForge);
        out.events
            .push(format!("fault cid_forge @{now}: line {line:#x} marker {marker:#06x}"));
        true
    }

    fn inject_cid_erase(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(blem) = targets.blem.as_deref_mut() else {
            return self.inject_escape_erase_cram(now, targets, out);
        };
        let images = &mut *targets.images;
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.colliding, |l| {
            !pending.contains_key(&l)
                && matches!(images.get(&l), Some(img @ StoredImage::Uncompressed(_))
                    if blem.inspect(&img.first_half()).cid_matches)
        }) else {
            return false;
        };
        let Some(StoredImage::Uncompressed(bytes)) = images.get_mut(&line) else {
            unreachable!("probe checked the image kind");
        };
        // Flip the header's top bit — inside the CID field for every
        // supported width, so the match is guaranteed destroyed and the
        // read path skips the RA restore it needed.
        bytes[0] ^= 0x80;
        self.stats.get_mut(FaultClass::CidErase).injected += 1;
        self.mark_pending(line, FaultClass::CidErase);
        out.events
            .push(format!("fault cid_erase @{now}: line {line:#x}"));
        true
    }

    /// The Cram arm of `cid_erase`: flip a low bit of an escape-led
    /// line's first word. The word now classifies as plain, so the read
    /// path skips the exception-region restore it needed — the parked
    /// bytes are lost.
    fn inject_escape_erase_cram(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(cram) = targets.cram.as_deref_mut() else {
            return false;
        };
        let images = &mut *targets.images;
        let escape = cram.codec().escape_word();
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.colliding, |l| {
            !pending.contains_key(&l)
                && matches!(images.get(&l), Some(StoredImage::Uncompressed(b))
                    if u16::from_be_bytes([b[0], b[1]]) == escape)
        }) else {
            return false;
        };
        let Some(StoredImage::Uncompressed(bytes)) = images.get_mut(&line) else {
            unreachable!("probe checked the image kind");
        };
        // Bit 1 of the first word: distinct from the marker (top-bit
        // distance) and from the escape itself, so the result always
        // classifies as a plain line.
        bytes[1] ^= 0x02;
        self.stats.get_mut(FaultClass::CidErase).injected += 1;
        self.mark_pending(line, FaultClass::CidErase);
        out.events
            .push(format!("fault cid_erase @{now}: line {line:#x} (escape erased)"));
        true
    }

    fn inject_ra_corrupt(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(blem) = targets.blem.as_deref_mut() else {
            return self.inject_exception_corrupt_cram(now, targets, out);
        };
        let images = &mut *targets.images;
        // The fault must land on a line that will *consult* the RA on
        // its next read: a currently-colliding stored image. Lines with
        // an outstanding fault are ineligible — a second RA flip on the
        // same line would restore the bit and misread as undetected.
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.colliding, |l| {
            !pending.contains_key(&l)
                && matches!(images.get(&l), Some(img @ StoredImage::Uncompressed(_))
                    if blem.inspect(&img.first_half()).cid_matches)
        }) else {
            return false;
        };
        if !blem.fault_flip_ra_bit(line) {
            return false;
        }
        self.stats.get_mut(FaultClass::RaCorrupt).injected += 1;
        self.mark_pending(line, FaultClass::RaCorrupt);
        out.events
            .push(format!("fault ra_corrupt @{now}: line {line:#x}"));
        true
    }

    /// The Cram arm of `ra_corrupt`: flip a parked byte in the exception
    /// region, so the next escape-led read restores corrupted bytes.
    fn inject_exception_corrupt_cram(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(cram) = targets.cram.as_deref_mut() else {
            return false;
        };
        let images = &mut *targets.images;
        let escape = cram.codec().escape_word();
        let pending = &self.pending;
        let Some(line) = Self::probe(&mut self.gen, &self.colliding, |l| {
            !pending.contains_key(&l)
                && cram.has_exception(l)
                && matches!(images.get(&l), Some(StoredImage::Uncompressed(b))
                    if u16::from_be_bytes([b[0], b[1]]) == escape)
        }) else {
            return false;
        };
        if !cram.fault_flip_exception_bit(line) {
            return false;
        }
        self.stats.get_mut(FaultClass::RaCorrupt).injected += 1;
        self.mark_pending(line, FaultClass::RaCorrupt);
        out.events
            .push(format!("fault ra_corrupt @{now}: line {line:#x} (exception bytes)"));
        true
    }

    fn inject_mc_invalidate(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(mc) = targets.meta_cache.as_deref_mut() else {
            return false;
        };
        let Some(line) = Self::probe(&mut self.gen, &self.written, |l| {
            mc.fault_invalidate_covering(l)
        }) else {
            return false;
        };
        // Dropping a (possibly dirty) metadata line costs a re-install
        // on the next lookup but never corrupts data: injected and
        // absorbed in the same breath.
        let c = self.stats.get_mut(FaultClass::McInvalidate);
        c.injected += 1;
        c.absorbed += 1;
        out.events
            .push(format!("fault mc_invalidate @{now}: covering line {line:#x}"));
        true
    }

    fn inject_key_swap(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(blem) = targets.blem.as_deref_mut() else {
            return self.inject_key_swap_cram(now, targets, out);
        };
        let images = &mut *targets.images;
        if images.is_empty() {
            return false;
        }
        // Classify per stored line: decode every image under the old key
        // first, swap, then re-decode. Lines already pending keep their
        // first attribution.
        let lines: Vec<u64> = self
            .written
            .iter()
            .copied()
            .filter(|l| images.contains_key(l) && !self.pending.contains_key(l))
            .collect();
        let before: Vec<(u64, attache_compress::Block)> = lines
            .iter()
            .map(|&l| (l, blem.peek_line(l, &images[&l])))
            .collect();
        let new_seed = self.gen.next_u64();
        blem.swap_scrambler_key(new_seed);
        let mut corrupted = 0u64;
        for (line, old) in before {
            let c = self.stats.get_mut(FaultClass::KeySwap);
            c.injected += 1;
            if blem.peek_line(line, &images[&line]) == old {
                c.absorbed += 1;
            } else {
                corrupted += 1;
                self.mark_pending(line, FaultClass::KeySwap);
            }
        }
        out.events.push(format!(
            "fault key_swap @{now}: {corrupted} stale line(s) of {}",
            lines.len()
        ));
        true
    }

    /// The Cram arm of `key_swap`: only compressed payloads are
    /// scrambled (verbatim lines must keep their natural bytes for the
    /// marker comparison), so a swapped key stales exactly the
    /// marker-led lines.
    fn inject_key_swap_cram(
        &mut self,
        now: u64,
        targets: &mut FaultTargets<'_>,
        out: &mut FaultOutcome,
    ) -> bool {
        let Some(cram) = targets.cram.as_deref_mut() else {
            return false;
        };
        let images = &mut *targets.images;
        if images.is_empty() {
            return false;
        }
        let lines: Vec<u64> = self
            .written
            .iter()
            .copied()
            .filter(|l| images.contains_key(l) && !self.pending.contains_key(l))
            .collect();
        let before: Vec<(u64, attache_compress::Block)> = lines
            .iter()
            .map(|&l| (l, cram.peek_line(l, &images[&l])))
            .collect();
        let new_seed = self.gen.next_u64();
        cram.swap_scrambler_key(new_seed);
        let mut corrupted = 0u64;
        for (line, old) in before {
            let c = self.stats.get_mut(FaultClass::KeySwap);
            c.injected += 1;
            if cram.peek_line(line, &images[&line]) == old {
                c.absorbed += 1;
            } else {
                corrupted += 1;
                self.mark_pending(line, FaultClass::KeySwap);
            }
        }
        out.events.push(format!(
            "fault key_swap @{now}: {corrupted} stale line(s) of {}",
            lines.len()
        ));
        true
    }

    fn inject_bus_derate(&mut self, now: u64, out: &mut FaultOutcome) -> bool {
        let period = self.plan.period.max(1);
        let cap = 1 + self.gen.below(3) as usize;
        let dur = period + self.gen.below(period);
        out.actions.push(FaultAction::DerateReads {
            cap,
            until: now + dur,
        });
        // Timing-only, data untouched: injected and absorbed at once.
        let c = self.stats.get_mut(FaultClass::BusDerate);
        c.injected += 1;
        c.absorbed += 1;
        out.events.push(format!(
            "fault bus_derate @{now}: read cap {cap} for {dur} cycles"
        ));
        true
    }
}

/// The panic payload thrown by the cooperative tick-budget watchdog
/// (`SimConfig::with_tick_budget` / `ATTACHE_JOB_TICK_BUDGET`). The
/// resilient grid executor downcasts unwind payloads to this type to
/// classify a job as timed out rather than crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickBudgetExceeded {
    /// The configured budget in bus cycles.
    pub budget: u64,
    /// The bus cycle at which the run was cut off.
    pub now: u64,
}

impl fmt::Display for TickBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation exceeded its tick budget ({} bus cycles allowed, at cycle {})",
            self.budget, self.now
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_disabled_forms() {
        assert_eq!(FaultPlan::parse("").unwrap(), None);
        assert_eq!(FaultPlan::parse("0").unwrap(), None);
        assert_eq!(FaultPlan::parse("  ").unwrap(), None);
    }

    #[test]
    fn parse_bare_seed() {
        let plan = FaultPlan::parse("1234").unwrap().unwrap();
        assert_eq!(plan.seed, 1234);
        assert_eq!(plan.period, FaultPlan::DEFAULT_PERIOD);
        assert_eq!(plan.classes, FaultClass::ALL.to_vec());
        assert_eq!(plan.max, None);
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("seed=7,period=100,classes=line_flip+ra_corrupt,max=3")
            .unwrap()
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.period, 100);
        assert_eq!(plan.classes, vec![FaultClass::LineFlip, FaultClass::RaCorrupt]);
        assert_eq!(plan.max, Some(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("period=0").is_err());
        assert!(FaultPlan::parse("classes=nope").is_err());
        assert!(FaultPlan::parse("wat=1").is_err());
        assert!(FaultPlan::parse("justwords").is_err());
        assert!(FaultPlan::parse("classes=").is_err());
    }

    #[test]
    fn class_keys_roundtrip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_key(class.key()), Some(class));
        }
        assert_eq!(FaultClass::from_key("bogus"), None);
    }

    #[test]
    fn injector_schedule_is_deterministic() {
        let a = FaultInjector::new(FaultPlan::new(9));
        let b = FaultInjector::new(FaultPlan::new(9));
        assert_eq!(a.next_tick(), b.next_tick());
        assert!(a.next_tick() >= 1);
        assert!(a.next_tick() <= 2 * FaultPlan::DEFAULT_PERIOD);
    }

    #[test]
    fn write_absorbs_pending_corruption() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        inj.mark_pending(42, FaultClass::LineFlip);
        inj.stats.get_mut(FaultClass::LineFlip).injected += 1;
        inj.note_write(42, false);
        let c = inj.stats().get(FaultClass::LineFlip);
        assert_eq!(c.absorbed, 1);
        assert_eq!(c.detected, 0);
    }

    #[test]
    fn mismatch_attributes_to_first_fault() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        inj.stats.get_mut(FaultClass::RaCorrupt).injected += 1;
        inj.stats.get_mut(FaultClass::LineFlip).injected += 1;
        inj.mark_pending(7, FaultClass::RaCorrupt);
        inj.mark_pending(7, FaultClass::LineFlip); // second fault: ignored
        assert!(inj.note_mismatch(7));
        assert_eq!(inj.stats().get(FaultClass::RaCorrupt).detected, 1);
        assert_eq!(inj.stats().get(FaultClass::LineFlip).detected, 0);
        assert!(!inj.note_mismatch(7), "consumed on first report");
    }

    #[test]
    fn unverified_read_counts_undetected() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        inj.stats.get_mut(FaultClass::CidForge).injected += 1;
        inj.mark_pending(5, FaultClass::CidForge);
        inj.note_unverified_read(5);
        assert_eq!(inj.stats().get(FaultClass::CidForge).undetected, 1);
    }

    #[test]
    fn accounting_violation_flags_imbalance_but_not_skips() {
        let mut s = FaultStats::default();
        assert_eq!(s.accounting_violation(), None);
        let c = s.get_mut(FaultClass::RaCorrupt);
        c.injected = 2;
        c.detected = 1;
        c.absorbed = 1;
        assert_eq!(s.accounting_violation(), None, "books balance exactly");
        s.get_mut(FaultClass::RaCorrupt).undetected = 1;
        assert_eq!(
            s.accounting_violation(),
            Some(FaultClass::RaCorrupt),
            "an outcome without an injection is a violation"
        );
        s.get_mut(FaultClass::RaCorrupt).undetected = 0;
        s.get_mut(FaultClass::RaCorrupt).skipped = 100;
        assert_eq!(
            s.accounting_violation(),
            None,
            "skipped events are not injections and stay outside the inequality"
        );
    }

    #[test]
    fn tick_budget_payload_formats() {
        let t = TickBudgetExceeded { budget: 10, now: 11 };
        let s = t.to_string();
        assert!(s.contains("10"), "{s}");
        assert!(s.contains("11"), "{s}");
    }
}
