//! End-to-end fault-injection suite: the chaos harness for the
//! metadata-recovery paths.
//!
//! The injector (`crates/sim/src/faults.rs`) corrupts stored images,
//! BLEM headers, Replacement-Area bits, Metadata-Cache residency, the
//! scrambler key, and DRAM read bandwidth on a seeded schedule; the
//! mirror-memory oracle is the ground truth that decides whether each
//! corruption was *detected* (a decoded read came back wrong),
//! *absorbed* (overwritten or decode-invisible before any read), or
//! *undetected* (a wrong read nobody caught). This suite pins the three
//! contracts the layer is built on:
//!
//! * determinism — a fixed `FaultPlan` produces bit-identical reports
//!   and per-class fault accounting under the cycle and event engines;
//! * coverage — with the oracle attached, every surfaced corruption is
//!   detected (zero `undetected` across every class);
//! * purity — with faults off, no injector exists: no `faults.*`
//!   metric keys, and reports identical to a config that never
//!   mentioned faults.
//!
//! The `ra_corrupt` scenario is pinned in
//! `tests/corpus/fault-ra-corrupt.case` so the exact schedule that
//! exercises the Replacement-Area recovery path is reproducible.

use attache_sim::{
    BackendKind, EngineKind, FaultClass, FaultPlan, MetadataStrategyKind, SimConfig, System,
};
use attache_testkit::CorpusCase;
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

/// Incompressible, write-heavy, reuse-heavy traffic over a shrunken LLC:
/// dirty lines spill to DRAM (targets for the injector) and get re-read
/// (chances for the oracle to catch corruption).
fn chaos_profile() -> Profile {
    Profile {
        name: "fault-chaos",
        suite: Suite::Synthetic,
        category: Category::Incompressible,
        data: DataProfile::incompressible(),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.45,
        mlp_limit: None,
    }
}

/// A quick Attaché configuration with the oracle attached and the CID
/// narrowed so collisions — the targets of `cid_erase`/`ra_corrupt` —
/// are forced to appear inside a short run.
fn chaos_config(engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(MetadataStrategyKind::Attache)
        .with_instructions(12_000, 0)
        .with_engine(engine)
        .with_mirror(true)
        .with_trace_ring(Some(64));
    cfg.llc.size_bytes = 128 << 10;
    cfg.cid_bits = 6;
    cfg
}

/// Reads the per-class fault counters back out of the exported metrics.
fn fault_counters(reg: &attache_metrics::Registry, class: FaultClass) -> [u64; 4] {
    [
        reg.counter(&format!("faults.{class}.injected")),
        reg.counter(&format!("faults.{class}.detected")),
        reg.counter(&format!("faults.{class}.absorbed")),
        reg.counter(&format!("faults.{class}.undetected")),
    ]
}

#[test]
fn fault_schedule_is_engine_invariant() {
    // The acceptance bar for the layer: a fixed ATTACHE_FAULTS-style
    // plan yields bit-identical reports AND identical per-class
    // injection/detection accounting under both engines. The event
    // engine may only skip time the injector provably does not need
    // (its next_fault_tick horizon clamp) — any divergence here means
    // it skipped over an injection.
    let plan = FaultPlan::new(0xC0FFEE);
    let mut results = Vec::new();
    for engine in ENGINES {
        let cfg = chaos_config(engine).with_faults(Some(plan.clone()));
        let (report, obs) = System::run_rate_mode_observed(&cfg, chaos_profile(), 11);
        let reg = obs.expect("trace ring arms the observer").registry;
        let counters: Vec<_> = FaultClass::ALL
            .into_iter()
            .map(|c| (c, fault_counters(&reg, c)))
            .collect();
        results.push((report, counters));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "cycle and event engines diverged under fault injection"
    );
    assert_eq!(
        results[0].1, results[1].1,
        "per-class fault accounting diverged across engines"
    );
    let total_injected: u64 = results[0].1.iter().map(|(_, c)| c[0]).sum();
    assert!(total_injected > 0, "the chaos run must actually inject faults");
}

#[test]
fn bus_derate_windows_expire_identically_on_the_fast_backend() {
    // The fast backend implements the derate hook itself (capped read
    // queues, expiry at `until`), and its expiry is an event both
    // engines must observe at the same tick — the fast model's
    // next_event clamp mirrors the cycle model's. A schedule of ONLY
    // bus_derate faults on the fast backend must therefore yield
    // bit-identical reports and per-class accounting across engines,
    // and the windows must actually bite (perturbed vs. faults-off).
    let mut plan = FaultPlan::new(0xB05_DE7A);
    plan.classes = vec![FaultClass::BusDerate];
    let mut results = Vec::new();
    for engine in ENGINES {
        let cfg = chaos_config(engine)
            .with_backend(BackendKind::Fast)
            .with_faults(Some(plan.clone()));
        let (report, obs) = System::run_rate_mode_observed(&cfg, chaos_profile(), 17);
        let reg = obs.expect("trace ring arms the observer").registry;
        results.push((report, fault_counters(&reg, FaultClass::BusDerate)));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "engines diverged under bus_derate on the fast backend"
    );
    assert_eq!(
        results[0].1, results[1].1,
        "bus_derate accounting diverged across engines on the fast backend"
    );
    let [injected, ..] = results[0].1;
    assert!(injected > 0, "the schedule must inject derate windows");

    // The windows must perturb timing (else the expiry path never ran).
    let off = System::run_rate_mode(
        &chaos_config(EngineKind::Event).with_backend(BackendKind::Fast),
        chaos_profile(),
        17,
    );
    assert_ne!(
        results[0].0, off,
        "derate windows must actually throttle the fast backend"
    );
}

#[test]
fn oracle_catches_every_surfaced_fault() {
    // With the mirror oracle on, a corrupted line that reaches a decoded
    // read is detected and healed — across ALL fault classes at once.
    // Zero `undetected` is the whole point of the harness: it proves the
    // oracle's coverage of the recovery paths, not just that injection
    // happened.
    let plan = FaultPlan::new(0xDECAF);
    let cfg = chaos_config(EngineKind::Event).with_faults(Some(plan));
    let (report, obs) = System::run_rate_mode_observed(&cfg, chaos_profile(), 29);
    assert!(report.bus_cycles > 0);
    let reg = obs.expect("trace ring arms the observer").registry;
    let mut injected = 0;
    let mut resolved = 0;
    for class in FaultClass::ALL {
        let [inj, det, abs, undet] = fault_counters(&reg, class);
        assert_eq!(undet, 0, "{class}: a surfaced fault escaped the oracle");
        assert!(
            det + abs <= inj,
            "{class}: resolved more faults than were injected"
        );
        injected += inj;
        resolved += det + abs;
    }
    assert!(injected > 0, "the chaos run must inject faults");
    assert!(resolved > 0, "some faults must be detected or absorbed");
}

/// Half-compressible chaos traffic for the Cram runs: marker-led
/// compressed lines (targets for `key_swap` and compressed `line_flip`)
/// and verbatim lines (targets for `cid_forge`'s marker forgery) both
/// exist in the footprint.
fn cram_chaos_profile() -> Profile {
    Profile {
        name: "cram-fault-chaos",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.5),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.45,
        mlp_limit: None,
    }
}

#[test]
fn cram_marker_faults_are_detected_or_absorbed() {
    // The Cram analogue of the chaos run. The metadata-bearing state is
    // the in-line marker word, so the injector's classes map onto it:
    // `line_flip` corrupts a stored body bit, `cid_forge` forges the
    // marker onto a verbatim line (the read path must degrade through
    // the fault-tolerant decode chain — garbage caught by the mirror,
    // never a panic), and `key_swap` stales exactly the scrambled
    // compressed lines. `mc_invalidate` has no Metadata-Cache to hit
    // and must be skipped, and nothing may go undetected.
    let plan = FaultPlan::new(0xC7A3);
    for engine in ENGINES {
        let cfg = chaos_config(engine)
            .with_strategy(MetadataStrategyKind::Cram)
            .with_faults(Some(plan.clone()));
        let (report, obs) = System::run_rate_mode_observed(&cfg, cram_chaos_profile(), 31);
        assert!(report.bus_cycles > 0);
        let cram = report.cram.expect("cram runs report marker stats");
        assert!(cram.reads > 0 && cram.compressed_reads > 0, "{engine:?}");
        let reg = obs.expect("trace ring arms the observer").registry;
        let mut detected = 0;
        let mut absorbed = 0;
        for class in FaultClass::ALL {
            let [inj, det, abs, undet] = fault_counters(&reg, class);
            assert_eq!(undet, 0, "{engine:?} {class}: a fault escaped the oracle");
            assert!(det + abs <= inj, "{engine:?} {class}: over-resolved");
            detected += det;
            absorbed += abs;
        }
        for class in [FaultClass::LineFlip, FaultClass::CidForge, FaultClass::KeySwap] {
            let [inj, ..] = fault_counters(&reg, class);
            assert!(inj > 0, "{engine:?} {class}: must fire under Cram");
        }
        let [mc_inj, ..] = fault_counters(&reg, FaultClass::McInvalidate);
        assert_eq!(mc_inj, 0, "{engine:?}: no Metadata-Cache exists to invalidate");
        assert!(detected > 0, "{engine:?}: marker corruption must surface to the oracle");
        assert!(absorbed > 0, "{engine:?}: rewrites must absorb some corruption");
    }
}

#[test]
fn cram_fault_schedule_is_engine_invariant() {
    // The engine-invariance contract extended to the Cram injection
    // paths: identical reports and per-class accounting across engines.
    let plan = FaultPlan::new(0xC7A4);
    let mut results = Vec::new();
    for engine in ENGINES {
        let cfg = chaos_config(engine)
            .with_strategy(MetadataStrategyKind::Cram)
            .with_faults(Some(plan.clone()));
        let (report, obs) = System::run_rate_mode_observed(&cfg, cram_chaos_profile(), 13);
        let reg = obs.expect("trace ring arms the observer").registry;
        let counters: Vec<_> = FaultClass::ALL
            .into_iter()
            .map(|c| (c, fault_counters(&reg, c)))
            .collect();
        results.push((report, counters));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "engines diverged under Cram fault injection"
    );
    assert_eq!(
        results[0].1, results[1].1,
        "per-class Cram fault accounting diverged across engines"
    );
    let total: u64 = results[0].1.iter().map(|(_, c)| c[0]).sum();
    assert!(total > 0, "the Cram chaos run must actually inject faults");
}

#[test]
fn faults_off_is_pure() {
    // Purity, both directions. (1) `with_faults(None)` is byte-identical
    // to a config that never mentioned faults — no machinery is
    // constructed, so the goldens cannot move. (2) No `faults.*` keys
    // leak into the exported metrics when injection is off.
    let cfg = chaos_config(EngineKind::Event);
    let (base, obs_off) = System::run_rate_mode_observed(&cfg, chaos_profile(), 7);
    let (off, _) =
        System::run_rate_mode_observed(&cfg.clone().with_faults(None), chaos_profile(), 7);
    assert_eq!(base, off, "with_faults(None) must be a no-op");
    let reg = obs_off.expect("trace ring arms the observer").registry;
    assert!(
        reg.counters().all(|(k, _)| !k.starts_with("faults.")),
        "faults-off runs must not export fault metrics"
    );

    // And faults ON must actually perturb the run — otherwise the two
    // assertions above would pass vacuously.
    let on_cfg = cfg.with_faults(Some(FaultPlan::new(1)));
    let (on, _) = System::run_rate_mode_observed(&on_cfg, chaos_profile(), 7);
    assert_ne!(base, on, "fault injection must perturb the run it is armed on");
}

#[test]
fn fault_schedule_is_shard_invariant_for_every_class() {
    // Sharded-execution satellite: with the channels split across two
    // worker shards, injections land inside worker-owned channels and
    // derate windows are broadcast at horizon edges — yet the merged
    // report AND the per-class fault accounting must be byte-identical
    // to the serial run. The period is tightened and the check runs
    // under BOTH metadata-bearing strategies (`mc_invalidate` needs the
    // Metadata-Cache strategy's structure; the BLEM/RA/key classes need
    // Attaché's) so that, across the union, all seven classes actually
    // fire on a sharded run — the counters-merge check would be vacuous
    // for a class that never injected.
    let plan = FaultPlan {
        seed: 0xC0FFEE,
        period: 200,
        classes: FaultClass::ALL.to_vec(),
        max: None,
    };
    let mut injected_sharded = [0u64; 7];
    for strategy in [
        MetadataStrategyKind::Attache,
        MetadataStrategyKind::MetadataCache,
    ] {
        for engine in ENGINES {
            let mut results = Vec::new();
            for shards in [1usize, 2] {
                let cfg = chaos_config(engine)
                    .with_strategy(strategy)
                    .with_instructions(8_000, 0)
                    .with_faults(Some(plan.clone()))
                    .with_shards(shards);
                let (report, obs) = System::run_rate_mode_observed(&cfg, chaos_profile(), 11);
                let reg = obs.expect("trace ring arms the observer").registry;
                let counters: Vec<_> = FaultClass::ALL
                    .into_iter()
                    .map(|c| (c, fault_counters(&reg, c)))
                    .collect();
                results.push((report, counters));
            }
            assert_eq!(
                results[0].0, results[1].0,
                "{strategy} {engine:?}: sharded chaos run diverged from serial"
            );
            assert_eq!(
                results[0].1, results[1].1,
                "{strategy} {engine:?}: per-class fault accounting did not merge \
                 deterministically"
            );
            for (i, (_, c)) in results[1].1.iter().enumerate() {
                injected_sharded[i] += c[0];
            }
        }
    }
    for (i, class) in FaultClass::ALL.into_iter().enumerate() {
        assert!(
            injected_sharded[i] > 0,
            "{class} never injected on any sharded run"
        );
    }
}

#[test]
fn pinned_cross_shard_key_swap_is_attributed_identically() {
    // The shrunk corpus schedule from the sharded battery
    // (tests/corpus/sharded-key-swap.case), replayed here for the
    // accounting contract: a scrambler key swap applied at a horizon
    // edge touches lines owned by BOTH shards, and every detection the
    // oracle makes must merge into the same per-class counters the
    // serial run reports — attributed to key_swap and nothing else.
    let case = CorpusCase::load("sharded-key-swap");
    let plan = FaultPlan {
        seed: case.require("plan-seed"),
        period: case.require("period"),
        classes: vec![FaultClass::KeySwap],
        max: None,
    };
    let mut results = Vec::new();
    for shards in [1usize, 2] {
        let mut cfg = chaos_config(EngineKind::Event)
            .with_faults(Some(plan.clone()))
            .with_shards(shards);
        cfg.cid_bits = 6;
        let (report, obs) =
            System::run_rate_mode_observed(&cfg, chaos_profile(), case.require("run-seed"));
        let reg = obs.expect("trace ring arms the observer").registry;
        results.push((report, fault_counters(&reg, FaultClass::KeySwap), {
            let mut others = Vec::new();
            for class in FaultClass::ALL {
                if class != FaultClass::KeySwap {
                    others.push(fault_counters(&reg, class));
                }
            }
            others
        }));
    }
    assert_eq!(results[0].0, results[1].0, "key-swap run diverged under sharding");
    assert_eq!(
        results[0].1, results[1].1,
        "key_swap accounting did not merge deterministically"
    );
    let [inj, _, _, undet] = results[1].1;
    assert!(inj > 0, "the pinned schedule must inject key swaps");
    assert_eq!(undet, 0, "no key swap may escape the oracle on a sharded run");
    for others in [&results[0].2, &results[1].2] {
        assert!(
            others.iter().all(|c| *c == [0u64; 4]),
            "only key_swap was scheduled, but another class has activity"
        );
    }
}

#[test]
fn ra_corruption_is_detected_and_attributed() {
    // The pinned Replacement-Area scenario: only `ra_corrupt` faults are
    // scheduled, so every detection MUST be attributed to that class —
    // this pins both the recovery path (collided read → RA fetch →
    // mirror check) and the attribution bookkeeping (a detection is
    // charged to the class that caused it, not to a bucket).
    let case = CorpusCase::load("fault-ra-corrupt");
    let plan = FaultPlan {
        seed: case.require("seed"),
        period: case.require("period"),
        classes: vec![FaultClass::RaCorrupt],
        max: None,
    };
    for engine in ENGINES {
        let mut cfg = chaos_config(engine)
            .with_instructions(case.require("instructions"), 0)
            .with_faults(Some(plan.clone()));
        cfg.cid_bits = case.require("cid-bits") as u8;
        let (report, obs) = System::run_rate_mode_observed(&cfg, chaos_profile(), 23);
        let ra = report.ra.expect("attache reports ra stats");
        assert!(ra.reads > 0, "{engine:?}: the scenario must exercise RA reads");
        let reg = obs.expect("trace ring arms the observer").registry;
        let [inj, det, _, undet] = fault_counters(&reg, FaultClass::RaCorrupt);
        assert!(inj > 0, "{engine:?}: the pinned schedule must inject RA faults");
        assert!(
            det > 0,
            "{engine:?}: a corrupted displaced bit must surface on a collided \
             read and be caught by the oracle"
        );
        assert_eq!(undet, 0, "{engine:?}: no RA corruption may escape the oracle");
        for class in FaultClass::ALL {
            if class != FaultClass::RaCorrupt {
                let c = fault_counters(&reg, class);
                assert_eq!(
                    c,
                    [0; 4],
                    "{engine:?}: {class} was never scheduled but has activity"
                );
            }
        }
    }
}

#[test]
fn accounting_invariant_holds_for_every_strategy_and_engine() {
    // The property-test form of the invariant that the injector also
    // debug-asserts at every counter mutation (see
    // `FaultStats::accounting_violation`): every outcome was once an
    // injection, so per class `injected >= detected + absorbed +
    // undetected` — with `skipped` outside the inequality, because a
    // skipped event never applied a perturbation. Plans are drawn from a
    // seeded generator and the runs cover all five strategies under both
    // engines; the runs themselves also execute the debug assertions at
    // each mutation site.
    let mut gen = attache_testkit::Gen::new(0xACC0);
    for strategy in MetadataStrategyKind::ALL {
        for engine in ENGINES {
            let plan = FaultPlan {
                seed: gen.next_u64(),
                period: 100 + gen.below(1_900),
                classes: FaultClass::ALL.to_vec(),
                max: None,
            };
            let cfg = chaos_config(engine)
                .with_strategy(strategy)
                .with_instructions(8_000, 0)
                .with_faults(Some(plan));
            let profile = if strategy == MetadataStrategyKind::Cram {
                cram_chaos_profile()
            } else {
                chaos_profile()
            };
            let (_, obs) = System::run_rate_mode_observed(&cfg, profile, gen.next_u64());
            let reg = obs.expect("trace ring arms the observer").registry;
            for class in FaultClass::ALL {
                let [inj, det, abs, undet] = fault_counters(&reg, class);
                assert!(
                    inj >= det + abs + undet,
                    "{strategy} {engine:?} {class}: accounting violated \
                     (injected {inj} < detected {det} + absorbed {abs} + undetected {undet})"
                );
            }
        }
    }
}
