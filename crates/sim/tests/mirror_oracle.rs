//! End-to-end mirror-memory oracle suite.
//!
//! Drives randomized traces through the full system — cores, LLC,
//! strategies, DRAM — with the shadow-copy oracle attached
//! (`SimConfig::with_mirror`). Any byte that survives the strategy stack
//! differently from what was written back panics inside the run, so a
//! green suite *is* the zero-mismatch claim. The suite additionally
//! asserts the oracle saw real traffic (recorded writebacks, checked
//! reads) so it can never pass vacuously, and that the specific hard
//! paths — forced CID collisions, Replacement-Area reads, scrambler key
//! changes — actually occurred in the trace.
//!
//! Seeds come from `tests/corpus/mirror-trace.case` so the exact traces
//! are pinned and reproducible.

use attache_sim::{mirror, EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_testkit::{CorpusCase, Gen};
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};

const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

/// Randomized reuse-heavy profiles: the footprint (512 KiB - 2 MiB) is a
/// small multiple of the shrunken LLC in [`quick`], so dirty lines get
/// evicted *and re-read* within a quick run — that eviction/re-read churn
/// is what routes traffic through the oracle's read check. Streams are
/// excluded: no reuse, nothing to verify.
fn random_profile(g: &mut Gen) -> Profile {
    let pattern = match g.below(3) {
        0 => AccessPattern::Random,
        1 => AccessPattern::graph(),
        _ => AccessPattern::PointerChase { locality: 0.5 + 0.4 * g.unit() },
    };
    let comp = g.unit();
    let data = if comp < 0.25 {
        DataProfile::incompressible()
    } else {
        DataProfile::clustered(comp)
    };
    Profile {
        name: "mirror-randomized",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data,
        pattern,
        // 8192-32768 lines (512 KiB - 2 MiB): 2-8x the quick-config LLC.
        footprint_lines: 8192 << g.below(3),
        instructions_per_access: 5.0 + 6.0 * g.unit(),
        write_fraction: 0.25 + 0.25 * g.unit(),
        mlp_limit: None,
    }
}

fn quick(strategy: MetadataStrategyKind, engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(3_000, 300)
        .with_engine(engine)
        .with_mirror(true);
    // A 128 KiB LLC: quick runs cannot touch enough lines to spill the
    // paper's 8 MiB LLC, and without evictions there are no writebacks —
    // and nothing for the oracle to verify.
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

#[test]
fn oracle_validates_randomized_traces_for_all_strategies_under_both_engines() {
    let case = CorpusCase::load("mirror-trace");
    let before = mirror::global_stats();
    for strategy in STRATEGIES {
        let mut g = Gen::new(case.require("base-seed"));
        for i in 0..case.require("cases") {
            let profile = random_profile(&mut g);
            for engine in ENGINES {
                let cfg = quick(strategy, engine);
                let report = System::run_rate_mode(&cfg, profile.clone(), 100 + i);
                assert!(report.bus_cycles > 0, "{strategy} {engine:?} case {i}");
            }
        }
    }
    // The oracle must have actually observed the traffic: every strategy
    // records writebacks, and the decode/classification paths (Attaché,
    // MetadataCache, Oracle) re-check reads. A zero here would mean the
    // suite went green without verifying anything.
    let after = mirror::global_stats();
    assert!(
        after.writes_recorded > before.writes_recorded,
        "oracle recorded no writebacks across the randomized traces"
    );
    assert!(
        after.reads_checked > before.reads_checked,
        "oracle checked no reads across the randomized traces"
    );
}

#[test]
fn oracle_survives_forced_cid_collisions_and_ra_traffic() {
    // Narrow CID (2^-5 collision rate) + incompressible data: collisions
    // and Replacement-Area traffic are forced to appear inside a quick
    // run, so the paper's worst-case read path (CID collision, XID=1,
    // displaced bit fetched from the RA, descramble) runs under the
    // oracle's byte check — on both engines.
    let case = CorpusCase::load("mirror-trace");
    let profile = Profile {
        name: "mirror-collisions",
        suite: Suite::Synthetic,
        category: Category::Incompressible,
        data: DataProfile::incompressible(),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.45,
        mlp_limit: None,
    };
    for engine in ENGINES {
        let mut cfg = quick(MetadataStrategyKind::Attache, engine).with_instructions(12_000, 0);
        cfg.cid_bits = case.require("collision-cid-bits") as u8;
        let report = System::run_rate_mode(&cfg, profile.clone(), 23);
        let blem = report.blem.expect("attache reports blem stats");
        let ra = report.ra.expect("attache reports ra stats");
        assert!(
            blem.write_collisions > 0,
            "{engine:?}: the narrow CID must force write collisions"
        );
        assert!(ra.writes > 0, "{engine:?}: collisions must displace bits into the RA");
        assert!(
            ra.reads > 0,
            "{engine:?}: collided lines must be re-read through the RA path"
        );
    }
}

#[test]
fn oracle_is_lossless_across_scrambler_key_changes() {
    // The scrambler key derives from the run seed: distinct seeds rotate
    // the key under identical traffic. The oracle would catch any
    // stale-key decode (the descramble of a line written under an older
    // key) as a byte mismatch.
    let case = CorpusCase::load("mirror-trace");
    let mut g = Gen::new(case.require("base-seed") ^ 0x5eed);
    let profile = random_profile(&mut g);
    for seed in [3, 0xDEAD_BEEF] {
        for engine in ENGINES {
            let cfg = quick(MetadataStrategyKind::Attache, engine);
            let report = System::run_rate_mode(&cfg, profile.clone(), seed);
            assert!(report.bus_cycles > 0, "seed {seed} {engine:?}");
        }
    }
}

#[test]
fn oracle_validates_sharded_runs_and_sees_the_same_traffic() {
    // Sharded-execution satellite: the oracle's byte checks ride the
    // decode path above the memory facade, so a 2-shard run must route
    // the identical writeback/re-read traffic through it (any in-run
    // mismatch panics) and the merged report must equal serial. The
    // forced-collision trace is reused so the hard path — CID
    // collision, RA fetch, descramble — runs across the shard split.
    let case = CorpusCase::load("mirror-trace");
    let before = mirror::global_stats();
    let profile = Profile {
        name: "mirror-sharded",
        suite: Suite::Synthetic,
        category: Category::Incompressible,
        data: DataProfile::incompressible(),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.45,
        mlp_limit: None,
    };
    for engine in ENGINES {
        let mut cfg = quick(MetadataStrategyKind::Attache, engine).with_instructions(12_000, 0);
        cfg.cid_bits = case.require("collision-cid-bits") as u8;
        let serial = System::run_rate_mode(&cfg, profile.clone(), 23);
        let sharded =
            System::run_rate_mode(&cfg.clone().with_shards(2), profile.clone(), 23);
        assert_eq!(serial, sharded, "{engine:?}: sharded oracle run diverged");
        let ra = sharded.ra.expect("attache reports ra stats");
        assert!(ra.reads > 0, "{engine:?}: the RA path must run across the split");
    }
    let after = mirror::global_stats();
    assert!(
        after.writes_recorded > before.writes_recorded,
        "oracle recorded no writebacks across the sharded traces"
    );
    assert!(
        after.reads_checked > before.reads_checked,
        "oracle checked no reads across the sharded traces"
    );
}

#[test]
fn oracle_is_a_pure_observer() {
    // Identical reports with the oracle on and off: attaching it must not
    // perturb timing, stats, or energy.
    let case = CorpusCase::load("mirror-trace");
    let mut g = Gen::new(case.require("base-seed") ^ 0x0b5e);
    let profile = random_profile(&mut g);
    for strategy in [MetadataStrategyKind::Baseline, MetadataStrategyKind::Attache] {
        let cfg = quick(strategy, EngineKind::Event);
        let with = System::run_rate_mode(&cfg, profile.clone(), 7);
        let without =
            System::run_rate_mode(&cfg.clone().with_mirror(false), profile.clone(), 7);
        assert_eq!(with, without, "mirror oracle perturbed a {strategy} run");
    }
}
