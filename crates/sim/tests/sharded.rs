//! The sharded-execution determinism battery.
//!
//! `ATTACHE_SHARDS=<n>` (or [`SimConfig::with_shards`], which is the
//! same knob without the environment) partitions the cycle backend's
//! DRAM channels across worker threads that rendezvous at every
//! executed tick. The contract this battery pins is absolute: a sharded
//! run's `RunReport` is **byte-identical** to the serial run — every
//! counter, every f64 energy bit — for every strategy, both engines,
//! both backends, and any shard count (including counts that do not
//! divide the channel count, and counts above it). Sharding is a
//! wall-clock strategy, never a model change; this is the property that
//! lets a sweep set `ATTACHE_SHARDS` freely while reusing serial cache
//! entries and goldens.
//!
//! Suite layout (per the tentpole's test-archetype brief):
//!
//! * (a) strategy × engine × backend sharded-vs-serial identity;
//! * (b) a shard-count sweep `{1, 2, 3, 4, 8}` on an 8-channel config;
//! * (c) seeded `Gen` fuzzing of adversarial cross-shard schedules
//!   (CID collisions spanning shards, scrambler key swaps at horizon
//!   edges, `bus_derate` windows straddling a barrier) with
//!   `shrink_vec`-based minimization of any mismatch into a recorded
//!   `tests/corpus/*.case` — the pinned `sharded-key-swap.case` is one
//!   such shrunk schedule;
//! * (d) a repeated-run stress test (same seed, 16 iterations, mixed
//!   shard counts) that catches nondeterministic interleavings.
//!
//! Every test drives sharding through `with_shards`, not the
//! environment, so the suite is parallel-safe (no `--test-threads=1`).

use attache_sim::{
    BackendKind, EngineKind, FaultClass, FaultPlan, MetadataStrategyKind, SimConfig, System,
};
use attache_testkit::{shrink_vec, CorpusCase, Gen};
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};

const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

const BACKENDS: [BackendKind; 2] = [BackendKind::Cycle, BackendKind::Fast];

/// A reuse-heavy compressible profile over a shrunken LLC: evictions,
/// writebacks and metadata traffic all cross the channel interleave (the
/// mapping places consecutive lines on different channels, i.e. on
/// different shards), so shard identity is exercised by real cross-shard
/// request streams rather than single-channel traffic.
fn reuse_profile() -> Profile {
    Profile {
        name: "sharded-reuse",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.55),
        pattern: AccessPattern::PointerChase { locality: 0.6 },
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.35,
        mlp_limit: None,
    }
}

fn quick(strategy: MetadataStrategyKind, engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(2_500, 400)
        .with_engine(engine)
        // Pin every ambient knob a CI environment might set, so the
        // serial reference below is the same run the goldens pin.
        .with_backend(BackendKind::Cycle)
        .with_shards(1)
        .with_epoch(None)
        .with_trace_ring(None)
        .with_faults(None);
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

/// The Table II DRAM geometry widened to 8 channels (but the quick
/// 8-core complex): shard counts 3 and 8 are only distinguishable from
/// 2 when there are more than two channels to partition.
fn eight_channel(strategy: MetadataStrategyKind, engine: EngineKind) -> SimConfig {
    let mut cfg = quick(strategy, engine);
    cfg.dram = attache_dram::DramConfig::scale8();
    cfg
}

fn assert_identical(serial: &attache_sim::RunReport, sharded: &attache_sim::RunReport, ctx: &str) {
    assert_eq!(serial, sharded, "sharded run diverged: {ctx}");
    // f64 `==` admits -0.0 == 0.0; pin the energy to exact bit patterns.
    assert_eq!(
        serial.energy.total_pj().to_bits(),
        sharded.energy.total_pj().to_bits(),
        "energy bits diverged: {ctx}"
    );
    assert_eq!(
        serial.energy.background_pj.to_bits(),
        sharded.energy.background_pj.to_bits(),
        "background energy bits diverged: {ctx}"
    );
}

// ---------------------------------------------------------------------------
// (a) Strategy × engine × backend identity.
// ---------------------------------------------------------------------------

#[test]
fn sharded_matches_serial_for_every_strategy_engine_and_backend() {
    let profile = reuse_profile();
    for strategy in STRATEGIES {
        for engine in ENGINES {
            for backend in BACKENDS {
                let cfg = quick(strategy, engine).with_backend(backend);
                let serial = System::run_rate_mode(&cfg, profile.clone(), 31);
                let sharded = System::run_rate_mode(
                    &cfg.clone().with_shards(2),
                    profile.clone(),
                    31,
                );
                assert_identical(
                    &serial,
                    &sharded,
                    &format!("{strategy} / {engine:?} / {backend:?}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// (b) Shard-count sweep, including non-dividing and oversized counts.
// ---------------------------------------------------------------------------

#[test]
fn every_shard_count_yields_the_same_report_on_eight_channels() {
    // 3 does not divide 8 (shards own unequal channel sets: 3+3+2) and
    // 8 gives every channel its own shard — both must still merge
    // byte-identically with the serial run. This sweep is exactly what
    // `ATTACHE_SHARDS ∈ {1,2,3,4,8}` selects; the builder keeps the
    // suite parallel-safe.
    let cfg = eight_channel(MetadataStrategyKind::Attache, EngineKind::Event);
    let profile = reuse_profile();
    let reference = System::run_rate_mode(&cfg, profile.clone(), 47);
    assert!(reference.bus_cycles > 0);
    for shards in [2usize, 3, 4, 8] {
        let report = System::run_rate_mode(
            &cfg.clone().with_shards(shards),
            profile.clone(),
            47,
        );
        assert_identical(&reference, &report, &format!("shards={shards} on 8 channels"));
    }
}

#[test]
fn oversized_shard_counts_clamp_and_stay_identical() {
    // More shards than channels (table2 has 2) must clamp, not panic,
    // and still match serial — on both engines.
    let profile = reuse_profile();
    for engine in ENGINES {
        let cfg = quick(MetadataStrategyKind::Attache, engine);
        let serial = System::run_rate_mode(&cfg, profile.clone(), 53);
        let sharded =
            System::run_rate_mode(&cfg.clone().with_shards(8), profile.clone(), 53);
        assert_identical(&serial, &sharded, &format!("shards=8 on 2 channels, {engine:?}"));
    }
}

// ---------------------------------------------------------------------------
// (c) Fuzzed adversarial cross-shard schedules, with shrinking.
// ---------------------------------------------------------------------------

/// Incompressible, write-heavy traffic with a narrowed CID: collisions
/// (and therefore Replacement-Area traffic) span shards because the
/// block-interleaved mapping scatters a colliding set across channels.
fn chaos_profile() -> Profile {
    Profile {
        name: "sharded-chaos",
        suite: Suite::Synthetic,
        category: Category::Incompressible,
        data: DataProfile::incompressible(),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.45,
        mlp_limit: None,
    }
}

/// A fuzzed adversarial scenario: a fault schedule (key swaps at horizon
/// edges, derate windows straddling barriers, CID-collision corruption),
/// an epoch-sampling horizon schedule, and a run seed.
#[derive(Debug, Clone)]
struct ChaosCase {
    classes: Vec<FaultClass>,
    plan_seed: u64,
    period: u64,
    epoch: Option<u64>,
    run_seed: u64,
}

fn chaos_config(engine: EngineKind, case: &ChaosCase, shards: usize) -> SimConfig {
    let mut cfg = quick(MetadataStrategyKind::Attache, engine)
        .with_instructions(6_000, 0)
        .with_mirror(true)
        .with_epoch(case.epoch)
        .with_shards(shards);
    cfg.cid_bits = 6;
    if !case.classes.is_empty() {
        cfg = cfg.with_faults(Some(FaultPlan {
            seed: case.plan_seed,
            period: case.period,
            classes: case.classes.clone(),
            max: None,
        }));
    }
    cfg
}

/// Whether this scenario's sharded run diverges from serial (the
/// property the shrinker preserves while minimizing the schedule).
fn diverges(engine: EngineKind, case: &ChaosCase) -> bool {
    let serial = System::run_rate_mode(&chaos_config(engine, case, 1), chaos_profile(), case.run_seed);
    let sharded = System::run_rate_mode(&chaos_config(engine, case, 2), chaos_profile(), case.run_seed);
    serial != sharded
        || serial.energy.total_pj().to_bits() != sharded.energy.total_pj().to_bits()
}

/// Encodes a class schedule as a bitmask over `FaultClass::ALL` order,
/// so a shrunk schedule fits a corpus case's u64 values.
fn class_mask(classes: &[FaultClass]) -> u64 {
    classes
        .iter()
        .map(|c| {
            1u64 << FaultClass::ALL
                .iter()
                .position(|a| a == c)
                .expect("class in ALL")
        })
        .fold(0, |m, b| m | b)
}

fn classes_from_mask(mask: u64) -> Vec<FaultClass> {
    FaultClass::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c)
        .collect()
}

#[test]
fn fuzzed_adversarial_schedules_are_shard_invariant() {
    // Seeded Gen drives the whole scenario: which fault classes run
    // (key swaps, derate windows, CID corruption — the cross-shard
    // hazards — plus whatever else the draw picks), the injection
    // period (so windows straddle barriers at many phases), the epoch
    // horizon schedule, and the run seed. A mismatch is shrunk with
    // shrink_vec to the minimal still-diverging class schedule and
    // recorded as a corpus case before failing, so the repro is pinned
    // even when the fuzz draw that found it changes.
    let mut g = Gen::new(0x5AAD_CA5E);
    for round in 0..3u64 {
        let mut classes: Vec<FaultClass> = FaultClass::ALL
            .into_iter()
            .filter(|_| g.bool())
            .collect();
        // The cross-shard hazards are the point of the fuzz — always
        // keep at least the key swap in the schedule.
        if !classes.contains(&FaultClass::KeySwap) {
            classes.push(FaultClass::KeySwap);
        }
        let case = ChaosCase {
            classes,
            plan_seed: g.next_u64(),
            period: 150 + g.below(500),
            epoch: if g.bool() { Some(500 + g.below(2_000)) } else { None },
            run_seed: 100 + round,
        };
        let engine = ENGINES[(g.below(2)) as usize];
        if diverges(engine, &case) {
            let minimal = shrink_vec(&case.classes, |cl| {
                let mut c = case.clone();
                c.classes = cl.to_vec();
                diverges(engine, &c)
            });
            let corpus = CorpusCase::new("sharded-chaos-shrunk")
                .with("plan-seed", case.plan_seed)
                .with("period", case.period)
                .with("epoch", case.epoch.unwrap_or(0))
                .with("run-seed", case.run_seed)
                .with("classes", class_mask(&minimal))
                .with("engine", matches!(engine, EngineKind::Event) as u64);
            let path = corpus.record().expect("record shrunk repro");
            panic!(
                "sharded run diverged (round {round}, {engine:?}); \
                 shrunk schedule {minimal:?} recorded at {}",
                path.display()
            );
        }
    }
}

#[test]
fn pinned_shrunk_key_swap_schedule_stays_shard_invariant() {
    // The pinned regression from the fuzzer's shrinker: a schedule of
    // ONLY scrambler key swaps (shrink_vec eliminated every other class
    // while the scenario still exercised the cross-shard hazard), with
    // a narrowed CID so collided lines span both shards when the swap
    // lands at a horizon edge. Both engines, serial vs sharded.
    let corpus = CorpusCase::load("sharded-key-swap");
    let case = ChaosCase {
        classes: classes_from_mask(corpus.require("classes")),
        plan_seed: corpus.require("plan-seed"),
        period: corpus.require("period"),
        epoch: match corpus.require("epoch") {
            0 => None,
            n => Some(n),
        },
        run_seed: corpus.require("run-seed"),
    };
    assert_eq!(
        case.classes,
        vec![FaultClass::KeySwap],
        "the pinned schedule is the shrunk single-class key swap"
    );
    for engine in ENGINES {
        assert!(
            !diverges(engine, &case),
            "{engine:?}: the pinned key-swap schedule diverged under sharding"
        );
        // Not vacuous: the schedule must actually swap keys.
        let (report, obs) = System::run_rate_mode_observed(
            &chaos_config(engine, &case, 2).with_trace_ring(Some(64)),
            chaos_profile(),
            case.run_seed,
        );
        assert!(report.bus_cycles > 0);
        let reg = obs.expect("trace ring arms the observer").registry;
        assert!(
            reg.counter("faults.key_swap.injected") > 0,
            "{engine:?}: the pinned schedule must inject key swaps"
        );
    }
}

// ---------------------------------------------------------------------------
// (d) Repeated-run stress: same seed, 16 iterations, mixed shard counts.
// ---------------------------------------------------------------------------

#[test]
fn sixteen_repeated_runs_with_mixed_shard_counts_are_stable() {
    // The classic nondeterminism catcher: if any cross-thread ordering
    // leaked into results, identical inputs would eventually disagree.
    // Same seed, 16 iterations, shard count cycling 2/3/4/8 on the
    // 8-channel config — every run must equal the serial reference.
    let cfg = eight_channel(MetadataStrategyKind::Attache, EngineKind::Event)
        .with_instructions(1_200, 200);
    let profile = reuse_profile();
    let reference = System::run_rate_mode(&cfg, profile.clone(), 71);
    for i in 0..16usize {
        let shards = [2, 3, 4, 8][i % 4];
        let report = System::run_rate_mode(
            &cfg.clone().with_shards(shards),
            profile.clone(),
            71,
        );
        assert_identical(&reference, &report, &format!("iteration {i}, shards={shards}"));
    }
}

#[test]
fn chaos_panicking_worker_surfaces_its_message_and_unwinds_cleanly() {
    // The failure-path contract of the shard pool, pinned with a
    // deliberately panicking worker: the ORIGINAL panic payload must be
    // re-raised at the facade (`resume_unwind`, not a generic
    // recv-disconnect error), the unwind must drop the facade without
    // deadlocking the mpsc rendezvous, and no wedged worker thread may
    // survive — a later instance starts from a clean slate.
    use attache_dram::{DramConfig, MemoryBackend as _, PowerParams, ShardedMemory};
    let msg = "chaos: injected worker failure #42";
    let result = std::panic::catch_unwind(|| {
        let mut mem = ShardedMemory::new(DramConfig::table2(), PowerParams::ddr4_1600(), 3);
        mem.chaos_panic(1, msg);
    });
    let payload = result.expect_err("the worker panic must reach the facade");
    let text = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .expect("panic payload must stay a string");
    assert_eq!(
        text, msg,
        "the facade must re-raise the worker's own payload verbatim"
    );
    // The facade was dropped mid-unwind inside `catch_unwind`: its Drop
    // joined the panicked worker AND the healthy one (shard 2) without
    // hanging — reaching this line is the evidence. A fresh pool must be
    // unaffected by the earlier chaos.
    let mut fresh = ShardedMemory::new(DramConfig::table2(), PowerParams::ddr4_1600(), 3);
    for _ in 0..4 {
        fresh.tick();
    }
    drop(fresh);
}
