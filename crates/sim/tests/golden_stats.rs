//! Golden-stats snapshots: the full metric registry for every strategy,
//! pinned as checked-in JSON under `tests/goldens/`.
//!
//! Each strategy runs under **both** engines with an identical pinned
//! configuration; the exported registry JSON must be byte-identical
//! across engines (the cross-engine determinism claim extended to the
//! observability layer) and byte-identical to the checked-in golden
//! (the regression pin). The epoch series is also checked for internal
//! consistency: its final snapshot must equal the cumulative registry.
//!
//! # Regenerating the goldens
//!
//! After an intentional metrics change:
//!
//! ```text
//! ATTACHE_BLESS=1 cargo test -p attache-sim --test golden_stats
//! ```
//!
//! then review the diff under `tests/goldens/` like any other code
//! change. A blessing run still asserts cross-engine identity, so it
//! cannot launder an engine divergence into the goldens.

use attache_metrics::registry_to_json;
use attache_sim::{BackendKind, EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_testkit::Gen;
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};
use std::path::PathBuf;

const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

/// Run seed; changing it invalidates every golden.
const SEED: u64 = 1009;

/// Epoch length in bus cycles — short enough that a quick run crosses
/// several boundaries, so the series consistency check is not vacuous.
const EPOCH: u64 = 2_000;

fn golden_path(strategy: MetadataStrategyKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{strategy}.json"))
}

/// A reuse-heavy compressible profile, pinned by the generator seed: the
/// small LLC in [`pinned`] forces evictions and re-reads, so the golden
/// covers DRAM writes, metadata traffic, and (for Attaché) the BLEM and
/// COPR paths — not just a cold-read stream.
fn pinned_profile() -> Profile {
    let mut g = Gen::new(0x601d_575a);
    Profile {
        name: "golden-stats",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.5 + 0.3 * g.unit()),
        pattern: AccessPattern::PointerChase { locality: 0.6 },
        footprint_lines: 8192,
        instructions_per_access: 5.0 + 2.0 * g.unit(),
        write_fraction: 0.35,
        mlp_limit: None,
    }
}

fn pinned(strategy: MetadataStrategyKind, engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(3_000, 300)
        .with_engine(engine)
        // Pin the knobs explicitly so ambient ATTACHE_EPOCH /
        // ATTACHE_TRACE_RING / ATTACHE_BACKEND values cannot perturb the
        // goldens. Pinning the cycle backend here is also the tentpole
        // regression pin: these snapshots predate the MemoryBackend
        // boundary, so the trait-routed cycle model matching them
        // byte-for-byte proves the refactor changed nothing.
        .with_backend(BackendKind::Cycle)
        .with_epoch(Some(EPOCH))
        .with_trace_ring(None);
    // Small LLC, as in the mirror suite: quick runs must spill.
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

#[test]
fn golden_stats_match_for_all_strategies_under_both_engines() {
    let bless = std::env::var_os("ATTACHE_BLESS").is_some();
    let profile = pinned_profile();
    for strategy in STRATEGIES {
        let mut per_engine = Vec::new();
        for engine in ENGINES {
            let cfg = pinned(strategy, engine);
            let (report, obs) = System::run_rate_mode_observed(&cfg, profile.clone(), SEED);
            assert!(report.bus_cycles > 0, "{strategy} {engine:?}");
            let obs = obs.expect("the epoch knob is on, so an observation exists");

            // The series must have crossed at least one epoch boundary
            // (plus the final snapshot), and its last snapshot must be
            // the cumulative registry.
            let series = obs.series.as_ref().expect("epoch sampling produces a series");
            assert!(
                series.len() >= 2,
                "{strategy} {engine:?}: expected >= 2 samples, got {}",
                series.len()
            );
            let last = series.last().expect("non-empty series");
            assert_eq!(
                last.registry, obs.registry,
                "{strategy} {engine:?}: final series snapshot must equal the registry"
            );

            per_engine.push(registry_to_json(&obs.registry));
        }
        let [cycle_json, event_json] = per_engine.try_into().expect("two engines");
        assert_eq!(
            cycle_json, event_json,
            "{strategy}: registry JSON must be byte-identical across engines"
        );

        let path = golden_path(strategy);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &cycle_json).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read golden {}: {e}\n\
                 regenerate with: ATTACHE_BLESS=1 cargo test -p attache-sim --test golden_stats",
                path.display()
            )
        });
        assert_eq!(
            cycle_json,
            golden,
            "{strategy}: metric registry diverged from {}\n\
             if intentional, regenerate with: ATTACHE_BLESS=1 cargo test -p attache-sim --test golden_stats",
            path.display()
        );
    }
}

#[test]
fn sharded_runs_match_the_unchanged_goldens() {
    // Sharded-execution satellite: `with_shards(2)` must reproduce the
    // checked-in goldens byte-for-byte — the snapshots were blessed
    // from serial runs and are deliberately NOT re-blessed here. If a
    // shard-merge bug ever shifted a counter or an energy bit, this is
    // the test that refuses to let it into the observability layer.
    // Skipped under ATTACHE_BLESS so a blessing run cannot launder a
    // sharded divergence into fresh goldens.
    if std::env::var_os("ATTACHE_BLESS").is_some() {
        return;
    }
    let profile = pinned_profile();
    for strategy in STRATEGIES {
        let cfg = pinned(strategy, EngineKind::Event).with_shards(2);
        let (report, obs) = System::run_rate_mode_observed(&cfg, profile.clone(), SEED);
        assert!(report.bus_cycles > 0, "{strategy} sharded");
        let obs = obs.expect("the epoch knob is on, so an observation exists");
        let json = registry_to_json(&obs.registry);
        let path = golden_path(strategy);
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
        assert_eq!(
            json,
            golden,
            "{strategy}: a 2-shard run diverged from the serial-blessed golden {}",
            path.display()
        );
    }
}
