//! Regression tests for the observability environment knobs.
//!
//! The contract (see `crates/sim/src/env.rs`): unset, empty, and `"0"`
//! all mean *disabled*; an unparsable value warns on stderr and falls
//! back — it must never panic a run. The original bug class this pins:
//! a typo'd `ATTACHE_EPOCH=10k` killing a multi-hour sweep at startup.
//!
//! All scenarios live in ONE `#[test]` because the test harness runs
//! functions of a binary concurrently and `set_var` is process-global;
//! a second env-mutating test here would race this one.

use attache_sim::{env_u64, env_u64_opt, unknown_knobs, FaultPlan, SimConfig, KNOWN_KNOBS};

#[test]
fn env_knob_parsing_is_total() {
    // Invalid value: warns and stays disabled — must not panic.
    std::env::set_var("ATTACHE_EPOCH", "10k");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    let cfg = SimConfig::table2_baseline();
    assert_eq!(cfg.epoch, None, "a typo'd ATTACHE_EPOCH must fall back to disabled");

    // "0" and "" both mean disabled.
    std::env::set_var("ATTACHE_EPOCH", "0");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    std::env::set_var("ATTACHE_EPOCH", "");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // A valid value enables the knob and reaches the config.
    std::env::set_var("ATTACHE_EPOCH", "50000");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), Some(50_000));
    assert_eq!(SimConfig::table2_baseline().epoch, Some(50_000));

    // Unset means disabled.
    std::env::remove_var("ATTACHE_EPOCH");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // The same contract holds for the ring knob...
    std::env::set_var("ATTACHE_TRACE_RING", "lots");
    assert_eq!(env_u64_opt("ATTACHE_TRACE_RING"), None);
    std::env::set_var("ATTACHE_TRACE_RING", "256");
    assert_eq!(SimConfig::table2_baseline().trace_ring, Some(256));
    std::env::remove_var("ATTACHE_TRACE_RING");

    // ...and for the defaulting variant used by the bench harness.
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "not-a-number");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 42);
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "7");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 7);
    std::env::remove_var("ATTACHE_ENV_KNOB_TEST");

    // ATTACHE_FAULTS follows the same contract: unset / "" / "0" all
    // mean no injection, a bad spec warns and disables (never panics),
    // and valid specs arm the plan through table2_baseline.
    std::env::remove_var("ATTACHE_FAULTS");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "0");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "period=bogus");
    assert_eq!(
        FaultPlan::from_env(),
        None,
        "a typo'd ATTACHE_FAULTS must fall back to disabled"
    );
    std::env::set_var("ATTACHE_FAULTS", "1234");
    let plan = SimConfig::table2_baseline().faults.expect("bare seed arms the plan");
    assert_eq!(plan.seed, 1234);
    assert_eq!(plan.period, FaultPlan::DEFAULT_PERIOD);
    std::env::set_var("ATTACHE_FAULTS", "seed=9,period=100,classes=ra_corrupt,max=3");
    let plan = SimConfig::table2_baseline().faults.expect("full spec arms the plan");
    assert_eq!((plan.seed, plan.period, plan.max), (9, 100, Some(3)));
    assert_eq!(plan.classes, vec![attache_sim::FaultClass::RaCorrupt]);
    std::env::remove_var("ATTACHE_FAULTS");

    // The tick-budget watchdog knob rides the same optional-u64 path.
    std::env::set_var("ATTACHE_JOB_TICK_BUDGET", "90000");
    assert_eq!(SimConfig::table2_baseline().tick_budget, Some(90_000));
    std::env::remove_var("ATTACHE_JOB_TICK_BUDGET");
    assert_eq!(SimConfig::table2_baseline().tick_budget, None);
}

#[test]
fn unknown_knob_classifier_flags_typos_only() {
    // Pure classifier — no environment mutation, so it can coexist with
    // the env-mutating test above.
    let names = [
        "ATTACHE_EPOC",    // the motivating typo
        "ATTACHE_EPOCH",   // known
        "ATTACHE_FAULTS",  // known
        "PATH",            // not our namespace
        "ATTACHEMENT",     // no underscore — not our namespace
        "ATTACHE_NEW_KNOB_NOBODY_READS",
    ];
    assert_eq!(
        unknown_knobs(names),
        vec!["ATTACHE_EPOC".to_string(), "ATTACHE_NEW_KNOB_NOBODY_READS".to_string()]
    );
    // Every registered knob classifies as known.
    assert!(unknown_knobs(KNOWN_KNOBS.iter().copied()).is_empty());
}
