//! Regression tests for the observability environment knobs.
//!
//! The contract (see `crates/sim/src/env.rs`): unset, empty, and `"0"`
//! all mean *disabled*; an unparsable value warns on stderr and falls
//! back — it must never panic a run. The original bug class this pins:
//! a typo'd `ATTACHE_EPOCH=10k` killing a multi-hour sweep at startup.
//!
//! All scenarios live in ONE `#[test]` because the test harness runs
//! functions of a binary concurrently and `set_var` is process-global;
//! a second env-mutating test here would race this one.

use attache_sim::{
    backend_from_env_value, env_u64, env_u64_opt, unknown_knobs, BackendKind, FaultPlan,
    SimConfig, KNOWN_KNOBS,
};

#[test]
fn env_knob_parsing_is_total() {
    // Invalid value: warns and stays disabled — must not panic.
    std::env::set_var("ATTACHE_EPOCH", "10k");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    let cfg = SimConfig::table2_baseline();
    assert_eq!(cfg.epoch, None, "a typo'd ATTACHE_EPOCH must fall back to disabled");

    // "0" and "" both mean disabled.
    std::env::set_var("ATTACHE_EPOCH", "0");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    std::env::set_var("ATTACHE_EPOCH", "");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // A valid value enables the knob and reaches the config.
    std::env::set_var("ATTACHE_EPOCH", "50000");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), Some(50_000));
    assert_eq!(SimConfig::table2_baseline().epoch, Some(50_000));

    // Unset means disabled.
    std::env::remove_var("ATTACHE_EPOCH");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // The same contract holds for the ring knob...
    std::env::set_var("ATTACHE_TRACE_RING", "lots");
    assert_eq!(env_u64_opt("ATTACHE_TRACE_RING"), None);
    std::env::set_var("ATTACHE_TRACE_RING", "256");
    assert_eq!(SimConfig::table2_baseline().trace_ring, Some(256));
    std::env::remove_var("ATTACHE_TRACE_RING");

    // ...and for the defaulting variant used by the bench harness.
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "not-a-number");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 42);
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "7");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 7);
    std::env::remove_var("ATTACHE_ENV_KNOB_TEST");

    // ATTACHE_FAULTS follows the same contract: unset / "" / "0" all
    // mean no injection, a bad spec warns and disables (never panics),
    // and valid specs arm the plan through table2_baseline.
    std::env::remove_var("ATTACHE_FAULTS");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "0");
    assert_eq!(FaultPlan::from_env(), None);
    std::env::set_var("ATTACHE_FAULTS", "period=bogus");
    assert_eq!(
        FaultPlan::from_env(),
        None,
        "a typo'd ATTACHE_FAULTS must fall back to disabled"
    );
    std::env::set_var("ATTACHE_FAULTS", "1234");
    let plan = SimConfig::table2_baseline().faults.expect("bare seed arms the plan");
    assert_eq!(plan.seed, 1234);
    assert_eq!(plan.period, FaultPlan::DEFAULT_PERIOD);
    std::env::set_var("ATTACHE_FAULTS", "seed=9,period=100,classes=ra_corrupt,max=3");
    let plan = SimConfig::table2_baseline().faults.expect("full spec arms the plan");
    assert_eq!((plan.seed, plan.period, plan.max), (9, 100, Some(3)));
    assert_eq!(plan.classes, vec![attache_sim::FaultClass::RaCorrupt]);
    std::env::remove_var("ATTACHE_FAULTS");

    // The tick-budget watchdog knob rides the same optional-u64 path.
    std::env::set_var("ATTACHE_JOB_TICK_BUDGET", "90000");
    assert_eq!(SimConfig::table2_baseline().tick_budget, Some(90_000));
    std::env::remove_var("ATTACHE_JOB_TICK_BUDGET");
    assert_eq!(SimConfig::table2_baseline().tick_budget, None);

    // The integrity knobs ride the same contracts: BER and scrub on the
    // optional-u64 path (unset / "" / "0" / typo all disarm), ECC on the
    // boolean path — and a fully-disarmed environment must leave
    // `integrity_armed()` false so no engine is ever constructed.
    std::env::set_var("ATTACHE_BER", "many");
    std::env::set_var("ATTACHE_ECC", "0");
    std::env::set_var("ATTACHE_SCRUB", "");
    let cfg = SimConfig::table2_baseline();
    assert_eq!(cfg.ber_ppm, None, "a typo'd ATTACHE_BER must fall back to disabled");
    assert!(!cfg.ecc);
    assert_eq!(cfg.scrub_period, None);
    assert!(!cfg.integrity_armed(), "disarmed knobs must not construct an engine");
    std::env::set_var("ATTACHE_BER", "40000");
    std::env::set_var("ATTACHE_ECC", "1");
    std::env::set_var("ATTACHE_SCRUB", "500");
    let cfg = SimConfig::table2_baseline();
    assert_eq!(cfg.ber_ppm, Some(40_000));
    assert!(cfg.ecc);
    assert_eq!(cfg.scrub_period, Some(500));
    assert!(cfg.integrity_armed());
    std::env::remove_var("ATTACHE_BER");
    std::env::remove_var("ATTACHE_ECC");
    std::env::remove_var("ATTACHE_SCRUB");
    assert!(!SimConfig::table2_baseline().integrity_armed());

    // ATTACHE_BACKEND follows the warn-don't-panic contract too: a typo
    // mid-sweep warns and falls back to the cycle reference, never
    // panics (the bench::grid regression this PR fixes).
    std::env::set_var("ATTACHE_BACKEND", "dramsim3");
    assert_eq!(SimConfig::table2_baseline().backend, BackendKind::Cycle);
    std::env::set_var("ATTACHE_BACKEND", "");
    assert_eq!(SimConfig::table2_baseline().backend, BackendKind::Cycle);
    std::env::set_var("ATTACHE_BACKEND", "FAST"); // case-insensitive
    assert_eq!(SimConfig::table2_baseline().backend, BackendKind::Fast);
    std::env::set_var("ATTACHE_BACKEND", "cycle");
    assert_eq!(SimConfig::table2_baseline().backend, BackendKind::Cycle);
    std::env::remove_var("ATTACHE_BACKEND");
    assert_eq!(SimConfig::table2_baseline().backend, BackendKind::Cycle);
}

#[test]
fn backend_classifier_is_total() {
    // The pure classifier behind ATTACHE_BACKEND — exercised without
    // touching the process environment, so it can run alongside the
    // env-mutating test above.
    assert_eq!(backend_from_env_value(None), BackendKind::Cycle);
    assert_eq!(backend_from_env_value(Some("")), BackendKind::Cycle);
    assert_eq!(backend_from_env_value(Some("cycle")), BackendKind::Cycle);
    assert_eq!(backend_from_env_value(Some("fast")), BackendKind::Fast);
    assert_eq!(backend_from_env_value(Some("Fast")), BackendKind::Fast);
    assert_eq!(backend_from_env_value(Some("hbm2")), BackendKind::Cycle);
}

#[test]
fn every_registered_knob_is_documented_in_knobs_md() {
    // docs/KNOBS.md is the reference table for every ATTACHE_* variable;
    // registering a knob in KNOWN_KNOBS without documenting it there
    // fails this test (the satellite contract of PR 6). The knob name
    // must appear in backticks, i.e. as a table entry, not prose luck.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/KNOBS.md");
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/KNOBS.md must exist ({e})"));
    let missing: Vec<&str> = KNOWN_KNOBS
        .iter()
        .copied()
        .filter(|knob| !doc.contains(&format!("`{knob}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "knobs registered in KNOWN_KNOBS but missing from docs/KNOBS.md: {missing:?}"
    );
    // And the reverse: the doc must not promise knobs nobody reads.
    for line in doc.lines() {
        let mut rest = line;
        while let Some(start) = rest.find("`ATTACHE_") {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else { break };
            let token = &tail[..end];
            // The token may be a usage example (`ATTACHE_FAULTS=seed=7`);
            // the knob name is its leading [A-Z0-9_] run.
            let name_len = token
                .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
                .unwrap_or(token.len());
            let name = &token[..name_len];
            // Tolerate glob-style references like `ATTACHE_*` in prose.
            if !token.starts_with("ATTACHE_*") {
                assert!(
                    KNOWN_KNOBS.contains(&name),
                    "docs/KNOBS.md documents {name}, which is not in KNOWN_KNOBS"
                );
            }
            rest = &tail[end + 1..];
        }
    }
}

#[test]
fn unknown_knob_classifier_flags_typos_only() {
    // Pure classifier — no environment mutation, so it can coexist with
    // the env-mutating test above.
    let names = [
        "ATTACHE_EPOC",    // the motivating typo
        "ATTACHE_EPOCH",   // known
        "ATTACHE_FAULTS",  // known
        "PATH",            // not our namespace
        "ATTACHEMENT",     // no underscore — not our namespace
        "ATTACHE_NEW_KNOB_NOBODY_READS",
    ];
    assert_eq!(
        unknown_knobs(names),
        vec!["ATTACHE_EPOC".to_string(), "ATTACHE_NEW_KNOB_NOBODY_READS".to_string()]
    );
    // Every registered knob classifies as known.
    assert!(unknown_knobs(KNOWN_KNOBS.iter().copied()).is_empty());
}
