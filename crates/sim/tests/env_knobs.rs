//! Regression tests for the observability environment knobs.
//!
//! The contract (see `crates/sim/src/env.rs`): unset, empty, and `"0"`
//! all mean *disabled*; an unparsable value warns on stderr and falls
//! back — it must never panic a run. The original bug class this pins:
//! a typo'd `ATTACHE_EPOCH=10k` killing a multi-hour sweep at startup.
//!
//! All scenarios live in ONE `#[test]` because the test harness runs
//! functions of a binary concurrently and `set_var` is process-global;
//! a second env-mutating test here would race this one.

use attache_sim::{env_u64, env_u64_opt, SimConfig};

#[test]
fn env_knob_parsing_is_total() {
    // Invalid value: warns and stays disabled — must not panic.
    std::env::set_var("ATTACHE_EPOCH", "10k");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    let cfg = SimConfig::table2_baseline();
    assert_eq!(cfg.epoch, None, "a typo'd ATTACHE_EPOCH must fall back to disabled");

    // "0" and "" both mean disabled.
    std::env::set_var("ATTACHE_EPOCH", "0");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);
    std::env::set_var("ATTACHE_EPOCH", "");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // A valid value enables the knob and reaches the config.
    std::env::set_var("ATTACHE_EPOCH", "50000");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), Some(50_000));
    assert_eq!(SimConfig::table2_baseline().epoch, Some(50_000));

    // Unset means disabled.
    std::env::remove_var("ATTACHE_EPOCH");
    assert_eq!(env_u64_opt("ATTACHE_EPOCH"), None);

    // The same contract holds for the ring knob...
    std::env::set_var("ATTACHE_TRACE_RING", "lots");
    assert_eq!(env_u64_opt("ATTACHE_TRACE_RING"), None);
    std::env::set_var("ATTACHE_TRACE_RING", "256");
    assert_eq!(SimConfig::table2_baseline().trace_ring, Some(256));
    std::env::remove_var("ATTACHE_TRACE_RING");

    // ...and for the defaulting variant used by the bench harness.
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "not-a-number");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 42);
    std::env::set_var("ATTACHE_ENV_KNOB_TEST", "7");
    assert_eq!(env_u64("ATTACHE_ENV_KNOB_TEST", 42), 7);
    std::env::remove_var("ATTACHE_ENV_KNOB_TEST");
}
