//! Guards that every strategy-generic test battery enumerates
//! [`MetadataStrategyKind::ALL`] rather than a hand-maintained list.
//!
//! The compile-time side lives next to the enum (`config.rs` has a
//! `const` exhaustive-match assertion that `ALL` names every variant);
//! this suite closes the other half of the loop: a new variant added to
//! `ALL` automatically flows into every suite below, and a suite that
//! regresses to a hard-coded subset fails here before it silently stops
//! covering a strategy.

use attache_sim::MetadataStrategyKind;
use std::path::Path;

/// The strategy-generic suites, relative to this crate's manifest dir.
/// Each must iterate `MetadataStrategyKind::ALL` (directly or through a
/// `STRATEGIES` constant bound to it).
const GENERIC_SUITES: [&str; 8] = [
    "tests/mirror_oracle.rs",
    "tests/golden_stats.rs",
    "tests/differential.rs",
    "tests/sharded.rs",
    "tests/backends.rs",
    "tests/observability.rs",
    "../../tests/determinism.rs",
    "../../examples/graph_analytics.rs",
];

#[test]
fn every_generic_suite_enumerates_all_strategies() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for suite in GENERIC_SUITES {
        let path = root.join(suite);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        assert!(
            src.contains("MetadataStrategyKind::ALL"),
            "{suite} does not iterate MetadataStrategyKind::ALL — \
             strategy-generic suites must not hand-maintain the list"
        );
    }
}

#[test]
fn bench_grid_enumerates_all_strategies() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join("../bench/src/results.rs"))
        .expect("read bench results.rs");
    assert!(
        src.contains("MetadataStrategyKind::ALL"),
        "the bench sweep grid must cover every strategy"
    );
}

#[test]
fn goldens_cover_every_strategy() {
    let goldens = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens");
    for kind in MetadataStrategyKind::ALL {
        let path = goldens.join(format!("{kind}.json"));
        assert!(
            path.is_file(),
            "missing golden for {kind}: bless with \
             ATTACHE_BLESS=1 cargo test -p attache-sim --test golden_stats"
        );
    }
}
