//! Differential tests: the event engine must produce **bit-identical**
//! `RunReport`s to the per-cycle reference engine — same cycle counts, same
//! per-origin request counters, same energy breakdown to the last f64 bit.
//!
//! This is the contract that lets every figure binary default to the event
//! engine: it is purely a wall-clock optimization, never a model change.

use attache_sim::{BackendKind, EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::{mixes, AccessPattern, Category, DataProfile, Profile, Suite};

const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

fn quick(strategy: MetadataStrategyKind) -> SimConfig {
    SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(6_000, 1_000)
}

/// Runs `profile` under both engines and asserts full `RunReport` equality
/// (the report derives `PartialEq` over every counter and f64).
fn assert_engines_agree(strategy: MetadataStrategyKind, profile: Profile, seed: u64) {
    let mut cfg = quick(strategy);
    cfg.engine = EngineKind::Cycle;
    let cycle = System::run_rate_mode(&cfg, profile.clone(), seed);
    cfg.engine = EngineKind::Event;
    let event = System::run_rate_mode(&cfg, profile.clone(), seed);
    assert_eq!(
        cycle, event,
        "engines disagree for {strategy} on {}",
        profile.name
    );
    // f64 `==` admits -0.0 == 0.0; pin the energy to exact bit patterns.
    assert_eq!(
        cycle.energy.total_pj().to_bits(),
        event.energy.total_pj().to_bits(),
        "energy bits disagree for {strategy} on {}",
        profile.name
    );
    assert_eq!(
        cycle.energy.background_pj.to_bits(),
        event.energy.background_pj.to_bits(),
        "background energy bits disagree for {strategy} on {}",
        profile.name
    );
}

#[test]
fn engines_agree_on_stream_all_strategies() {
    for s in STRATEGIES {
        assert_engines_agree(s, Profile::stream(), 7);
    }
}

#[test]
fn engines_agree_on_rand_all_strategies() {
    for s in STRATEGIES {
        assert_engines_agree(s, Profile::rand(), 11);
    }
}

#[test]
fn engines_agree_on_graph_all_strategies() {
    let p = Profile::by_name("bc.kron").expect("catalog profile");
    for s in STRATEGIES {
        assert_engines_agree(s, p.clone(), 13);
    }
}

#[test]
fn engines_agree_on_pointer_chase() {
    let p = Profile::by_name("mcf").expect("catalog profile");
    assert_engines_agree(MetadataStrategyKind::Attache, p, 17);
}

#[test]
fn engines_agree_on_serialized_chase_all_strategies() {
    // CHASE spends most cycles with every subsystem quiescent — the
    // deepest-skip regime, where an overestimated horizon would be
    // most visible.
    for s in STRATEGIES {
        assert_engines_agree(s, Profile::chase(), 19);
    }
}

#[test]
fn event_engine_stops_on_the_target_tick() {
    // Regression: the event loop must not skip ahead after the tick that
    // reaches the retirement target. With a long warm-up the boundary tick
    // is often followed by a quiescent span; overshooting it shifts the
    // measured window and the final bus-cycle count by the skipped span.
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(MetadataStrategyKind::Baseline)
        .with_instructions(6_000, 8_000);
    cfg.engine = EngineKind::Cycle;
    let cycle = System::run_rate_mode(&cfg, Profile::chase(), 42);
    cfg.engine = EngineKind::Event;
    let event = System::run_rate_mode(&cfg, Profile::chase(), 42);
    assert_eq!(cycle, event, "engines disagree across a deep warm-up");
}

#[test]
fn engines_agree_on_the_fast_backend_all_strategies() {
    // The tentpole's engine contract extends to every MemoryBackend:
    // the fast queueing model's next_event/mutation_gen/derate bounds
    // must be exact, or the event engine would skip a retirement or a
    // retry-flush cycle the reference engine runs. Bit-identity here is
    // what makes `ATTACHE_BACKEND=fast` composable with the default
    // event engine on sweeps.
    for s in STRATEGIES {
        let mut cfg = quick(s).with_backend(BackendKind::Fast);
        cfg.engine = EngineKind::Cycle;
        let cycle = System::run_rate_mode(&cfg, Profile::rand(), 23);
        cfg.engine = EngineKind::Event;
        let event = System::run_rate_mode(&cfg, Profile::rand(), 23);
        assert_eq!(cycle, event, "engines disagree on the fast backend for {s}");
        assert_eq!(
            cycle.energy.total_pj().to_bits(),
            event.energy.total_pj().to_bits(),
            "fast-backend energy bits disagree for {s}"
        );
    }
}

#[test]
fn cycle_backend_behind_the_trait_is_bit_identical() {
    // Tentpole pin: the refactor routed the cycle model through a boxed
    // `MemoryBackend`, and `with_backend(Cycle)` must be
    // indistinguishable from the pre-refactor default — on BOTH engines
    // (the golden-stats suite pins the same property against
    // tests/goldens/ snapshots taken before the refactor).
    for engine in [EngineKind::Cycle, EngineKind::Event] {
        let mut cfg = quick(MetadataStrategyKind::Attache);
        cfg.engine = engine;
        let default_backend = System::run_rate_mode(&cfg, Profile::stream(), 29);
        let explicit = System::run_rate_mode(
            &cfg.clone().with_backend(BackendKind::Cycle),
            Profile::stream(),
            29,
        );
        assert_eq!(default_backend, explicit, "{engine:?}");
    }
}

#[test]
fn engines_agree_under_sharded_execution_all_strategies() {
    // Sharded-execution satellite: the engine contract must hold while
    // the cycle backend runs its channels on four worker shards. The
    // DRAM geometry is widened to 8 channels so shards=4 is genuine —
    // table2's 2 channels would clamp it to 2 — and the event engine's
    // horizon math has to agree with the facade's merged min-bound.
    for s in STRATEGIES {
        let mut cfg = quick(s).with_shards(4);
        cfg.dram = attache_dram::DramConfig::scale8();
        cfg.engine = EngineKind::Cycle;
        let cycle = System::run_rate_mode(&cfg, Profile::rand(), 37);
        cfg.engine = EngineKind::Event;
        let event = System::run_rate_mode(&cfg, Profile::rand(), 37);
        assert_eq!(cycle, event, "engines disagree under 4-way sharding for {s}");
        assert_eq!(
            cycle.energy.total_pj().to_bits(),
            event.energy.total_pj().to_bits(),
            "sharded energy bits disagree for {s}"
        );
    }
}

#[test]
fn event_engine_stops_on_the_target_tick_when_sharded() {
    // The deep-warm-up stop-tick regression, replayed at shards=4: the
    // boundary tick that reaches the retirement target is followed by a
    // quiescent span, and the facade's min-bound (the smallest bound
    // over all shards, folded with owed no-op flushes) must not let the
    // event engine overshoot it any more than the serial backend does.
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(MetadataStrategyKind::Baseline)
        .with_instructions(6_000, 8_000)
        .with_shards(4);
    cfg.dram = attache_dram::DramConfig::scale8();
    cfg.engine = EngineKind::Cycle;
    let cycle = System::run_rate_mode(&cfg, Profile::chase(), 42);
    cfg.engine = EngineKind::Event;
    let event = System::run_rate_mode(&cfg, Profile::chase(), 42);
    assert_eq!(cycle, event, "engines disagree across a sharded deep warm-up");
}

#[test]
fn engines_agree_on_a_mix() {
    let mix = mixes().remove(0);
    let mut cfg = quick(MetadataStrategyKind::Attache).with_instructions(5_000, 1_000);
    cfg.engine = EngineKind::Cycle;
    let cycle = System::run_mix(&cfg, &mix, 3);
    cfg.engine = EngineKind::Event;
    let event = System::run_mix(&cfg, &mix, 3);
    assert_eq!(cycle, event, "engines disagree on mix {}", mix.name);
}

// ---------------------------------------------------------------------------
// Proptest-style randomized profiles: splitmix64-driven generation of
// profile parameters, so the engines are compared on configurations nobody
// hand-picked.
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from the top 53 bits.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn random_profile(seed: u64) -> Profile {
    let r0 = splitmix64(seed);
    let r1 = splitmix64(r0);
    let r2 = splitmix64(r1);
    let r3 = splitmix64(r2);
    let pattern = match r0 % 4 {
        0 => AccessPattern::Stream,
        1 => AccessPattern::Random,
        2 => AccessPattern::graph(),
        _ => AccessPattern::PointerChase {
            locality: 0.5 + 0.4 * unit(r1),
        },
    };
    let comp = unit(r2);
    let data = if comp < 0.15 {
        DataProfile::incompressible()
    } else {
        DataProfile::clustered(comp)
    };
    Profile {
        name: "randomized",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data,
        pattern,
        // 2-32 MiB footprints, 6-18 instructions per access.
        footprint_lines: (2 << (r3 % 5)) * (1 << 20) / 64,
        instructions_per_access: 6.0 + 12.0 * unit(splitmix64(r3)),
        write_fraction: 0.1 + 0.3 * unit(splitmix64(r3 ^ 1)),
        // Every third case throttles MLP (1-4 outstanding misses), so the
        // serialized-core wake paths get differential coverage too.
        mlp_limit: match splitmix64(r3 ^ 2) % 3 {
            0 => Some(1 + (splitmix64(r3 ^ 3) % 4) as usize),
            _ => None,
        },
    }
}

#[test]
fn engines_agree_on_randomized_profiles() {
    for case in 0..4u64 {
        let profile = random_profile(0xA77A_C4E0 ^ case);
        let strategy = STRATEGIES[(splitmix64(case) % STRATEGIES.len() as u64) as usize];
        assert_engines_agree(strategy, profile, 100 + case);
    }
}
