//! End-to-end data-integrity suite: device-level soft errors, the
//! (72,64) SEC-DED ECC pipeline, poison propagation, and graceful
//! strategy recovery.
//!
//! The layering contract under test (see `crates/sim/src/integrity.rs`):
//! soft errors corrupt the *stored cells* below the ECC layer; ECC
//! corrects single-bit upsets and detects doubles on every read; a
//! detected-uncorrectable read returns a poisoned line that each
//! strategy recovers from (or, for Baseline, surfaces as an accounted
//! machine-check outcome) — never a panic, and never silently-consumed
//! poison (the mirror oracle stays attached throughout and would abort
//! the run on any delivered corruption). With every knob off the engine
//! is never constructed and reports are bit-identical to a build that
//! never heard of integrity.

use attache_sim::{BackendKind, EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

/// Reuse- and write-heavy half-compressible traffic over a shrunken
/// LLC: every strategy sees compressed and verbatim lines, dirty
/// evictions rewrite cells (clearing latched flips), and re-reads give
/// the ECC pipeline corrupted images to chew on.
fn soak_profile() -> Profile {
    Profile {
        name: "integrity-soak",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.5),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.4,
        mlp_limit: None,
    }
}

fn soak_config(engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_instructions(12_000, 0)
        .with_engine(engine)
        .with_mirror(true);
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

#[test]
fn ecc_corrects_and_recovers_for_every_strategy() {
    // The acceptance bar: with ECC on and a correctable-dominated error
    // rate, runs complete for all five strategies (no poisoned read ever
    // panics), single-bit upsets are corrected in-flight, and every
    // detected-uncorrectable read is either recovered through the
    // strategy's redundancy or accounted as Baseline data loss —
    // `uncorrectable == recovered + data_loss` closes the books.
    let mut total_uncorrectable = 0;
    for strategy in MetadataStrategyKind::ALL {
        let cfg = soak_config(EngineKind::Event)
            .with_strategy(strategy)
            .with_ber(Some(40_000))
            .with_ecc(true);
        let report = System::run_rate_mode(&cfg, soak_profile(), 7);
        let i = report.integrity.expect("armed runs report integrity stats");
        assert!(i.reads_checked > 0, "{strategy}: ECC never saw a read");
        assert!(i.injected_flips > 0, "{strategy}: the error process never fired");
        assert!(i.total_corrected() > 0, "{strategy}: no single-bit upset corrected");
        assert_eq!(
            i.total_uncorrectable(),
            i.recovered + i.data_loss,
            "{strategy}: an uncorrectable read went neither recovered nor accounted"
        );
        if strategy == MetadataStrategyKind::Baseline {
            assert_eq!(i.recovered, 0, "Baseline has no redundancy to recover from");
            assert_eq!(i.sdc_averted, i.data_loss, "detection averts exactly the losses");
        } else {
            assert_eq!(i.data_loss, 0, "{strategy}: recovery must avert data loss");
        }
        assert_eq!(
            i.silent_corruption_reads, 0,
            "{strategy}: ECC-on runs must never deliver silent corruption"
        );
        assert!(i.ecc_check_bytes > 0, "{strategy}: the check-bit tax must be charged");
        total_uncorrectable += i.total_uncorrectable();
    }
    assert!(
        total_uncorrectable > 0,
        "the soak rate must produce at least one uncorrectable read somewhere"
    );
}

#[test]
fn integrity_off_is_pure() {
    // Purity, both directions, for the golden-compatibility contract:
    // explicitly disarming every knob is byte-identical to a config
    // that never mentioned integrity (no engine is constructed), the
    // report carries no integrity section, and its serialization emits
    // not a single new key — across both engines, both backends, and a
    // sharded run.
    for engine in ENGINES {
        for backend in [BackendKind::Cycle, BackendKind::Fast] {
            for shards in [1usize, 2] {
                let base = soak_config(engine)
                    .with_backend(backend)
                    .with_shards(shards)
                    .with_strategy(MetadataStrategyKind::Attache);
                let off = base
                    .clone()
                    .with_ber(None)
                    .with_ecc(false)
                    .with_scrub(None);
                let a = System::run_rate_mode(&base, soak_profile(), 5);
                let b = System::run_rate_mode(&off, soak_profile(), 5);
                assert_eq!(a, b, "{engine:?} {backend:?} x{shards}: disarmed knobs must be a no-op");
                assert!(a.integrity.is_none(), "no engine may exist with knobs off");
                let text = attache_sim::report_io::to_text(&a, "k");
                assert!(
                    !text.contains("integrity.") && !text.contains("scrub_reads"),
                    "{engine:?} {backend:?} x{shards}: integrity-off reports must serialize \
                     without new keys"
                );
            }
        }
    }

    // And an armed run must actually differ — otherwise the purity
    // assertions above would pass vacuously.
    let base = soak_config(EngineKind::Event).with_strategy(MetadataStrategyKind::Attache);
    let off = System::run_rate_mode(&base, soak_profile(), 5);
    let on = System::run_rate_mode(
        &base.clone().with_ber(Some(40_000)).with_ecc(true),
        soak_profile(),
        5,
    );
    assert_ne!(off, on, "an armed integrity engine must perturb the run");
}

#[test]
fn armed_runs_are_engine_and_shard_invariant() {
    // Bit-identity with every integrity knob armed at once (errors +
    // ECC + scrub): the event engine's horizon clamps (scrub next_tick
    // included) and the sharded channel walk must reproduce the cycle
    // engine's reads in the same global order, because the soft-error
    // process keys flips off the global touch ordinal — one swapped
    // read would cascade into different flips everywhere.
    for strategy in [MetadataStrategyKind::Attache, MetadataStrategyKind::Cram] {
        let mut reports = Vec::new();
        for engine in ENGINES {
            for shards in [1usize, 2] {
                let cfg = soak_config(engine)
                    .with_strategy(strategy)
                    .with_ber(Some(40_000))
                    .with_ecc(true)
                    .with_scrub(Some(400))
                    .with_shards(shards);
                reports.push(System::run_rate_mode(&cfg, soak_profile(), 9));
            }
        }
        for r in &reports[1..] {
            assert_eq!(
                reports[0], *r,
                "{strategy}: engine/shard axes diverged under armed integrity knobs"
            );
        }
        let i = reports[0].integrity.expect("armed");
        assert!(i.injected_flips > 0, "{strategy}: the invariance check must not be vacuous");
    }

    // The fast backend has its own timing, so its reports cannot match
    // the cycle backend's — but its engine axis must still agree.
    let mut fast = Vec::new();
    for engine in ENGINES {
        let cfg = soak_config(engine)
            .with_strategy(MetadataStrategyKind::Attache)
            .with_backend(BackendKind::Fast)
            .with_ber(Some(40_000))
            .with_ecc(true)
            .with_scrub(Some(400));
        fast.push(System::run_rate_mode(&cfg, soak_profile(), 9));
    }
    assert_eq!(fast[0], fast[1], "fast backend diverged across engines under integrity");
}

#[test]
fn ecc_off_measures_silent_corruption() {
    // Measurement mode: soft errors without ECC. Nothing detects or
    // corrects, so every data-bit flip surfaced by a read is counted as
    // silent corruption with its amplification (a flipped bit inside a
    // compressed line poisons the whole decoded 64-byte block), while
    // the delivered data stays clean in-model — the mirror must stay
    // green, because this is bookkeeping about what real hardware
    // *would* have delivered.
    let cfg = soak_config(EngineKind::Event)
        .with_strategy(MetadataStrategyKind::Attache)
        .with_ber(Some(40_000));
    let report = System::run_rate_mode(&cfg, soak_profile(), 11);
    let i = report.integrity.expect("armed");
    assert!(i.silent_corruption_reads > 0, "unprotected flips must surface");
    assert!(i.corrupted_bytes_delivered > 0);
    assert!(
        i.amplification() >= 1.0,
        "each surfaced flip corrupts at least one delivered byte, got {}",
        i.amplification()
    );
    assert_eq!(i.total_corrected(), 0, "nothing corrects without ECC");
    assert_eq!(i.total_uncorrectable(), 0, "nothing detects without ECC");
    assert_eq!(i.ecc_check_bytes, 0, "no check storage without ECC");
}

#[test]
fn scrub_walks_lines_and_repairs_latched_flips() {
    // The background scrub engine: walks the occupied footprint on its
    // period, charges an `Origin::Scrub` read per check (visible in the
    // channel stats and in total_reads), skips busy intervals, and
    // repairs latched single-bit flips before a second upset can pair
    // them into an uncorrectable double.
    let armed = soak_config(EngineKind::Event)
        .with_strategy(MetadataStrategyKind::Attache)
        .with_ber(Some(40_000))
        .with_ecc(true)
        .with_scrub(Some(200));
    let report = System::run_rate_mode(&armed, soak_profile(), 13);
    let i = report.integrity.expect("armed");
    assert!(i.scrub_checks > 0, "the scrub clock must fire");
    assert!(report.mem.scrub_reads > 0, "scrub reads must be charged to DRAM");
    assert_eq!(
        report.mem.scrub_reads, i.scrub_checks,
        "every functional scrub check pairs with exactly one charged read"
    );
    assert!(
        i.scrub_corrected + i.scrub_uncorrectable <= i.scrub_checks,
        "scrub outcomes cannot exceed checks"
    );
    assert!(i.scrub_corrected > 0, "the soak rate must latch flips for scrub to repair");

    // Scrubbing must reduce uncorrectable reads relative to the same
    // run without it (fewer latched singles left to pair into doubles).
    let unscrubbed_cfg = armed.clone().with_scrub(None);
    let unscrubbed = System::run_rate_mode(&unscrubbed_cfg, soak_profile(), 13)
        .integrity
        .expect("armed");
    assert!(
        i.total_uncorrectable() <= unscrubbed.total_uncorrectable(),
        "scrubbing must not increase uncorrectable reads \
         (scrubbed {} vs unscrubbed {})",
        i.total_uncorrectable(),
        unscrubbed.total_uncorrectable()
    );
}

#[test]
fn ecc_alone_taxes_bandwidth_and_latency() {
    // ECC with a zero error rate is still not free: the syndrome check
    // adds a bus cycle to every demand read and the check bits cost
    // transfer bytes — the run must slow down relative to all-knobs-off
    // while staying error-free.
    let base = soak_config(EngineKind::Event).with_strategy(MetadataStrategyKind::Attache);
    let off = System::run_rate_mode(&base, soak_profile(), 17);
    let ecc_cfg = base.clone().with_ecc(true);
    let ecc = System::run_rate_mode(&ecc_cfg, soak_profile(), 17);
    let i = ecc.integrity.expect("ecc arms the engine");
    assert_eq!(i.injected_flips, 0, "zero rate injects nothing");
    assert_eq!(i.total_corrected() + i.total_uncorrectable(), 0);
    assert!(i.ecc_check_bytes > 0, "check bits must be accounted");
    assert!(
        ecc.bus_cycles > off.bus_cycles,
        "the ECC latency tax must slow the run ({} vs {})",
        ecc.bus_cycles,
        off.bus_cycles
    );
}
