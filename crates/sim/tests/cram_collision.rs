//! Replay of the pinned marker-collision corpus case
//! (`tests/corpus/cram-marker-collision.case`): a line whose natural
//! content begins with CRAM's marker word, driven through the full
//! strategy layer, with the exception path asserted non-vacuous.

use attache_cache::MetadataCacheConfig;
use attache_compress::MarkerCodec;
use attache_core::copr::CoprConfig;
use attache_dram::{AccessKind, AccessWidth, AddressMapping, DramConfig, Origin};
use attache_sim::backend::MemoryBackend;
use attache_sim::strategy::Strategy;
use attache_sim::MetadataStrategyKind;
use attache_testkit::CorpusCase;
use attache_workloads::Profile;

fn strategy(seed: u64) -> Strategy {
    Strategy::new(
        MetadataStrategyKind::Cram,
        AddressMapping::new(DramConfig::table2()),
        MetadataCacheConfig::paper_1mb(),
        CoprConfig::paper_default(1 << 22),
        seed,
    )
}

/// The pinned adversarial line takes the escape path on write (parked
/// bytes cost an exception-region write) and on every read (optimistic
/// half + corrective half + exception-region fetch).
#[test]
fn pinned_collision_exercises_the_exception_path() {
    let case = CorpusCase::load("cram-marker-collision");
    let backend = MemoryBackend::new(&[Profile::rand()], case.require("backend-seed"));
    let line = case.require("line");
    let mut s = strategy(case.require("strategy-seed"));

    // The case is genuinely adversarial: the pristine content's leading
    // big-endian word matches the marker (modulo the selector bit), yet
    // the line does not compress to half width.
    let codec = MarkerCodec::from_seed(case.require("strategy-seed"));
    let content = backend.pristine_content(line);
    let word = u16::from_be_bytes([content[0], content[1]]);
    assert!(
        codec.collides(word),
        "pinned line no longer collides with the marker ({word:#06x}); \
         re-run search_for_collision with --ignored and re-pin the case"
    );

    // Writeback: stored verbatim (no compressed_write), with the escape
    // side write parking the displaced bytes in the exception region.
    let wp = s.plan_write(line, 0, &backend);
    assert_eq!(wp.data.width, AccessWidth::Full, "colliding line stays full width");
    assert_eq!(
        wp.side,
        vec![attache_sim::strategy::ReqSpec {
            line: backend.ra_line_of(line),
            kind: AccessKind::Write,
            width: AccessWidth::Full,
            origin: Origin::ReplacementArea,
        }],
        "escape write parks the colliding bytes in the exception region"
    );
    let cs = s.cram_stats().expect("cram strategy reports marker stats");
    assert_eq!(cs.writes, 1);
    assert_eq!(cs.compressed_writes, 0);
    assert_eq!(cs.write_exceptions, 1, "exception-path write counter is non-vacuous");

    // Read: optimistic half fetch (implicit metadata — nothing to
    // consult first), then a corrective other-half fetch plus the
    // exception-region read to restore the parked bytes.
    let rp = s.plan_read(line, 0, &backend);
    assert!(rp.meta_first.is_none(), "CRAM never issues metadata reads");
    assert!(matches!(rp.data.width, AccessWidth::Half(_)));
    assert_eq!(rp.predicted_compressed, None);
    let mut follow = Vec::new();
    s.on_read_data(line, rp.predicted_compressed, 0, &backend, &mut follow);
    assert_eq!(follow.len(), 2, "corrective half + exception fetch: {follow:?}");
    assert!(
        follow
            .iter()
            .any(|r| matches!(r.width, AccessWidth::Half(_))
                && matches!(r.origin, Origin::Corrective { .. })),
        "uncompressed line pays the corrective second-half fetch"
    );
    assert!(
        follow.iter().any(|r| r.line == backend.ra_line_of(line)
            && r.kind == AccessKind::Read
            && r.origin == Origin::ReplacementArea),
        "escape-led line pays the exception-region fetch"
    );
    let cs = s.cram_stats().expect("cram strategy reports marker stats");
    assert_eq!(cs.reads, 1);
    assert_eq!(cs.compressed_reads, 0);
    assert_eq!(cs.read_exceptions, 1, "exception-path read counter is non-vacuous");
}

/// One-off search harness used to pin the corpus case; kept ignored so
/// the case can be re-derived after a codec or backend change:
/// `cargo test -p attache-sim --test cram_collision -- --ignored --nocapture`
#[test]
#[ignore]
fn search_for_collision() {
    for backend_seed in 0..32u64 {
        let b = MemoryBackend::new(&[Profile::rand()], backend_seed);
        for strategy_seed in 0..8u64 {
            let codec = MarkerCodec::from_seed(strategy_seed);
            for line in 0..b.occupied_lines() {
                let c = b.pristine_content(line);
                let word = u16::from_be_bytes([c[0], c[1]]);
                if codec.collides(word) {
                    println!(
                        "backend_seed={backend_seed} strategy_seed={strategy_seed} \
                         line={line:#x} word={word:#06x} marker={:#06x}",
                        codec.marker_word()
                    );
                    return;
                }
            }
        }
    }
    panic!("no collision found");
}
