//! Observer-purity and failure-context tests for the observability
//! layer.
//!
//! Two claims from the metrics PR are locked in here:
//!
//! 1. **Purity** — turning every observability knob on (epoch sampling
//!    plus the event-trace ring) leaves the `RunReport` bit-identical on
//!    both engines. The observer reads model state; it never steers it.
//! 2. **Failure context** — when a failure detector fires (here: the
//!    mirror oracle, force-fed a corrupted shadow copy via the
//!    test-only `with_mirror_poison` hook), the panic message carries a
//!    non-empty dump of the trace ring, so the last decoded sim/DRAM
//!    events are available exactly when a run dies.
//!
//! The forced-mismatch inputs are pinned in
//! `tests/corpus/trace-ring-dump.case`.

use attache_sim::{EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_testkit::{CorpusCase, Gen};
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};
use std::panic::{catch_unwind, AssertUnwindSafe};

const ENGINES: [EngineKind; 2] = [EngineKind::Cycle, EngineKind::Event];

/// Reuse-heavy randomized profile (same shape as the mirror suite's):
/// evictions and re-reads are what give the observer — and the poisoned
/// oracle — traffic to see.
fn random_profile(g: &mut Gen) -> Profile {
    Profile {
        name: "observability",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.4 + 0.4 * g.unit()),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0 + 4.0 * g.unit(),
        write_fraction: 0.3 + 0.2 * g.unit(),
        mlp_limit: None,
    }
}

fn quick(strategy: MetadataStrategyKind, engine: EngineKind) -> SimConfig {
    let mut cfg = SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(3_000, 300)
        .with_engine(engine)
        .with_epoch(None)
        .with_trace_ring(None);
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

#[test]
fn observability_knobs_do_not_perturb_the_run_report() {
    let mut g = Gen::new(0x0b5e_c0de);
    let profile = random_profile(&mut g);
    for strategy in MetadataStrategyKind::ALL {
        for engine in ENGINES {
            let off = quick(strategy, engine);
            let on = off.clone().with_epoch(Some(5_000)).with_trace_ring(Some(128));
            let plain = System::run_rate_mode(&off, profile.clone(), 77);
            let (observed, obs) = System::run_rate_mode_observed(&on, profile.clone(), 77);
            assert_eq!(
                plain, observed,
                "{strategy} {engine:?}: observability knobs perturbed the report"
            );
            // And the observation must not be vacuously empty.
            let obs = obs.expect("knobs on implies an observation");
            assert!(
                obs.registry.counter("sim.bus_cycles") > 0,
                "{strategy} {engine:?}: observation recorded no bus cycles"
            );
        }
    }
}

#[test]
fn epoch_series_deltas_telescope_to_the_registry_totals() {
    // End-to-end version of the metrics-crate property: per-epoch
    // counter deltas from a real run sum to the final cumulative value.
    let mut g = Gen::new(0x0b5e_5e21);
    let profile = random_profile(&mut g);
    for engine in ENGINES {
        let cfg = quick(MetadataStrategyKind::Attache, engine).with_epoch(Some(8_000));
        let (_, obs) = System::run_rate_mode_observed(&cfg, profile.clone(), 31);
        let obs = obs.expect("epoch knob is on");
        let series = obs.series.expect("epoch sampling produces a series");
        assert!(series.len() >= 2, "{engine:?}: run too short to cross an epoch");
        let deltas = series.counter_deltas();
        for (key, total) in obs.registry.counters() {
            let recovered: u64 =
                deltas.iter().map(|(_, d)| d.get(key).copied().unwrap_or(0)).sum();
            assert_eq!(recovered, total, "{engine:?}: deltas for {key} must telescope");
        }
    }
}

#[test]
fn forced_mirror_mismatch_dumps_the_trace_ring() {
    let case = CorpusCase::load("trace-ring-dump");
    let mut g = Gen::new(case.require("seed"));
    let profile = random_profile(&mut g);
    for engine in ENGINES {
        let cfg = quick(MetadataStrategyKind::Attache, engine)
            .with_instructions(case.require("instructions"), 0)
            .with_mirror(true)
            .with_mirror_poison(true)
            .with_trace_ring(Some(case.require("ring") as usize));
        // Silence the default panic printout — this panic is the
        // expected outcome, not test noise.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            System::run_rate_mode(&cfg, profile.clone(), case.require("seed"))
        }));
        std::panic::set_hook(prev_hook);

        let payload = result.expect_err(
            "a poisoned mirror must fail the first checked re-read; \
             if this run survived, the oracle verified nothing",
        );
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(
            msg.contains("trace ring: last"),
            "{engine:?}: mirror panic must carry a trace-ring dump, got:\n{msg}"
        );
        assert!(
            msg.contains("submit id=") || msg.contains("complete id="),
            "{engine:?}: the ring dump must contain decoded sim events, got:\n{msg}"
        );
    }
}
