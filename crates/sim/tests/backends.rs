//! Memory-backend boundary tests: the fast queueing backend
//! (`ATTACHE_BACKEND=fast`) as a full citizen of the simulator.
//!
//! The contracts pinned here, complementing `tests/differential.rs`
//! (which pins cycle-backend bit-identity and fast-backend engine
//! invariance) and the dram crate's referee tests (which pin the
//! stream-level tolerance envelope of `docs/BACKENDS.md`):
//!
//! * every metadata strategy completes end-to-end runs on the fast
//!   backend, with the strategy-level mechanisms (COPR predictions,
//!   metadata installs, RA traffic) still exercised;
//! * the backends genuinely differ (a mis-wired factory that hands out
//!   the cycle model twice must not pass vacuously), yet agree on
//!   backend-independent facts: instruction counts, request mixes
//!   within the envelope;
//! * `with_backend(BackendKind::Cycle)` is the exact default — the knob
//!   cannot perturb a pinned-golden run when it selects the reference;
//! * the mirror-memory oracle (functional correctness) holds on the
//!   fast backend: timing models may disagree on *when*, never on
//!   *what*.

use attache_sim::{BackendKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::Profile;

const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

fn quick(strategy: MetadataStrategyKind, backend: BackendKind) -> SimConfig {
    SimConfig::table2_baseline()
        .with_strategy(strategy)
        .with_instructions(6_000, 1_000)
        .with_backend(backend)
}

#[test]
fn every_strategy_completes_on_the_fast_backend() {
    for s in STRATEGIES {
        let r = System::run_rate_mode(&quick(s, BackendKind::Fast), Profile::rand(), 5);
        assert!(r.total_instructions() >= 8 * 6_000, "{s}: run must finish");
        assert!(r.bus_cycles > 0, "{s}");
        assert!(r.mem.demand_reads > 0, "{s}: random traffic misses the LLC");
        assert!(r.energy.total_pj() > 0.0, "{s}");
        assert_eq!(r.mem.refreshes, 0, "{s}: the fast model has no refresh");
        match s {
            MetadataStrategyKind::MetadataCache => {
                assert!(r.mem.metadata_reads > 0, "installs must still happen")
            }
            MetadataStrategyKind::Attache => {
                let copr = r.copr.expect("attache reports copr");
                assert!(copr.predictions > 0, "COPR must still predict");
            }
            MetadataStrategyKind::Cram => {
                assert!(r.cram.is_some(), "cram reports marker stats");
                assert_eq!(r.mem.metadata_reads, 0, "implicit metadata costs no reads");
                // RAND is incompressible, so the optimistic half fetch
                // finds no marker and every resolved read pays the
                // corrective second half — at any run length.
                assert!(r.mem.corrective_reads > 0, "markerless reads must correct");
            }
            _ => {}
        }
    }
}

#[test]
fn explicit_cycle_backend_is_the_default() {
    // The knob must be inert when it selects the reference: a config
    // that says `cycle` out loud is bit-identical to one that never
    // mentioned backends (this is what keeps the goldens pinned).
    let base = SimConfig::table2_baseline()
        .with_strategy(MetadataStrategyKind::Attache)
        .with_instructions(6_000, 1_000);
    assert_eq!(base.backend, BackendKind::Cycle);
    let a = System::run_rate_mode(&base, Profile::stream(), 9);
    let b = System::run_rate_mode(&base.clone().with_backend(BackendKind::Cycle), Profile::stream(), 9);
    assert_eq!(a, b, "with_backend(Cycle) must be a no-op");
    assert_eq!(a.energy.total_pj().to_bits(), b.energy.total_pj().to_bits());
}

#[test]
fn backends_differ_in_timing_but_agree_on_work() {
    // End-to-end analogue of the dram referee: same seed, same workload,
    // both backends. Timing diverges (the fast model has no rows or
    // refresh), but the *work* — instructions retired, and the request
    // mix the strategy generates — stays within the documented envelope.
    let cy = System::run_rate_mode(
        &quick(MetadataStrategyKind::Attache, BackendKind::Cycle),
        Profile::rand(),
        21,
    );
    let fa = System::run_rate_mode(
        &quick(MetadataStrategyKind::Attache, BackendKind::Fast),
        Profile::rand(),
        21,
    );
    assert_eq!(cy.instructions, fa.instructions, "same retirement target");
    assert_ne!(cy.bus_cycles, fa.bus_cycles, "timing models must differ");
    assert!(cy.mem.row_hits > 0 && fa.mem.row_hits == 0);
    // Demand-read counts track LLC misses, which depend on timing only
    // through victim ordering — they must stay close (well inside the
    // 2x drain-span envelope of docs/BACKENDS.md).
    let ratio = cy.mem.demand_reads.max(fa.mem.demand_reads) as f64
        / cy.mem.demand_reads.min(fa.mem.demand_reads).max(1) as f64;
    assert!(
        ratio < 1.5,
        "demand-read mix diverged across backends: cycle {} vs fast {}",
        cy.mem.demand_reads,
        fa.mem.demand_reads
    );
    // End-to-end the whole run compounds the per-access gap (the fast
    // model never pays activates/precharges, so a row-miss-heavy random
    // workload drains much sooner) — the tight 2x drain-span envelope
    // applies to the referee's identical-stream replays, not to closed
    // loops where timing feeds back into issue order. Here we pin the
    // direction and a sanity bound.
    assert!(
        fa.bus_cycles < cy.bus_cycles,
        "the fast model must not be slower in simulated time: cycle {} vs fast {}",
        cy.bus_cycles,
        fa.bus_cycles
    );
    let span_ratio = cy.bus_cycles as f64 / fa.bus_cycles.max(1) as f64;
    assert!(
        span_ratio < 8.0,
        "bus-cycle span implausibly wide: cycle {} vs fast {}",
        cy.bus_cycles,
        fa.bus_cycles
    );
}

#[test]
fn mirror_oracle_holds_on_the_fast_backend() {
    // Functional correctness is backend-independent: every decoded read
    // on the fast backend still byte-checks against the shadow copy
    // (the mirror panics on divergence, so completing is the assertion).
    for s in [MetadataStrategyKind::Attache, MetadataStrategyKind::MetadataCache] {
        let cfg = quick(s, BackendKind::Fast).with_mirror(true);
        let r = System::run_rate_mode(&cfg, Profile::rand(), 31);
        assert!(r.bus_cycles > 0, "{s}");
    }
}

#[test]
fn fast_backend_reports_consistent_bandwidth_accounting() {
    // The trait's accounting surface: bytes, busy cycles and sub-rank
    // CAS counts must stay mutually consistent on the fast model, since
    // EXPERIMENTS.md figures derive bandwidth from them.
    let r = System::run_rate_mode(
        &quick(MetadataStrategyKind::Attache, BackendKind::Fast),
        Profile::stream(),
        3,
    );
    let t_burst = 4; // Table II
    assert_eq!(r.mem.busy_bus_cycles % t_burst, 0, "busy counts whole bursts");
    assert!(r.mem.bytes >= 32 * r.mem.total_requests());
    assert!(r.mem.bytes <= 64 * r.mem.total_requests());
    assert!(r.mem.read_latency_count > 0);
    assert!(r.mem.avg_read_latency() >= (1 + 22 + 22 + 4) as f64, "no read beats the cold-read floor");
}
