//! Property-based tests for the set-associative cache model: structural
//! invariants must hold under arbitrary access sequences and every
//! replacement policy.
//!
//! Access sequences come from the shared seeded splitmix64 generator in
//! `attache-testkit` (no external property-testing crate), so the suite
//! builds offline and each failing case is reproducible from its
//! iteration index. The seeds (10..=13) predate the testkit port; the
//! generator stream is pinned by testkit's own tests, so old failing-case
//! indices still reproduce.

use attache_cache::{CacheConfig, PolicyKind, SetAssocCache};
use attache_testkit::Gen;

const CASES: u64 = 128;

/// Cycles through every policy across the case loop.
fn policy_for(case: u64) -> PolicyKind {
    PolicyKind::ALL[case as usize % PolicyKind::ALL.len()]
}

#[test]
fn stats_always_balance() {
    let mut g = Gen::new(10);
    for case in 0..CASES {
        let policy = policy_for(case);
        let accesses: Vec<(u64, bool)> = (0..1 + g.below(400))
            .map(|_| (g.below(512), g.bool()))
            .collect();
        let mut c = SetAssocCache::new(CacheConfig { sets: 8, ways: 2, policy });
        for (addr, write) in &accesses {
            c.access(*addr, *write, addr >> 3);
        }
        let s = c.stats();
        assert_eq!(s.accesses, accesses.len() as u64, "case {case} {policy}");
        assert_eq!(s.hits + s.misses, s.accesses, "case {case} {policy}");
        assert!(s.dirty_evictions <= s.evictions, "case {case} {policy}");
        assert!(s.evictions <= s.misses, "case {case} {policy}");
        assert!(c.occupancy() <= c.capacity_lines(), "case {case} {policy}");
    }
}

#[test]
fn resident_line_hits_immediately() {
    let mut g = Gen::new(11);
    for case in 0..CASES {
        let policy = policy_for(case);
        let addr = g.below(10_000);
        let noise = g.vec(0, 16, 10_000);
        // A large cache: the noise cannot evict `addr` (distinct sets or
        // enough ways).
        let mut c = SetAssocCache::new(CacheConfig { sets: 4096, ways: 8, policy });
        c.access(addr, false, 0);
        for n in &noise {
            if n % 4096 != addr % 4096 {
                c.access(*n, false, 0);
            }
        }
        assert!(c.probe(addr), "case {case} {policy}");
        assert!(c.access(addr, false, 0).hit, "case {case} {policy}");
    }
}

#[test]
fn eviction_address_reconstruction_is_exact() {
    let mut g = Gen::new(12);
    for case in 0..CASES {
        let policy = policy_for(case);
        let tags = g.vec(2, 40, 64);
        // Single set, single way: every miss evicts the previous line.
        let mut c = SetAssocCache::new(CacheConfig { sets: 1, ways: 1, policy });
        let mut resident: Option<u64> = None;
        for t in tags {
            let out = c.access(t, false, 0);
            if let Some(prev) = resident {
                if prev != t {
                    assert_eq!(
                        out.evicted.map(|e| e.line_addr),
                        Some(prev),
                        "case {case} {policy}"
                    );
                }
            }
            resident = Some(t);
        }
    }
}

#[test]
fn dirty_bit_follows_writes() {
    for policy in PolicyKind::ALL {
        for write_first in [false, true] {
            let mut c = SetAssocCache::new(CacheConfig { sets: 1, ways: 1, policy });
            c.access(1, write_first, 0);
            let out = c.access(2, false, 0);
            assert_eq!(
                out.evicted.map(|e| e.dirty),
                Some(write_first),
                "{policy} write_first={write_first}"
            );
        }
    }
}

#[test]
fn invalidate_then_probe_is_false() {
    let mut g = Gen::new(13);
    for case in 0..CASES {
        let policy = policy_for(case);
        let addrs = g.vec(1, 64, 256);
        let mut c = SetAssocCache::new(CacheConfig { sets: 16, ways: 4, policy });
        for a in &addrs {
            c.access(*a, false, 0);
        }
        for a in &addrs {
            c.invalidate(*a);
            assert!(!c.probe(*a), "case {case} {policy}");
        }
        assert_eq!(c.occupancy(), 0, "case {case} {policy}");
    }
}
