//! Property-based tests for the set-associative cache model: structural
//! invariants must hold under arbitrary access sequences and every
//! replacement policy.

use attache_cache::{CacheConfig, PolicyKind, SetAssocCache};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #[test]
    fn stats_always_balance(
        policy in policy_strategy(),
        accesses in prop::collection::vec((0u64..512, any::<bool>()), 1..400),
    ) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 8, ways: 2, policy });
        for (addr, write) in &accesses {
            c.access(*addr, *write, addr >> 3);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, accesses.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.dirty_evictions <= s.evictions);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(c.occupancy() <= c.capacity_lines());
    }

    #[test]
    fn resident_line_hits_immediately(
        policy in policy_strategy(),
        addr in 0u64..10_000,
        noise in prop::collection::vec(0u64..10_000, 0..16),
    ) {
        // A large cache: the noise cannot evict `addr` (distinct sets or
        // enough ways).
        let mut c = SetAssocCache::new(CacheConfig { sets: 4096, ways: 8, policy });
        c.access(addr, false, 0);
        for n in &noise {
            if n % 4096 != addr % 4096 {
                c.access(*n, false, 0);
            }
        }
        prop_assert!(c.probe(addr));
        prop_assert!(c.access(addr, false, 0).hit);
    }

    #[test]
    fn eviction_address_reconstruction_is_exact(
        policy in policy_strategy(),
        tags in prop::collection::vec(0u64..64, 2..40),
    ) {
        // Single set, single way: every miss evicts the previous line.
        let mut c = SetAssocCache::new(CacheConfig { sets: 1, ways: 1, policy });
        let mut resident: Option<u64> = None;
        for t in tags {
            let out = c.access(t, false, 0);
            if let Some(prev) = resident {
                if prev != t {
                    prop_assert_eq!(out.evicted.map(|e| e.line_addr), Some(prev));
                }
            }
            resident = Some(t);
        }
    }

    #[test]
    fn dirty_bit_follows_writes(
        policy in policy_strategy(),
        write_first in any::<bool>(),
    ) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 1, ways: 1, policy });
        c.access(1, write_first, 0);
        let out = c.access(2, false, 0);
        prop_assert_eq!(out.evicted.map(|e| e.dirty), Some(write_first));
    }

    #[test]
    fn invalidate_then_probe_is_false(
        policy in policy_strategy(),
        addrs in prop::collection::vec(0u64..256, 1..64),
    ) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 16, ways: 4, policy });
        for a in &addrs {
            c.access(*a, false, 0);
        }
        for a in &addrs {
            c.invalidate(*a);
            prop_assert!(!c.probe(*a));
        }
        prop_assert_eq!(c.occupancy(), 0);
    }
}
