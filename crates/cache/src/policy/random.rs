//! Uniform-random replacement (control policy).

use super::ReplacementPolicy;

/// Random victim selection with an internal xorshift generator, so the cache
/// model stays deterministic for a given construction order.
#[derive(Debug, Clone)]
pub struct Random {
    ways: usize,
    state: u64,
}

impl Random {
    /// Creates random-replacement state for a `sets` x `ways` cache.
    pub fn new(_sets: usize, ways: usize) -> Self {
        Self {
            ways,
            state: 0x853C_49E6_748F_EA9B,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl ReplacementPolicy for Random {
    fn on_fill(&mut self, _set: usize, _way: usize, _signature: u64) {}

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        (self.next() % self.ways as u64) as usize
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _was_reused: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_in_range_and_varied() {
        let mut r = Random::new(4, 8);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.victim(0);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 6, "should hit most ways");
    }
}
