//! SHiP: Signature-based Hit Predictor replacement.
//!
//! Wu et al., "SHiP: Signature-based Hit Predictor for High Performance
//! Caching", MICRO 2011. Lines are tagged with a signature (here: a hash of
//! the requesting memory region, since the Metadata-Cache has no PC); a
//! Signature History Counter Table (SHCT) learns whether lines from that
//! signature tend to be re-referenced, and dead-on-arrival signatures are
//! inserted with a distant re-reference prediction.

use super::ReplacementPolicy;

const RRPV_MAX: u8 = 3;
const SHCT_ENTRIES: usize = 16 * 1024;
const SHCT_MAX: u8 = 7; // 3-bit counters

/// SHiP replacement state.
#[derive(Debug, Clone)]
pub struct Ship {
    ways: usize,
    rrpv: Vec<u8>,
    line_signature: Vec<u16>,
    shct: Vec<u8>,
}

impl Ship {
    /// Creates SHiP state for a `sets` x `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            line_signature: vec![0; sets * ways],
            // Weakly reused: start in the middle so early fills are long
            // (not distant) until evidence accumulates.
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    fn signature_index(signature: u64) -> usize {
        // Fibonacci hash into the SHCT.
        ((signature.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 46) as usize) % SHCT_ENTRIES
    }
}

impl ReplacementPolicy for Ship {
    fn on_fill(&mut self, set: usize, way: usize, signature: u64) {
        let idx = set * self.ways + way;
        let sig_idx = Self::signature_index(signature);
        self.line_signature[idx] = sig_idx as u16;
        self.rrpv[idx] = if self.shct[sig_idx] == 0 {
            RRPV_MAX // predicted dead-on-arrival
        } else {
            RRPV_MAX - 1
        };
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        let idx = set * self.ways + way;
        self.rrpv[idx] = 0;
        let sig = self.line_signature[idx] as usize;
        self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] == RRPV_MAX {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_evict(&mut self, set: usize, way: usize, was_reused: bool) {
        let idx = set * self.ways + way;
        if !was_reused {
            let sig = self.line_signature[idx] as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
        self.rrpv[idx] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreused_signature_becomes_dead_on_arrival() {
        let mut p = Ship::new(4, 4);
        let sig = 0xABCD;
        // Evict lines of this signature without reuse until SHCT hits zero.
        for _ in 0..4 {
            p.on_fill(0, 0, sig);
            p.on_evict(0, 0, false);
        }
        p.on_fill(0, 0, sig);
        assert_eq!(p.rrpv[0], RRPV_MAX, "dead signature inserts distant");
    }

    #[test]
    fn reused_signature_inserts_long() {
        let mut p = Ship::new(4, 4);
        let sig = 0x1234;
        p.on_fill(0, 0, sig);
        p.on_hit(0, 0);
        p.on_evict(0, 0, true);
        p.on_fill(0, 1, sig);
        assert_eq!(p.rrpv[1], RRPV_MAX - 1);
    }

    #[test]
    fn hits_train_shct_up() {
        let mut p = Ship::new(1, 2);
        let sig = 7u64;
        let idx = Ship::signature_index(sig);
        let before = p.shct[idx];
        p.on_fill(0, 0, sig);
        p.on_hit(0, 0);
        assert!(p.shct[idx] > before);
    }
}
