//! Re-Reference Interval Prediction policies: SRRIP and DRRIP.
//!
//! Jaleel et al., "High Performance Cache Replacement Using Re-Reference
//! Interval Prediction (RRIP)", ISCA 2010. DRRIP set-duels between SRRIP
//! (insert with a *long* re-reference prediction) and BRRIP (insert with a
//! *distant* prediction most of the time) using a PSEL counter and dedicated
//! leader sets.

use super::ReplacementPolicy;

/// Maximum re-reference prediction value for 2-bit RRPV counters.
const RRPV_MAX: u8 = 3;
/// BRRIP inserts with RRPV = MAX-1 once every `BRRIP_EPSILON` fills.
const BRRIP_EPSILON: u32 = 32;
/// 10-bit policy selector, per the DRRIP paper.
const PSEL_MAX: i32 = 1023;
/// Number of leader sets dedicated to each dueling policy.
const LEADERS_PER_POLICY: usize = 32;

/// Static RRIP with 2-bit re-reference prediction values.
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
}

impl Srrip {
    /// Creates SRRIP state for a `sets` x `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
        }
    }
}

fn rrip_victim(rrpv: &mut [u8], set: usize, ways: usize) -> usize {
    let base = set * ways;
    loop {
        for w in 0..ways {
            if rrpv[base + w] == RRPV_MAX {
                return w;
            }
        }
        for w in 0..ways {
            rrpv[base + w] += 1;
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_fill(&mut self, set: usize, way: usize, _signature: u64) {
        self.rrpv[set * self.ways + way] = RRPV_MAX - 1;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn victim(&mut self, set: usize) -> usize {
        rrip_victim(&mut self.rrpv, set, self.ways)
    }

    fn on_evict(&mut self, set: usize, way: usize, _was_reused: bool) {
        self.rrpv[set * self.ways + way] = RRPV_MAX;
    }
}

/// Which insertion flavour a set follows in DRRIP's set-dueling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    LeaderSrrip,
    LeaderBrrip,
    Follower,
}

/// Dynamic RRIP: set-duels SRRIP against BRRIP.
#[derive(Debug, Clone)]
pub struct Drrip {
    sets: usize,
    ways: usize,
    rrpv: Vec<u8>,
    psel: i32,
    brrip_fill_count: u32,
}

impl Drrip {
    /// Creates DRRIP state for a `sets` x `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            psel: PSEL_MAX / 2,
            brrip_fill_count: 0,
        }
    }

    fn role(&self, set: usize) -> DuelRole {
        // Spread leader sets through the cache with a simple stride pattern.
        let stride = (self.sets / (2 * LEADERS_PER_POLICY)).max(1);
        if set.is_multiple_of(stride) {
            let leader_index = set / stride;
            if leader_index < 2 * LEADERS_PER_POLICY {
                return if leader_index.is_multiple_of(2) {
                    DuelRole::LeaderSrrip
                } else {
                    DuelRole::LeaderBrrip
                };
            }
        }
        DuelRole::Follower
    }

    fn insert_rrpv(&mut self, set: usize) -> u8 {
        let use_brrip = match self.role(set) {
            DuelRole::LeaderSrrip => {
                // A miss in an SRRIP leader set counts against SRRIP.
                self.psel = (self.psel + 1).min(PSEL_MAX);
                false
            }
            DuelRole::LeaderBrrip => {
                self.psel = (self.psel - 1).max(0);
                true
            }
            DuelRole::Follower => self.psel > PSEL_MAX / 2,
        };
        if use_brrip {
            self.brrip_fill_count = self.brrip_fill_count.wrapping_add(1);
            if self.brrip_fill_count.is_multiple_of(BRRIP_EPSILON) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_MAX - 1
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn on_fill(&mut self, set: usize, way: usize, _signature: u64) {
        let rrpv = self.insert_rrpv(set);
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn victim(&mut self, set: usize) -> usize {
        rrip_victim(&mut self.rrpv, set, self.ways)
    }

    fn on_evict(&mut self, set: usize, way: usize, _was_reused: bool) {
        self.rrpv[set * self.ways + way] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srrip_hit_promotes_to_zero() {
        let mut p = Srrip::new(1, 4);
        p.on_fill(0, 0, 0);
        p.on_hit(0, 0);
        assert_eq!(p.rrpv[0], 0);
    }

    #[test]
    fn srrip_victim_prefers_distant_lines() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, 0);
        }
        p.on_hit(0, 2);
        // Ways 0,1,3 share RRPV=2; aging makes them reach 3 before way 2.
        let v = p.victim(0);
        assert_ne!(v, 2);
    }

    #[test]
    fn drrip_psel_moves_with_leader_misses() {
        let mut p = Drrip::new(4096, 8);
        let start = p.psel;
        // Fill (miss) repeatedly in an SRRIP leader set -> PSEL rises.
        for _ in 0..16 {
            p.on_fill(0, 0, 0);
        }
        assert!(p.psel > start);
    }

    #[test]
    fn drrip_brrip_inserts_distant_most_of_the_time() {
        let mut p = Drrip::new(4096, 8);
        p.psel = PSEL_MAX; // force BRRIP for followers
        let follower = 3; // not a leader under the stride pattern with 4096 sets
        assert_eq!(p.role(follower), DuelRole::Follower);
        let mut distant = 0;
        for _ in 0..BRRIP_EPSILON {
            p.on_fill(follower, 0, 0);
            if p.rrpv[follower * 8] == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant >= BRRIP_EPSILON as usize - 1);
    }

    #[test]
    fn victim_terminates_even_when_all_rrpv_zero() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, 0);
            p.on_hit(0, w);
        }
        let v = p.victim(0);
        assert!(v < 4);
    }
}
