//! Cache replacement policies.
//!
//! All policies implement [`ReplacementPolicy`], which the generic
//! [`SetAssocCache`](crate::SetAssocCache) drives on fills, hits and
//! victim selection. The set compared in Fig. 16 of the Attaché paper is
//! LRU (baseline), DRRIP and SHiP; SRRIP and Random are included because
//! DRRIP set-duels between SRRIP and BRRIP and Random is a useful control.

mod lru;
mod random;
mod rrip;
mod ship;

pub use lru::Lru;
pub use random::Random;
pub use rrip::{Drrip, Srrip};
pub use ship::Ship;

/// Selects a replacement policy when constructing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's Metadata-Cache baseline).
    #[default]
    Lru,
    /// Uniform-random victim selection.
    Random,
    /// Static re-reference interval prediction (Jaleel et al., ISCA 2010).
    Srrip,
    /// Dynamic RRIP with set-dueling between SRRIP and BRRIP.
    Drrip,
    /// Signature-based hit prediction (Wu et al., MICRO 2011).
    Ship,
}

impl PolicyKind {
    /// All policy kinds, for sweeps.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
    ];

    /// Instantiates the policy for a cache of `sets` x `ways`.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Random => Box::new(Random::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyKind::Drrip => Box::new(Drrip::new(sets, ways)),
            PolicyKind::Ship => Box::new(Ship::new(sets, ways)),
        }
    }
}

impl PolicyKind {
    /// A stable lowercase identifier for metric names and file stems
    /// (`lru`, `random`, `srrip`, `drrip`, `ship`).
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Drrip => "drrip",
            PolicyKind::Ship => "ship",
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
        };
        f.write_str(s)
    }
}

/// A cache replacement policy driven by the set-associative cache model.
///
/// The cache calls [`on_fill`](ReplacementPolicy::on_fill) when a line is
/// installed, [`on_hit`](ReplacementPolicy::on_hit) on every hit,
/// [`victim`](ReplacementPolicy::victim) when a full set needs a victim, and
/// [`on_evict`](ReplacementPolicy::on_evict) when a line leaves the cache.
pub trait ReplacementPolicy: core::fmt::Debug + Send {
    /// A line was installed into `(set, way)`. `signature` identifies the
    /// requester region (used by SHiP; others may ignore it).
    fn on_fill(&mut self, set: usize, way: usize, signature: u64);

    /// The line at `(set, way)` was hit.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Chooses a victim way within `set`; all ways are valid/occupied.
    fn victim(&mut self, set: usize) -> usize;

    /// The line at `(set, way)` was evicted. `was_reused` reports whether it
    /// ever hit after the fill (consumed by SHiP's SHCT training).
    fn on_evict(&mut self, set: usize, way: usize, was_reused: bool);
}
