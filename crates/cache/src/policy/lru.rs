//! Least-recently-used replacement.

use super::ReplacementPolicy;

/// True LRU via a monotonically increasing per-access timestamp.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    stamp: u64,
    last_use: Vec<u64>,
}

impl Lru {
    /// Creates LRU state for a `sets` x `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            stamp: 0,
            last_use: vec![0; sets * ways],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_use[set * self.ways + way] = self.stamp;
    }
}

impl ReplacementPolicy for Lru {
    fn on_fill(&mut self, set: usize, way: usize, _signature: u64) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.last_use[base + w])
            .expect("cache has at least one way")
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _was_reused: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(1, 4);
        for w in 0..4 {
            lru.on_fill(0, w, 0);
        }
        lru.on_hit(0, 0); // way 1 is now oldest
        assert_eq!(lru.victim(0), 1);
        lru.on_hit(0, 1);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn sets_are_independent(){
        let mut lru = Lru::new(2, 2);
        lru.on_fill(0, 0, 0);
        lru.on_fill(0, 1, 0);
        lru.on_fill(1, 1, 0);
        lru.on_fill(1, 0, 0);
        assert_eq!(lru.victim(0), 0);
        assert_eq!(lru.victim(1), 1);
    }
}
