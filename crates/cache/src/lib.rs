//! Cache models for the Attaché memory-compression stack.
//!
//! Provides a generic [`SetAssocCache`] with pluggable replacement policies
//! (LRU, Random, SRRIP, DRRIP with set-dueling, and SHiP with a signature
//! history counter table — the policies compared in Fig. 16 of the Attaché
//! paper), plus two concrete cache instances used by the simulator:
//!
//! * [`Llc`] — the 8MB/8-way shared last-level cache from Table II.
//! * [`MetadataCache`] — the on-controller Metadata-Cache baseline whose
//!   eviction/install traffic Attaché eliminates (Figs. 1, 5, 15, 16).
//!
//! # Example
//!
//! ```
//! use attache_cache::{CacheConfig, PolicyKind, SetAssocCache};
//!
//! let mut cache = SetAssocCache::new(CacheConfig {
//!     sets: 64,
//!     ways: 4,
//!     policy: PolicyKind::Lru,
//! });
//! assert!(!cache.access(0x1000, false, 0).hit);
//! assert!(cache.access(0x1000, false, 0).hit);
//! ```

#![warn(missing_docs)]

pub mod llc;
pub mod metadata_cache;
pub mod policy;
pub mod set_assoc;

pub use llc::{Llc, LlcAccess, LlcConfig};
pub use metadata_cache::{MetadataCache, MetadataCacheConfig, MetadataLookup};
pub use policy::PolicyKind;
pub use set_assoc::{AccessOutcome, CacheConfig, CacheStats, SetAssocCache};
