//! The shared last-level cache from the Attaché paper's baseline (Table II):
//! 8MB, 8-way, 64-byte lines, 20-cycle access latency.

use crate::policy::PolicyKind;
use crate::set_assoc::{CacheConfig, CacheStats, SetAssocCache};

/// Construction parameters for the [`Llc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in CPU cycles.
    pub latency_cycles: u64,
    /// Replacement policy.
    pub policy: PolicyKind,
}

impl LlcConfig {
    /// The Table II configuration: 8MB, 8-way, 64-byte lines, 20 cycles.
    pub fn table2() -> Self {
        Self {
            size_bytes: 8 << 20,
            ways: 8,
            line_bytes: 64,
            latency_cycles: 20,
            policy: PolicyKind::Lru,
        }
    }
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// The result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcAccess {
    /// Whether the access hit in the LLC.
    pub hit: bool,
    /// On a miss that displaced a dirty victim: the victim's **line
    /// address**, which must be written back to memory.
    pub writeback: Option<u64>,
}

/// A shared writeback LLC in front of the memory system.
///
/// # Example
///
/// ```
/// use attache_cache::{Llc, LlcConfig};
///
/// let mut llc = Llc::new(LlcConfig::table2());
/// let first = llc.access(0x4000, false);
/// assert!(!first.hit);
/// assert!(llc.access(0x4000, false).hit);
/// ```
#[derive(Debug)]
pub struct Llc {
    cache: SetAssocCache,
    config: LlcConfig,
}

impl Llc {
    /// Creates an empty LLC.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(config: LlcConfig) -> Self {
        let lines = config.size_bytes / config.line_bytes;
        assert!(
            lines.is_multiple_of(config.ways),
            "LLC lines ({lines}) must divide by ways ({})",
            config.ways
        );
        let sets = lines / config.ways;
        Self {
            cache: SetAssocCache::new(CacheConfig {
                sets,
                ways: config.ways,
                policy: config.policy,
            }),
            config,
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> LlcConfig {
        self.config
    }

    /// Accesses a **byte address**; returns hit/miss and any dirty victim
    /// (as a line address) that must be written back.
    pub fn access(&mut self, byte_addr: u64, write: bool) -> LlcAccess {
        let line_addr = byte_addr / self.config.line_bytes as u64;
        self.access_line(line_addr, write)
    }

    /// Checks residency of a **line address** without disturbing state.
    pub fn probe_line(&self, line_addr: u64) -> bool {
        self.cache.probe(line_addr)
    }

    /// Accesses a **line address** directly.
    pub fn access_line(&mut self, line_addr: u64, write: bool) -> LlcAccess {
        let signature = line_addr >> 6; // 4KB-region signature
        let out = self.cache.access(line_addr, write, signature);
        LlcAccess {
            hit: out.hit,
            writeback: out.evicted.filter(|e| e.dirty).map(|e| e.line_addr),
        }
    }

    /// The access latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency_cycles
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometry() {
        let llc = Llc::new(LlcConfig::table2());
        assert_eq!(llc.cache.capacity_lines(), (8 << 20) / 64);
        assert_eq!(llc.config().ways, 8);
        assert_eq!(llc.latency(), 20);
    }

    #[test]
    fn byte_addresses_in_same_line_hit() {
        let mut llc = Llc::new(LlcConfig::table2());
        llc.access(0x1000, false);
        assert!(llc.access(0x1038, false).hit, "same 64B line");
        assert!(!llc.access(0x1040, false).hit, "next line");
    }

    #[test]
    fn dirty_victim_produces_writeback() {
        let mut cfg = LlcConfig::table2();
        cfg.size_bytes = 64 * 8; // one set, 8 ways
        let mut llc = Llc::new(cfg);
        llc.access_line(0, true);
        for i in 1..=8 {
            llc.access_line(i, false);
        }
        // Line 0 was LRU and dirty; some access must have written it back.
        assert_eq!(llc.stats().dirty_evictions, 1);
    }

    #[test]
    fn streaming_misses_everywhere() {
        let mut llc = Llc::new(LlcConfig::table2());
        for i in 0..10_000u64 {
            assert!(!llc.access_line(i * 3 + 1_000_000, false).hit);
        }
    }
}
