//! A generic set-associative cache model.

use crate::policy::{PolicyKind, ReplacementPolicy};

/// Construction parameters for a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets. Need not be a power of two (indexing uses modulo).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
}

/// A line leaving the cache on a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The line address (block address, not byte address) of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty and needs a writeback.
    pub dirty: bool,
}

/// The result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// A victim displaced by the fill on a miss, if any.
    pub evicted: Option<Eviction>,
}

/// Running hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Displaced lines that were dirty (require a writeback).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    reused: bool,
}

/// A set-associative, writeback, allocate-on-write cache model with a
/// pluggable replacement policy.
///
/// Addresses given to the cache are **line addresses** (byte address divided
/// by the line size); the cache is agnostic to the line size itself.
///
/// # Example
///
/// ```
/// use attache_cache::{CacheConfig, PolicyKind, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig { sets: 16, ways: 2, policy: PolicyKind::Lru });
/// let first = c.access(7, true, 0);
/// assert!(!first.hit);
/// assert!(c.access(7, false, 0).hit);
/// assert_eq!(c.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets > 0, "cache must have at least one set");
        assert!(config.ways > 0, "cache must have at least one way");
        Self {
            config,
            lines: vec![Line::default(); config.sets * config.ways],
            policy: config.policy.build(config.sets, config.ways),
            stats: CacheStats::default(),
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (e.g. after warm-up) without flushing contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.config.sets * self.config.ways
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.config.sets as u64) as usize
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / self.config.sets as u64
    }

    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        tag * self.config.sets as u64 + set as u64
    }

    fn line(&self, set: usize, way: usize) -> &Line {
        &self.lines[set * self.config.ways + way]
    }

    fn line_mut(&mut self, set: usize, way: usize) -> &mut Line {
        &mut self.lines[set * self.config.ways + way]
    }

    /// Looks up `line_addr` without changing any state (no stats, no
    /// replacement updates).
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        (0..self.config.ways).any(|w| {
            let l = self.line(set, w);
            l.valid && l.tag == tag
        })
    }

    /// Accesses `line_addr`, filling on a miss.
    ///
    /// `write` marks the line dirty; `signature` feeds signature-based
    /// policies (pass 0 when unused).
    pub fn access(&mut self, line_addr: u64, write: bool, signature: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);

        for way in 0..self.config.ways {
            let line = self.line_mut(set, way);
            if line.valid && line.tag == tag {
                line.dirty |= write;
                line.reused = true;
                self.stats.hits += 1;
                self.policy.on_hit(set, way);
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                };
            }
        }

        self.stats.misses += 1;
        let way = match (0..self.config.ways).find(|&w| !self.line(set, w).valid) {
            Some(w) => w,
            None => {
                let victim = self.policy.victim(set);
                debug_assert!(victim < self.config.ways);
                victim
            }
        };

        let old = *self.line(set, way);
        let evicted = if old.valid {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
            self.policy.on_evict(set, way, old.reused);
            Some(Eviction {
                line_addr: self.addr_of(set, old.tag),
                dirty: old.dirty,
            })
        } else {
            None
        };

        *self.line_mut(set, way) = Line {
            tag,
            valid: true,
            dirty: write,
            reused: false,
        };
        self.policy.on_fill(set, way, signature);

        AccessOutcome { hit: false, evicted }
    }

    /// Marks an already-resident line dirty; returns whether it was present.
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for way in 0..self.config.ways {
            let line = self.line_mut(set, way);
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidates `line_addr` if present, returning its eviction record.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<Eviction> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for way in 0..self.config.ways {
            let line = *self.line(set, way);
            if line.valid && line.tag == tag {
                self.policy.on_evict(set, way, line.reused);
                *self.line_mut(set, way) = Line::default();
                return Some(Eviction {
                    line_addr,
                    dirty: line.dirty,
                });
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize, policy: PolicyKind) -> SetAssocCache {
        SetAssocCache::new(CacheConfig { sets, ways, policy })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(4, 2, PolicyKind::Lru);
        assert!(!c.access(10, false, 0).hit);
        assert!(c.access(10, false, 0).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn conflicting_lines_evict_lru() {
        let mut c = cache(1, 2, PolicyKind::Lru);
        c.access(0, false, 0);
        c.access(1, false, 0);
        c.access(0, false, 0); // 1 becomes LRU
        let out = c.access(2, false, 0);
        assert_eq!(out.evicted.map(|e| e.line_addr), Some(1));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = cache(1, 1, PolicyKind::Lru);
        c.access(5, true, 0);
        let out = c.access(6, false, 0);
        let ev = out.evicted.expect("must evict");
        assert_eq!(ev.line_addr, 5);
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut c = cache(1, 1, PolicyKind::Lru);
        c.access(5, false, 0);
        let out = c.access(6, false, 0);
        assert!(!out.evicted.expect("must evict").dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = cache(1, 1, PolicyKind::Lru);
        c.access(5, false, 0);
        c.access(5, true, 0);
        let out = c.access(6, false, 0);
        assert!(out.evicted.expect("must evict").dirty);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = cache(4, 2, PolicyKind::Lru);
        c.access(3, false, 0);
        assert!(c.probe(3));
        assert!(!c.probe(7));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(4, 2, PolicyKind::Lru);
        c.access(3, true, 0);
        let ev = c.invalidate(3).expect("present");
        assert!(ev.dirty);
        assert!(!c.probe(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = cache(4, 2, PolicyKind::Lru);
        assert!(!c.mark_dirty(9));
        c.access(9, false, 0);
        assert!(c.mark_dirty(9));
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = cache(8, 1, PolicyKind::Lru);
        let a = 8 * 5 + 3; // set 3, tag 5
        let b = 8 * 9 + 3; // same set, tag 9
        c.access(a, false, 0);
        let out = c.access(b, false, 0);
        assert_eq!(out.evicted.map(|e| e.line_addr), Some(a));
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = cache(4, 2, PolicyKind::Lru);
        assert_eq!(c.occupancy(), 0);
        for i in 0..6 {
            c.access(i, false, 0);
        }
        assert!(c.occupancy() <= 8);
        assert!(c.occupancy() >= 4);
    }

    #[test]
    fn all_policies_sustain_mixed_traffic() {
        for policy in PolicyKind::ALL {
            let mut c = cache(16, 4, policy);
            for i in 0..2_000u64 {
                // Hot 32-line set with a cold streaming component mixed in.
                let addr = if i % 4 < 3 { i % 32 } else { 1_000 + i };
                c.access(addr, i % 3 == 0, addr >> 4);
            }
            let s = c.stats();
            assert_eq!(s.accesses, 2_000, "{policy}");
            assert_eq!(s.hits + s.misses, s.accesses, "{policy}");
            assert!(s.hits > 0, "{policy} should get some hits");
        }
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        for policy in PolicyKind::ALL {
            let mut c = cache(16, 4, policy);
            for round in 0..4 {
                for addr in 0..48u64 {
                    let out = c.access(addr, false, 0);
                    if round > 0 && policy == PolicyKind::Lru {
                        assert!(out.hit, "{policy} round {round} addr {addr}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = cache(0, 1, PolicyKind::Lru);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = cache(1, 0, PolicyKind::Lru);
    }
}
