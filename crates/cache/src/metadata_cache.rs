//! The Metadata-Cache baseline that Attaché replaces.
//!
//! Compression metadata lives in a reserved DRAM region; the memory
//! controller caches recently-used metadata lines in a small on-controller
//! cache (Memzip-style, see §II-G / §IV-C.1 of the paper). Each 64-byte
//! metadata line holds 4 bits per data block and therefore covers the 128
//! blocks of one 8KB DRAM row (Fig. 7).
//!
//! The point of the Attaché paper is the *traffic* this cache generates:
//!
//! * a **miss** issues an extra memory *read* to install the metadata line;
//! * a **dirty eviction** issues an extra memory *write*.
//!
//! Both are surfaced in [`MetadataLookup`] so the simulator can inject them
//! into the memory system, reproducing Figs. 1, 5, 15 and 16.

use crate::policy::PolicyKind;
use crate::set_assoc::{CacheConfig, CacheStats, SetAssocCache};

/// Data blocks covered by one 64-byte metadata line (4 bits per block).
pub const BLOCKS_PER_METADATA_LINE: u64 = 128;

/// Construction parameters for a [`MetadataCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataCacheConfig {
    /// Capacity in bytes (the paper sweeps 64KB..1MB; 1MB is "impractically
    /// large" but used as the optimistic baseline).
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy (LRU in the baseline; DRRIP/SHiP for Fig. 16).
    pub policy: PolicyKind,
    /// Lookup latency in CPU cycles (8, same as an L2 per §V).
    pub latency_cycles: u64,
}

impl MetadataCacheConfig {
    /// The paper's optimistic 1MB LRU Metadata-Cache.
    pub fn paper_1mb() -> Self {
        Self {
            size_bytes: 1 << 20,
            ways: 8,
            policy: PolicyKind::Lru,
            latency_cycles: 8,
        }
    }

    /// Same geometry with a different capacity, for the Fig. 5 sweep.
    pub fn with_size(size_bytes: usize) -> Self {
        Self {
            size_bytes,
            ..Self::paper_1mb()
        }
    }
}

impl Default for MetadataCacheConfig {
    fn default() -> Self {
        Self::paper_1mb()
    }
}

/// The outcome of a metadata lookup for one data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataLookup {
    /// Whether the covering metadata line was resident.
    pub hit: bool,
    /// A miss requires one extra memory **read** (the install).
    pub install_read: bool,
    /// The fill displaced a dirty metadata line: one extra memory **write**.
    pub eviction_write: bool,
}

/// Traffic counters attributable to metadata management.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataTraffic {
    /// Extra memory reads (installs on metadata misses).
    pub install_reads: u64,
    /// Extra memory writes (dirty metadata evictions).
    pub eviction_writes: u64,
}

/// The on-controller Metadata-Cache.
///
/// # Example
///
/// ```
/// use attache_cache::{MetadataCache, MetadataCacheConfig};
///
/// let mut mc = MetadataCache::new(MetadataCacheConfig::paper_1mb());
/// let first = mc.lookup(0); // cold miss: install read
/// assert!(first.install_read);
/// let second = mc.lookup(1); // same 128-block region: hit
/// assert!(second.hit);
/// ```
#[derive(Debug)]
pub struct MetadataCache {
    cache: SetAssocCache,
    config: MetadataCacheConfig,
    traffic: MetadataTraffic,
}

impl MetadataCache {
    /// Creates an empty Metadata-Cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(config: MetadataCacheConfig) -> Self {
        let lines = config.size_bytes / 64;
        assert!(
            lines.is_multiple_of(config.ways),
            "metadata cache lines ({lines}) must divide by ways ({})",
            config.ways
        );
        Self {
            cache: SetAssocCache::new(CacheConfig {
                sets: lines / config.ways,
                ways: config.ways,
                policy: config.policy,
            }),
            config,
            traffic: MetadataTraffic::default(),
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> MetadataCacheConfig {
        self.config
    }

    fn metadata_line_of(data_line_addr: u64) -> u64 {
        data_line_addr / BLOCKS_PER_METADATA_LINE
    }

    /// Looks up the metadata for `data_line_addr` (a data **line** address),
    /// installing the covering metadata line on a miss.
    pub fn lookup(&mut self, data_line_addr: u64) -> MetadataLookup {
        let meta_line = Self::metadata_line_of(data_line_addr);
        let signature = meta_line >> 4;
        let out = self.cache.access(meta_line, false, signature);
        let eviction_write = out.evicted.map(|e| e.dirty).unwrap_or(false);
        if !out.hit {
            self.traffic.install_reads += 1;
        }
        if eviction_write {
            self.traffic.eviction_writes += 1;
        }
        MetadataLookup {
            hit: out.hit,
            install_read: !out.hit,
            eviction_write,
        }
    }

    /// Records a metadata **update** for `data_line_addr` (the block's
    /// compressibility changed on a write). The covering metadata line is
    /// installed if absent and marked dirty.
    pub fn update(&mut self, data_line_addr: u64) -> MetadataLookup {
        let meta_line = Self::metadata_line_of(data_line_addr);
        let signature = meta_line >> 4;
        let out = self.cache.access(meta_line, true, signature);
        let eviction_write = out.evicted.map(|e| e.dirty).unwrap_or(false);
        if !out.hit {
            self.traffic.install_reads += 1;
        }
        if eviction_write {
            self.traffic.eviction_writes += 1;
        }
        MetadataLookup {
            hit: out.hit,
            install_read: !out.hit,
            eviction_write,
        }
    }

    /// Fault-injection hook: drops the metadata line covering
    /// `data_line_addr` from the cache, if resident, discarding any dirty
    /// state (modelling a corrupted/invalidated cache entry, not an
    /// eviction). Returns whether a line was dropped. The next lookup in
    /// that 128-block region misses and re-installs — a performance
    /// perturbation only; the backing metadata region stays correct.
    pub fn fault_invalidate_covering(&mut self, data_line_addr: u64) -> bool {
        self.cache
            .invalidate(Self::metadata_line_of(data_line_addr))
            .is_some()
    }

    /// The lookup latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency_cycles
    }

    /// Cache-level statistics (hit rate for Figs. 5 and 16).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Extra memory traffic generated by metadata management (Fig. 15).
    pub fn traffic(&self) -> MetadataTraffic {
        self.traffic
    }

    /// Resets statistics and traffic counters after warm-up.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.traffic = MetadataTraffic::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_128_blocks() {
        let mut mc = MetadataCache::new(MetadataCacheConfig::paper_1mb());
        assert!(!mc.lookup(0).hit);
        for i in 1..BLOCKS_PER_METADATA_LINE {
            assert!(mc.lookup(i).hit, "block {i} shares the metadata line");
        }
        assert!(!mc.lookup(BLOCKS_PER_METADATA_LINE).hit);
    }

    #[test]
    fn one_mb_cache_has_16k_lines() {
        let mc = MetadataCache::new(MetadataCacheConfig::paper_1mb());
        assert_eq!(mc.cache.capacity_lines(), 16 * 1024);
    }

    #[test]
    fn updates_mark_dirty_and_cause_eviction_writes() {
        // Tiny cache: 1 set x 2 ways.
        let cfg = MetadataCacheConfig {
            size_bytes: 128,
            ways: 2,
            policy: PolicyKind::Lru,
            latency_cycles: 8,
        };
        let mut mc = MetadataCache::new(cfg);
        mc.update(0); // meta line 0 dirty
        mc.lookup(BLOCKS_PER_METADATA_LINE); // meta line 1
        let out = mc.lookup(2 * BLOCKS_PER_METADATA_LINE); // evicts line 0
        assert!(out.eviction_write);
        assert_eq!(mc.traffic().eviction_writes, 1);
    }

    #[test]
    fn clean_evictions_do_not_write() {
        let cfg = MetadataCacheConfig {
            size_bytes: 128,
            ways: 2,
            policy: PolicyKind::Lru,
            latency_cycles: 8,
        };
        let mut mc = MetadataCache::new(cfg);
        for i in 0..8 {
            let out = mc.lookup(i * BLOCKS_PER_METADATA_LINE);
            assert!(!out.eviction_write);
        }
        assert_eq!(mc.traffic().eviction_writes, 0);
        assert_eq!(mc.traffic().install_reads, 8);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut mc = MetadataCache::new(MetadataCacheConfig::paper_1mb());
        // A sequential sweep: 1 miss per 128 accesses => ~99.2% hit rate.
        for i in 0..128 * 100 {
            mc.lookup(i);
        }
        assert!(mc.stats().hit_rate() > 0.99);
    }
}
