//! Micro-benchmarks for the performance-critical components: the
//! compression engines (the paper assumes single-cycle hardware — the
//! software model must at least be cheap), the COPR predictor, the
//! Metadata-Cache, the scrambler, BLEM, and the DRAM channel scheduler.
//!
//! Hand-rolled harness (`harness = false`): each benchmark is timed over a
//! fixed iteration count after a warm-up pass, and reported as ns/iter.
//! Run with `cargo bench -p attache-bench`.

use attache_cache::{MetadataCache, MetadataCacheConfig};
use attache_compress::{bdi::Bdi, fpc::Fpc, Block, CompressionEngine, Compressor};
use attache_core::blem::Blem;
use attache_core::copr::{Copr, CoprConfig};
use attache_core::scramble::Scrambler;
use attache_dram::{
    AccessKind, AccessWidth, DramConfig, MemRequest, MemorySystem, Origin, PowerParams, SubrankId,
};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations (after `iters / 10` warm-up calls)
/// and prints ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t.elapsed();
    println!(
        "{name:<32} {:>12.1} ns/iter ({iters} iters)",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

fn sample_blocks() -> Vec<Block> {
    let mut blocks = Vec::new();
    blocks.push([0u8; 64]); // zeros
    let mut ints = [0u8; 64];
    for (i, c) in ints.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(i as u32 % 50).to_le_bytes());
    }
    blocks.push(ints); // FPC-friendly
    let mut ptrs = [0u8; 64];
    for (i, c) in ptrs.chunks_exact_mut(8).enumerate() {
        c.copy_from_slice(&(0x7F00_0000_1000u64 + 64 * i as u64).to_le_bytes());
    }
    blocks.push(ptrs); // BDI-friendly
    let mut rnd = [0u8; 64];
    let mut s = 0x1234_5678u64;
    for b in rnd.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *b = (s >> 32) as u8;
    }
    blocks.push(rnd); // incompressible
    blocks
}

fn bench_compression() {
    let blocks = sample_blocks();
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let engine = CompressionEngine::new();
    bench("bdi_compress_4blocks", 100_000, || {
        for blk in &blocks {
            black_box(bdi.compress(black_box(blk)));
        }
    });
    bench("fpc_compress_4blocks", 100_000, || {
        for blk in &blocks {
            black_box(fpc.compress(black_box(blk)));
        }
    });
    bench("engine_best_of_4blocks", 100_000, || {
        for blk in &blocks {
            black_box(engine.compress(black_box(blk)));
        }
    });
    let images: Vec<_> = blocks.iter().map(|b| engine.compress(b)).collect();
    bench("engine_decompress_4blocks", 100_000, || {
        for img in &images {
            black_box(engine.decompress(black_box(img)));
        }
    });
    bench_kernel_pairs(&blocks, &engine);
}

/// Scalar-vs-vectorized pairs for the rewritten kernels, plus engine
/// round-trips per corpus class. The `scalar` modules are the pre-SIMD
/// reference implementations kept for the equivalence property tests;
/// these rows track how much the lane kernels actually buy.
fn bench_kernel_pairs(blocks: &[Block], engine: &CompressionEngine) {
    use attache_compress::{bdi, fpc};
    bench("bdi_encode_scalar_4blocks", 100_000, || {
        for blk in blocks {
            black_box(bdi::scalar::best_encoding(black_box(blk)));
            black_box(bdi::scalar::compress(black_box(blk)));
        }
    });
    let bdi_engine = Bdi::new();
    bench("bdi_encode_vector_4blocks", 100_000, || {
        for blk in blocks {
            black_box(Bdi::best_encoding(black_box(blk)));
            black_box(bdi_engine.compress(black_box(blk)));
        }
    });
    let words: Vec<u32> = blocks
        .iter()
        .flat_map(|b| b.chunks_exact(4))
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    bench("fpc_classify_scalar_64w", 100_000, || {
        for &w in &words {
            black_box(fpc::scalar::classify_word(black_box(w)));
        }
    });
    bench("fpc_classify_branchless_64w", 100_000, || {
        for &w in &words {
            black_box(fpc::classify_word(black_box(w)));
        }
    });
    // Engine round-trips per corpus class: the early exit makes these
    // diverge (compressible lines often skip the FPC pass entirely).
    let mut rnd_corpus = Vec::new();
    let mut s = 0x9E37_79B9u64;
    for _ in 0..4 {
        let mut b = [0u8; 64];
        for byte in b.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *byte = (s >> 24) as u8;
        }
        rnd_corpus.push(b);
    }
    let corpora: [(&str, Vec<Block>); 3] = [
        ("engine_roundtrip_compressible", blocks[..3].to_vec()),
        ("engine_roundtrip_incompress", rnd_corpus),
        ("engine_roundtrip_mixed", blocks.to_vec()),
    ];
    for (name, corpus) in corpora {
        bench(name, 100_000, || {
            for blk in &corpus {
                let out = engine.compress(black_box(blk));
                black_box(engine.decompress(black_box(&out)));
            }
        });
    }
}

fn bench_predictor() {
    let mut copr = Copr::new(CoprConfig::paper_default(1 << 24));
    for i in 0..100_000u64 {
        copr.train(i % 50_000, i % 3 != 0);
    }
    let mut i = 0u64;
    bench("copr_predict", 1_000_000, || {
        i = i.wrapping_add(977);
        black_box(copr.predict(black_box(i % 60_000)));
    });
    let mut j = 0u64;
    bench("copr_train", 1_000_000, || {
        j = j.wrapping_add(977);
        copr.train(black_box(j % 60_000), !j.is_multiple_of(3));
    });
}

fn bench_metadata_cache() {
    let mut mc = MetadataCache::new(MetadataCacheConfig::paper_1mb());
    let mut i = 0u64;
    bench("metadata_cache_lookup", 1_000_000, || {
        i = i.wrapping_add(12_345);
        black_box(mc.lookup(black_box(i % (1 << 22))));
    });
}

fn bench_blem_and_scrambler() {
    let blocks = sample_blocks();
    let scrambler = Scrambler::new(7);
    bench("scramble_block", 500_000, || {
        black_box(scrambler.scramble(black_box(42), black_box(&blocks[2])));
    });
    let mut blem = Blem::new(7);
    let mut addr = 0u64;
    bench("blem_write_line_4blocks", 50_000, || {
        for blk in &blocks {
            addr = addr.wrapping_add(1);
            black_box(blem.write_line(addr, blk));
        }
    });
    bench("blem_probe_line", 500_000, || {
        black_box(blem.probe_line(black_box(5), black_box(&blocks[3])));
    });
}

fn bench_dram_channel() {
    bench("dram_channel_1k_random_reads", 200, || {
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        let mut state = 0x2545_F491u64;
        let mut issued = 0u64;
        let mut done = 0usize;
        while done < 1_000 {
            while issued < 1_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let line = state % (1 << 22);
                let width = if state & 1 == 0 {
                    AccessWidth::Full
                } else {
                    AccessWidth::Half(SubrankId(((state >> 1) & 1) as u8))
                };
                let req = MemRequest {
                    id: issued,
                    line_addr: line,
                    kind: AccessKind::Read,
                    width,
                    origin: Origin::Demand { core: 0 },
                    arrival: mem.now(),
                };
                if mem.enqueue(req).is_err() {
                    break;
                }
                issued += 1;
            }
            mem.tick();
            done += mem.drain_completions().len();
        }
        black_box(mem.stats());
    });
}

fn bench_sim_engines() {
    use attache_sim::{EngineKind, MetadataStrategyKind, SimConfig, System};
    use attache_workloads::Profile;
    // A short serialized pointer chase: the latency-bound regime where the
    // event engine's cycle skipping matters most. Both engines produce
    // bit-identical reports (enforced by the differential tests); this
    // tracks the wall-clock gap between them.
    let base = SimConfig::table2_baseline()
        .with_strategy(MetadataStrategyKind::Baseline)
        .with_instructions(6_000, 1_000);
    let engines = [
        ("sim_cycle_engine_chase_6k", EngineKind::Cycle),
        ("sim_event_engine_chase_6k", EngineKind::Event),
    ];
    for (name, engine) in engines {
        let cfg = base.clone().with_engine(engine);
        bench(name, 10, || {
            black_box(System::run_rate_mode(
                black_box(&cfg),
                Profile::chase(),
                42,
            ));
        });
    }
}

fn main() {
    println!("attache micro-benchmarks (hand-rolled harness, ns/iter)");
    bench_compression();
    bench_predictor();
    bench_metadata_cache();
    bench_blem_and_scrambler();
    bench_dram_channel();
    bench_sim_engines();
}
