//! The parallel, cached experiment-execution engine.
//!
//! Every figure in the paper is a (workload × strategy × config-override)
//! grid of independent, seeded simulations. This module turns such a grid
//! into jobs and executes them on a [`std::thread::scope`]-based worker
//! pool, with two guarantees:
//!
//! * **Determinism.** Each job's seed is derived from `(base_seed,
//!   workload, strategy, overrides)` — never from execution order — so a
//!   parallel run is bit-identical to a serial one (`ATTACHE_WORKERS=1`),
//!   and to any other worker count.
//! * **Memoization.** Completed [`RunReport`]s are cached under
//!   `results/cache/`, keyed by a stable hash of the *full* job
//!   configuration (run length, base seed, workload, strategy, overrides,
//!   format version). Figure binaries that share grid points — fig12,
//!   fig13 and fig14 all consume the same 22×4 sweep — recompute nothing
//!   the previous binary already ran. The canonical key is embedded in
//!   each cache file, so a hash collision or a stale file from an older
//!   layout reads as a miss, never as wrong data.
//!
//! Each job emits one progress line on start and one on finish (or a
//! single line on a cache hit), so long sweeps stay legible:
//!
//! ```text
//! [attache-grid] [ 17/88] mcf/Attache running...
//! [attache-grid] [ 17/88] mcf/Attache done in 12.3s (bus_cycles=1876543)
//! [attache-grid] [ 18/88] lbm/Ideal cached (bus_cycles=1345678)
//! ```

use attache_core::copr::CoprConfig;
use attache_sim::{report_io, MetadataStrategyKind, Observation, RunReport, SimConfig, System};
use attache_workloads::{mixes, MixWorkload, Profile};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::runner::ExperimentConfig;

/// A workload referenced by name: either one rate-mode profile replicated
/// across all cores, or a named 8-threaded mix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadRef {
    /// A rate-mode profile (all cores run the same benchmark).
    Rate(String),
    /// A mixed workload (one profile per core).
    Mix(String),
}

impl WorkloadRef {
    /// Resolves a catalog name: a profile name, else a mix name. The
    /// error lists every valid name, so a typo in a sweep script is a
    /// one-glance fix instead of a scavenger hunt.
    pub fn try_by_name(name: &str) -> Result<WorkloadRef, UnknownWorkload> {
        if Profile::by_name(name).is_some() {
            Ok(WorkloadRef::Rate(name.to_string()))
        } else if mixes().iter().any(|m| m.name == name) {
            Ok(WorkloadRef::Mix(name.to_string()))
        } else {
            Err(UnknownWorkload {
                name: name.to_string(),
            })
        }
    }

    /// Resolves a catalog name: a profile name, else a mix name.
    ///
    /// # Panics
    ///
    /// Panics when the name is in neither catalog; prefer
    /// [`try_by_name`](Self::try_by_name) where the name is user input.
    pub fn by_name(name: &str) -> WorkloadRef {
        Self::try_by_name(name).unwrap_or_else(|e| panic!("unknown workload {name:?}: {e}"))
    }

    /// The display name (as it appears in figures).
    pub fn name(&self) -> &str {
        match self {
            WorkloadRef::Rate(n) | WorkloadRef::Mix(n) => n,
        }
    }

    fn key(&self) -> String {
        match self {
            WorkloadRef::Rate(n) => format!("rate:{n}"),
            WorkloadRef::Mix(n) => format!("mix:{n}"),
        }
    }

    /// The workload's total occupied footprint in lines for `cores` cores
    /// (mirrors the `MemoryBackend` layout); sizes COPR's GI regions.
    fn occupied_lines(&self, cores: usize) -> u64 {
        match self {
            WorkloadRef::Rate(n) => {
                let p = Profile::by_name(n).expect("rate workload exists");
                p.footprint_lines * cores as u64
            }
            WorkloadRef::Mix(n) => {
                let mix = find_mix(n);
                mix.cores.iter().map(|p| p.footprint_lines).sum()
            }
        }
    }
}

/// Error for a workload name found in neither the profile nor the mix
/// catalog. The Display form lists every valid name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    name: String,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let profiles: Vec<String> = attache_workloads::all_rate_profiles()
            .iter()
            .map(|p| p.name.to_string())
            .collect();
        let mix_names: Vec<&'static str> = mixes().iter().map(|m| m.name).collect();
        write!(
            f,
            "workload {:?} is in neither catalog (profiles: {}; mixes: {})",
            self.name,
            profiles.join(", "),
            mix_names.join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Error for a mix name not in the mix catalog; Display lists the valid
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMix {
    name: String,
}

impl std::fmt::Display for UnknownMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&'static str> = mixes().iter().map(|m| m.name).collect();
        write!(
            f,
            "mix {:?} is not in the catalog (valid mixes: {})",
            self.name,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownMix {}

/// Looks a mix up by name, with an error listing the valid names.
pub fn try_find_mix(name: &str) -> Result<MixWorkload, UnknownMix> {
    mixes()
        .into_iter()
        .find(|m| m.name == name)
        .ok_or_else(|| UnknownMix {
            name: name.to_string(),
        })
}

fn find_mix(name: &str) -> MixWorkload {
    try_find_mix(name).unwrap_or_else(|e| panic!("unknown mix {name:?}: {e}"))
}

/// A declarative COPR composition (Fig. 17's ablation axis). Kept symbolic
/// so it can participate in cache keys; resolved to a [`CoprConfig`] sized
/// to the job's footprint at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoprVariant {
    /// Page-Prediction only.
    PaprOnly,
    /// PaPR plus the Global-Information regions.
    PaprGi,
    /// The full predictor (PaPR + GI + LiPR) — the paper default.
    Full,
}

impl CoprVariant {
    fn key(&self) -> &'static str {
        match self {
            CoprVariant::PaprOnly => "papr",
            CoprVariant::PaprGi => "papr-gi",
            CoprVariant::Full => "full",
        }
    }

    fn config(&self, total_lines: u64) -> CoprConfig {
        let lines = total_lines.max(1);
        match self {
            CoprVariant::PaprOnly => CoprConfig::papr_only(lines),
            CoprVariant::PaprGi => CoprConfig::papr_gi(lines),
            CoprVariant::Full => CoprConfig::paper_default(lines),
        }
    }
}

/// Per-job deviations from the harness-level configuration. All fields
/// default to "inherit"; every set field becomes part of the job identity
/// (and therefore of its derived seed and cache key).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Overrides {
    /// Measured instructions per core.
    pub instructions: Option<u64>,
    /// Warm-up instructions per core.
    pub warmup: Option<u64>,
    /// BLEM CID width in bits (Table I's axis).
    pub cid_bits: Option<u8>,
    /// COPR composition (Fig. 17's axis).
    pub copr: Option<CoprVariant>,
    /// Caps the workload's footprint (in cache lines), forcing DRAM-level
    /// reuse into smoke-length runs. Chaos and executor tests use this to
    /// guarantee written-back lines are re-read within a few thousand
    /// instructions; the paper's grids leave it unset.
    pub footprint_lines: Option<u64>,
    /// Test hook: run with a *poisoned* mirror oracle (plus a small
    /// trace ring and a shrunken LLC), so the job deterministically
    /// panics on its first checked re-read — exercising the resilient
    /// executor's quarantine-and-continue path end to end.
    pub mirror_poison: bool,
}

impl Overrides {
    fn key(&self) -> String {
        let mut parts = Vec::new();
        if let Some(i) = self.instructions {
            parts.push(format!("instr={i}"));
        }
        if let Some(w) = self.warmup {
            parts.push(format!("warmup={w}"));
        }
        if let Some(c) = self.cid_bits {
            parts.push(format!("cid={c}"));
        }
        if let Some(v) = self.copr {
            parts.push(format!("copr={}", v.key()));
        }
        if let Some(f) = self.footprint_lines {
            parts.push(format!("fp={f}"));
        }
        if self.mirror_poison {
            // Part of the job identity: a poisoned run must never share
            // a cache entry or a seed with the healthy grid point.
            parts.push("poison".to_string());
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// One grid point: a workload under a strategy with optional overrides.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// The workload to run.
    pub workload: WorkloadRef,
    /// The metadata strategy under test.
    pub strategy: MetadataStrategyKind,
    /// Per-job configuration deviations.
    pub overrides: Overrides,
}

impl JobSpec {
    /// A job with no overrides.
    pub fn new(workload: WorkloadRef, strategy: MetadataStrategyKind) -> Self {
        Self {
            workload,
            strategy,
            overrides: Overrides::default(),
        }
    }

    /// The job identity: everything that defines *what* is simulated,
    /// independent of run length. Feeds the seed derivation.
    fn identity(&self) -> String {
        format!(
            "{}|{}|{}",
            self.workload.key(),
            self.strategy,
            self.overrides.key()
        )
    }

    /// The deterministic per-job seed: a stable mix of the base seed and
    /// the job identity. Independent of grid composition and execution
    /// order, so parallel and serial runs agree bit-for-bit, and the same
    /// grid point always reuses its cache entry.
    pub fn seed(&self, base_seed: u64) -> u64 {
        splitmix64(base_seed ^ fnv1a64(self.identity().as_bytes()))
    }

    /// The canonical cache key: format version + run length + base seed +
    /// backend + shard count + identity. Changing any of these must miss
    /// the cache. The backend and shard markers are appended only when
    /// they deviate from the serial cycle reference, so every cache
    /// entry written before those axes existed stays valid — and, in
    /// particular, a serial run and an `ATTACHE_SHARDS=1` run share
    /// entries byte-for-byte (pinned by `tests/determinism.rs`).
    pub fn cache_key(&self, cfg: &ExperimentConfig) -> String {
        let backend = match cfg.backend {
            attache_sim::BackendKind::Cycle => "",
            attache_sim::BackendKind::Fast => "|b:fast",
        };
        let shards = if cfg.shards > 1 {
            format!("|sh:{}", cfg.shards)
        } else {
            String::new()
        };
        format!(
            "{}|i{}|w{}|s{}{}{}|{}",
            report_io::FORMAT_VERSION,
            cfg.instructions,
            cfg.warmup,
            cfg.seed,
            backend,
            shards,
            self.identity()
        )
    }

    pub(crate) fn cache_path(&self, cfg: &ExperimentConfig) -> PathBuf {
        let hash = fnv1a64(self.cache_key(cfg).as_bytes());
        cfg.cache_dir().join(format!("{hash:016x}.report"))
    }

    /// A short display label for progress lines.
    pub fn label(&self) -> String {
        let ov = self.overrides.key();
        if ov == "-" {
            format!("{}/{}", self.workload.name(), self.strategy)
        } else {
            format!("{}/{} [{ov}]", self.workload.name(), self.strategy)
        }
    }

    fn sim_config(&self, cfg: &ExperimentConfig) -> SimConfig {
        let mut sim = cfg.sim_config().with_strategy(self.strategy);
        if let Some(i) = self.overrides.instructions {
            sim.instructions_per_core = i;
        }
        if let Some(w) = self.overrides.warmup {
            sim.warmup_instructions_per_core = w;
        }
        if let Some(c) = self.overrides.cid_bits {
            sim.cid_bits = c;
        }
        if let Some(v) = self.overrides.copr {
            sim.copr = Some(v.config(self.workload.occupied_lines(sim.core.cores)));
        }
        if self.overrides.mirror_poison {
            sim = sim
                .with_mirror(true)
                .with_mirror_poison(true)
                .with_trace_ring(Some(64));
            // A tiny LLC guarantees dirty evictions and checked
            // re-reads even in smoke-length runs; without them the
            // poison never surfaces and the job cannot fail. Pair with
            // `Overrides::footprint_lines` so evicted lines get re-read.
            sim.llc.size_bytes = 16 << 10;
        }
        sim
    }

    /// Runs the simulation for this job (no cache involvement).
    pub fn execute(&self, cfg: &ExperimentConfig) -> RunReport {
        self.execute_observed(cfg).0
    }

    /// [`execute`](Self::execute) plus the run's observability output
    /// when any `ATTACHE_EPOCH`/`ATTACHE_TRACE_RING` knob is on.
    pub fn execute_observed(
        &self,
        cfg: &ExperimentConfig,
    ) -> (RunReport, Option<Observation>) {
        let sim = self.sim_config(cfg);
        let seed = self.seed(cfg.seed);
        match &self.workload {
            WorkloadRef::Rate(name) => {
                let mut p = Profile::by_name(name).expect("rate workload exists");
                if let Some(f) = self.overrides.footprint_lines {
                    p.footprint_lines = f;
                }
                System::run_rate_mode_observed(&sim, p, seed)
            }
            WorkloadRef::Mix(name) => {
                let mut mix = find_mix(name);
                if let Some(f) = self.overrides.footprint_lines {
                    for core in &mut mix.cores {
                        core.footprint_lines = f;
                    }
                }
                System::run_mix_observed(&sim, &mix, seed)
            }
        }
    }

    /// A file-system-safe stem for this job's observability exports:
    /// the label with separators flattened, plus the config tag.
    pub fn export_stem(&self, cfg: &ExperimentConfig) -> String {
        let mut stem = String::new();
        for c in self.label().chars() {
            match c {
                'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '_' | '.' => stem.push(c),
                _ => stem.push('_'),
            }
        }
        format!("{stem}_{}", cfg.tag())
    }
}

/// A declarative job matrix with a parallel, cached executor.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    jobs: Vec<JobSpec>,
}

impl Grid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one job.
    pub fn push(&mut self, job: JobSpec) -> &mut Self {
        self.jobs.push(job);
        self
    }

    /// Expands the (workloads × strategies) matrix, workloads-major — the
    /// row order the sweep figures expect.
    pub fn cross(workloads: &[WorkloadRef], strategies: &[MetadataStrategyKind]) -> Self {
        let mut grid = Self::new();
        for s in strategies {
            for w in workloads {
                grid.push(JobSpec::new(w.clone(), *s));
            }
        }
        grid
    }

    /// The jobs in execution order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Executes every job — in parallel on `cfg.workers()` threads, through
    /// the report cache unless disabled — and returns the reports in job
    /// order (independent of completion order).
    pub fn run(&self, cfg: &ExperimentConfig) -> Vec<RunReport> {
        let total = self.jobs.len();
        let workers = cfg.workers();
        let use_cache = cfg.cache_enabled();
        if !use_cache {
            eprintln!("[attache-grid] report cache disabled (--no-cache / ATTACHE_NO_CACHE)");
        }
        let started = AtomicUsize::new(0);
        let reports = parallel_map(workers, &self.jobs, |_, job| {
            let key = job.cache_key(cfg);
            let path = job.cache_path(cfg);
            if use_cache {
                if let Some(report) = load_cached(&path, &key) {
                    let k = started.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[attache-grid] [{k:>3}/{total}] {} cached (bus_cycles={})",
                        job.label(),
                        report.bus_cycles
                    );
                    return report;
                }
            }
            let k = started.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!("[attache-grid] [{k:>3}/{total}] {} running...", job.label());
            let t = Instant::now();
            let (report, observation) = job.execute_observed(cfg);
            eprintln!(
                "[attache-grid] [{k:>3}/{total}] {} done in {:.1}s (bus_cycles={})",
                job.label(),
                t.elapsed().as_secs_f64(),
                report.bus_cycles
            );
            if let Some(obs) = observation {
                // Metric/series exports land next to the results so a
                // sweep under ATTACHE_EPOCH leaves one time-series per
                // executed job. (Cached jobs skip the simulation, so no
                // observation exists for them; use ATTACHE_NO_CACHE to
                // force re-execution when collecting series.)
                let dir = cfg.results_dir().join("series");
                let stem = job.export_stem(cfg);
                if let Err(e) = report_io::write_observation(&dir, &stem, &obs) {
                    eprintln!("[attache-grid] warning: observability export failed: {e}");
                }
            }
            if use_cache {
                store_cached(&path, &report, &key);
            }
            report
        });
        reports
    }
}

pub(crate) fn load_cached(path: &PathBuf, key: &str) -> Option<RunReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = report_io::from_text(&text, Some(key));
    if report.is_none() {
        // A torn write, bit rot, or a stale file from an older layout:
        // all are recoverable by recomputing, so degrade to a miss — but
        // loudly, because a cache that silently churns is a perf bug.
        eprintln!(
            "[attache-grid] warning: cache file {} is corrupt or stale; ignoring it (cache miss)",
            path.display()
        );
    }
    report
}

pub(crate) fn store_cached(path: &PathBuf, report: &RunReport, key: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Write-then-rename so a crashed or concurrent run can never leave a
    // torn file that a later run would half-parse.
    let tmp = path.with_extension("tmp");
    let text = report_io::to_text(report, key);
    match std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => {}
        Err(e) => eprintln!(
            "[attache-grid] warning: could not cache report at {}: {e}",
            path.display()
        ),
    }
}

/// Runs `f` over `items` on a scoped worker pool and returns the results
/// in item order (not completion order). The generic workhorse beneath
/// [`Grid::run`], also used directly by the functional sweeps (Figs. 4, 5,
/// 8 and 16).
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed item")
        })
        .collect()
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attache_sim::BackendKind;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            instructions: 10_000,
            warmup: 2_000,
            seed: 42,
            backend: BackendKind::Cycle,
            shards: 1,
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct_across_grid_points() {
        let a = JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Attache);
        let b = JobSpec::new(WorkloadRef::Rate("lbm".into()), MetadataStrategyKind::Attache);
        let c = JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Baseline);
        assert_eq!(a.seed(42), a.seed(42), "same job, same seed");
        assert_ne!(a.seed(42), b.seed(42), "workload changes the seed");
        assert_ne!(a.seed(42), c.seed(42), "strategy changes the seed");
        assert_ne!(a.seed(42), a.seed(43), "base seed changes the seed");
        let mut d = a.clone();
        d.overrides.cid_bits = Some(10);
        assert_ne!(a.seed(42), d.seed(42), "overrides change the seed");
    }

    #[test]
    fn cache_key_covers_run_length_and_seed() {
        let job = JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Attache);
        let base = job.cache_key(&cfg());
        let mut longer = cfg();
        longer.instructions = 20_000;
        assert_ne!(base, job.cache_key(&longer));
        let mut reseeded = cfg();
        reseeded.seed = 7;
        assert_ne!(base, job.cache_key(&reseeded));
    }

    #[test]
    fn changed_config_hash_misses_the_report_cache() {
        // The memo must be keyed by the *full* job configuration: storing
        // a report under one config and probing with a changed one must
        // miss — both at the path level (different file) and at the
        // content level (embedded canonical key rejects the stale file
        // even if the paths ever collided).
        let job = JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Attache);
        let base = ExperimentConfig {
            instructions: 300,
            warmup: 0,
            seed: 42,
            backend: BackendKind::Cycle,
            shards: 1,
        };
        let report = job.execute(&base);
        let dir = std::env::temp_dir().join(format!(
            "attache-grid-cache-test-{}",
            std::process::id()
        ));
        let path = dir.join("report.report");
        let key = job.cache_key(&base);
        store_cached(&path, &report, &key);
        assert_eq!(
            load_cached(&path, &key),
            Some(report),
            "identical config must hit the memo (report roundtrips bit-exactly)"
        );
        for changed in [
            ExperimentConfig { instructions: 600, warmup: 0, seed: 42, backend: BackendKind::Cycle, shards: 1 },
            ExperimentConfig { instructions: 300, warmup: 100, seed: 42, backend: BackendKind::Cycle, shards: 1 },
            ExperimentConfig { instructions: 300, warmup: 0, seed: 43, backend: BackendKind::Cycle, shards: 1 },
            ExperimentConfig { instructions: 300, warmup: 0, seed: 42, backend: BackendKind::Fast, shards: 1 },
            ExperimentConfig { instructions: 300, warmup: 0, seed: 42, backend: BackendKind::Cycle, shards: 2 },
        ] {
            let changed_key = job.cache_key(&changed);
            assert_ne!(key, changed_key, "config change must change the key");
            assert_ne!(
                job.cache_path(&base),
                job.cache_path(&changed),
                "config change must change the cache file"
            );
            assert!(
                load_cached(&path, &changed_key).is_none(),
                "a stored report must never satisfy a changed config"
            );
        }
        // An override is part of the job identity, so it must re-key too.
        let mut narrowed = job.clone();
        narrowed.overrides.cid_bits = Some(10);
        assert_ne!(key, narrowed.cache_key(&base));
        assert_ne!(job.cache_path(&base), narrowed.cache_path(&base));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_is_workloads_major_per_strategy() {
        let w = [
            WorkloadRef::Rate("mcf".into()),
            WorkloadRef::Rate("lbm".into()),
        ];
        let s = [
            MetadataStrategyKind::Baseline,
            MetadataStrategyKind::Attache,
        ];
        let grid = Grid::cross(&w, &s);
        let labels: Vec<String> = grid.jobs().iter().map(|j| j.label()).collect();
        assert_eq!(
            labels,
            [
                "mcf/Baseline",
                "lbm/Baseline",
                "mcf/Attache",
                "lbm/Attache"
            ]
        );
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(7, &items, |i, &x| {
            // Finish out of order on purpose.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workload_by_name_resolves_both_catalogs() {
        assert_eq!(
            WorkloadRef::by_name("mcf"),
            WorkloadRef::Rate("mcf".into())
        );
        assert_eq!(
            WorkloadRef::by_name("mix1"),
            WorkloadRef::Mix("mix1".into())
        );
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = WorkloadRef::by_name("no-such-benchmark");
    }

    #[test]
    #[should_panic(expected = "unknown mix")]
    fn unknown_mix_panics() {
        let _ = find_mix("no-such-mix");
    }

    #[test]
    fn unknown_name_errors_list_the_catalogs() {
        let e = WorkloadRef::try_by_name("no-such-benchmark").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("no-such-benchmark"), "{msg}");
        assert!(msg.contains("mcf"), "must list profiles: {msg}");
        assert!(msg.contains("mix1"), "must list mixes: {msg}");
        let e = try_find_mix("no-such-mix").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("mix1"), "must list mixes: {msg}");
    }

    #[test]
    fn corrupt_cache_file_reads_as_miss() {
        let dir = std::env::temp_dir().join(format!(
            "attache-grid-corrupt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.report");
        std::fs::write(&path, "}{ definitely not a report \u{0}\u{1}").unwrap();
        assert!(
            load_cached(&path, "any-key").is_none(),
            "garbage must degrade to a miss, not a panic or a bogus report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fast_backend_re_keys_the_cache_and_cycle_keys_stay_legacy_stable() {
        // The backend marker must split the cache (a fast-model report
        // can never satisfy a cycle probe) while leaving cycle-model keys
        // byte-identical to the pre-backend-axis format, so the existing
        // cache population survives the upgrade.
        let job = JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Attache);
        let cycle = cfg();
        let mut fast = cfg();
        fast.backend = BackendKind::Fast;
        assert!(
            !job.cache_key(&cycle).contains("|b:"),
            "cycle keys must not grow a backend marker: {}",
            job.cache_key(&cycle)
        );
        assert!(job.cache_key(&fast).contains("|b:fast|"));
        assert_ne!(job.cache_path(&cycle), job.cache_path(&fast));
        // The sim config actually routes the selection to the simulator.
        assert_eq!(job.sim_config(&fast).backend, BackendKind::Fast);
        assert_eq!(job.sim_config(&cycle).backend, BackendKind::Cycle);
    }

    #[test]
    fn poison_override_changes_the_job_identity() {
        let healthy =
            JobSpec::new(WorkloadRef::Rate("mcf".into()), MetadataStrategyKind::Attache);
        let mut poisoned = healthy.clone();
        poisoned.overrides.mirror_poison = true;
        assert_ne!(healthy.seed(42), poisoned.seed(42));
        assert_ne!(healthy.cache_key(&cfg()), poisoned.cache_key(&cfg()));
        assert!(poisoned.label().contains("poison"), "{}", poisoned.label());
        let sim = poisoned.sim_config(&cfg());
        assert!(sim.mirror && sim.mirror_poison);
        assert_eq!(sim.trace_ring, Some(64));
    }
}
