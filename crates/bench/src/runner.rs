//! Run-configuration plumbing shared by the figure binaries.
//!
//! Environment knobs (all optional; see EXPERIMENTS.md):
//!
//! * `ATTACHE_QUICK` — fast smoke configuration (40k/8k instructions).
//! * `ATTACHE_INSTR` / `ATTACHE_WARMUP` — run length per core.
//! * `ATTACHE_SEED` — base seed; per-job seeds are derived from it.
//! * `ATTACHE_WORKERS` — worker threads for grid execution (default: all
//!   cores). Results are bit-identical for any worker count.
//! * `ATTACHE_RESULTS` — results directory (default `results`); the
//!   per-job report cache lives in its `cache/` subdirectory.
//! * `ATTACHE_NO_CACHE` — skip the report cache (recompute and do not
//!   save). Passing `--no-cache` to a figure binary does the same.
//! * `ATTACHE_BACKEND` — memory timing backend (`cycle` | `fast`; see
//!   docs/BACKENDS.md). An unknown value warns and falls back to the
//!   cycle reference — it must never kill a sweep mid-grid.

use attache_sim::{backend_from_env, env_u64, shards_from_env, BackendKind, SimConfig};
use std::path::PathBuf;

/// Harness-level configuration, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// Base seed.
    pub seed: u64,
    /// Memory timing backend (`ATTACHE_BACKEND`). Part of every job's
    /// identity: a fast-model report must never satisfy a cycle-model
    /// cache probe.
    pub backend: BackendKind,
    /// Channel shards for the cycle backend (`ATTACHE_SHARDS`, default
    /// `1`). Sharded results are bit-identical to serial, so this is
    /// *not* part of a job's identity at the default — `1` leaves tags
    /// and cache keys byte-for-byte unchanged.
    pub shards: usize,
}

impl ExperimentConfig {
    /// Reads the configuration from the environment (see the crate docs).
    pub fn from_env() -> Self {
        if std::env::var("ATTACHE_QUICK").is_ok() {
            return Self {
                instructions: env_u64("ATTACHE_INSTR", 40_000),
                warmup: env_u64("ATTACHE_WARMUP", 8_000),
                seed: env_u64("ATTACHE_SEED", 42),
                backend: backend_from_env(),
                shards: shards_from_env(),
            };
        }
        Self {
            instructions: env_u64("ATTACHE_INSTR", 600_000),
            warmup: env_u64("ATTACHE_WARMUP", 100_000),
            seed: env_u64("ATTACHE_SEED", 42),
            backend: backend_from_env(),
            shards: shards_from_env(),
        }
    }

    /// The Table II simulator configuration at this run length.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::table2_baseline()
            .with_instructions(self.instructions, self.warmup)
            .with_backend(self.backend)
            .with_shards(self.shards)
    }

    /// A short tag identifying this configuration in cache file names.
    /// The backend and shard markers appear only when they deviate from
    /// the serial cycle reference, so pre-existing exports keep their
    /// names (and, because sharding is bit-identical, a `_sh<n>` suffix
    /// only labels *how* a file was produced, never different numbers).
    pub fn tag(&self) -> String {
        let base = format!("i{}_w{}_s{}", self.instructions, self.warmup, self.seed);
        let base = match self.backend {
            BackendKind::Cycle => base,
            BackendKind::Fast => format!("{base}_bfast"),
        };
        if self.shards > 1 {
            format!("{base}_sh{}", self.shards)
        } else {
            base
        }
    }

    /// Worker threads for grid execution: `ATTACHE_WORKERS`, defaulting to
    /// the machine's parallelism. Per-job seeds make results independent
    /// of the worker count, so parallel is safe to default to.
    pub fn workers(&self) -> usize {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (env_u64("ATTACHE_WORKERS", default as u64) as usize).max(1)
    }

    /// Whether the per-job report cache is enabled. Disabled by the
    /// `ATTACHE_NO_CACHE` environment variable or a `--no-cache`
    /// command-line argument.
    pub fn cache_enabled(&self) -> bool {
        std::env::var_os("ATTACHE_NO_CACHE").is_none()
            && !std::env::args().any(|a| a == "--no-cache")
    }

    /// The results directory (`ATTACHE_RESULTS`, default `results`).
    pub fn results_dir(&self) -> PathBuf {
        PathBuf::from(std::env::var("ATTACHE_RESULTS").unwrap_or_else(|_| "results".into()))
    }

    /// The per-job report cache directory (`<results>/cache`).
    pub fn cache_dir(&self) -> PathBuf {
        self.results_dir().join("cache")
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Geometric mean of a non-empty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_marks_only_non_default_backends() {
        // Export stems keep their pre-backend-axis names on the cycle
        // reference; only a deviating backend earns a marker.
        let mut ec = ExperimentConfig {
            instructions: 10_000,
            warmup: 2_000,
            seed: 42,
            backend: BackendKind::Cycle,
            shards: 1,
        };
        assert_eq!(ec.tag(), "i10000_w2000_s42");
        ec.backend = BackendKind::Fast;
        assert_eq!(ec.tag(), "i10000_w2000_s42_bfast");
        assert_eq!(ec.sim_config().backend, BackendKind::Fast);
    }

    #[test]
    fn tag_marks_only_non_serial_shard_counts() {
        // Sharded runs are bit-identical, so shards=1 must leave the tag
        // byte-for-byte unchanged; a threaded run is labeled.
        let mut ec = ExperimentConfig {
            instructions: 10_000,
            warmup: 2_000,
            seed: 42,
            backend: BackendKind::Cycle,
            shards: 1,
        };
        assert_eq!(ec.tag(), "i10000_w2000_s42");
        ec.shards = 4;
        assert_eq!(ec.tag(), "i10000_w2000_s42_sh4");
        assert_eq!(ec.sim_config().shards, 4);
        ec.backend = BackendKind::Fast;
        assert_eq!(ec.tag(), "i10000_w2000_s42_bfast_sh4");
    }

    #[test]
    fn geo_mean_of_identical_values() {
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_is_scale_symmetric() {
        let g = geo_mean(&[0.5, 2.0]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geo_mean_rejects_empty() {
        let _ = geo_mean(&[]);
    }
}
