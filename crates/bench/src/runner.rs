//! Run-configuration plumbing shared by the figure binaries.

use attache_sim::SimConfig;

/// Harness-level configuration, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Measured instructions per core.
    pub instructions: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// Base seed.
    pub seed: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ExperimentConfig {
    /// Reads the configuration from the environment (see the crate docs).
    pub fn from_env() -> Self {
        if std::env::var("ATTACHE_QUICK").is_ok() {
            return Self {
                instructions: env_u64("ATTACHE_INSTR", 40_000),
                warmup: env_u64("ATTACHE_WARMUP", 8_000),
                seed: env_u64("ATTACHE_SEED", 42),
            };
        }
        Self {
            instructions: env_u64("ATTACHE_INSTR", 600_000),
            warmup: env_u64("ATTACHE_WARMUP", 100_000),
            seed: env_u64("ATTACHE_SEED", 42),
        }
    }

    /// The Table II simulator configuration at this run length.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::table2_baseline().with_instructions(self.instructions, self.warmup)
    }

    /// A short tag identifying this configuration in cache file names.
    pub fn tag(&self) -> String {
        format!("i{}_w{}_s{}", self.instructions, self.warmup, self.seed)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Geometric mean of a non-empty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_identical_values() {
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_is_scale_symmetric() {
        let g = geo_mean(&[0.5, 2.0]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geo_mean_rejects_empty() {
        let _ = geo_mean(&[]);
    }
}
