//! Fig. 12: performance of Metadata-Cache / Attaché / Ideal, normalized to
//! the no-compression baseline.
//!
//! Paper: Attaché 15.3% average speedup (ideal 17%), Metadata-Cache only
//! 8%, with a 17% *slowdown* on RAND.

use attache_bench::{geo_mean, ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 12 — speedup over the no-compression baseline");
    println!(
        "{:<12} {:>14} {:>10} {:>8}",
        "workload", "MetadataCache", "Attache", "Ideal"
    );
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in ResultSet::workload_names() {
        let base = set.get(&w, MetadataStrategyKind::Baseline).expect("baseline row");
        let mut cells = Vec::new();
        for (i, s) in [
            MetadataStrategyKind::MetadataCache,
            MetadataStrategyKind::Attache,
            MetadataStrategyKind::Oracle,
        ]
        .into_iter()
        .enumerate()
        {
            let r = set.get(&w, s).expect("strategy row");
            let speedup = r.speedup_vs(base);
            per_strategy[i].push(speedup);
            cells.push(speedup);
        }
        println!(
            "{:<12} {:>13.3}x {:>9.3}x {:>7.3}x",
            w, cells[0], cells[1], cells[2]
        );
    }
    println!();
    let gm: Vec<f64> = per_strategy.iter().map(|v| geo_mean(v)).collect();
    println!(
        "geo-mean     {:>13.3}x {:>9.3}x {:>7.3}x",
        gm[0], gm[1], gm[2]
    );
    println!();
    println!("paper (average): MetadataCache 1.08x | Attache 1.153x | Ideal 1.17x");
    println!(
        "measured       : MetadataCache {:.3}x | Attache {:.3}x | Ideal {:.3}x",
        gm[0], gm[1], gm[2]
    );
}
