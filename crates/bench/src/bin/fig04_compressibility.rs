//! Fig. 4: the percentage of cachelines compressible to ≤30 bytes, per
//! workload — measured by running the real BDI/FPC engines over the
//! synthesized memory images.
//!
//! Paper: 50% of cachelines compress to 30B on average.

use attache_bench::{parallel_map, ExperimentConfig};
use attache_compress::CompressionEngine;
use attache_workloads::{all_rate_profiles, DataSynthesizer};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let samples = 40_000u64;

    println!("Fig. 4 — cachelines compressible to 30 bytes");
    println!("{:<12} {:>10} {:>10}", "workload", "target", "measured");
    let profiles = all_rate_profiles();
    // Each workload's measurement is independent; fan out across cores.
    let measured = parallel_map(cfg.workers(), &profiles, |_, p| {
        let engine = CompressionEngine::new();
        let synth = DataSynthesizer::new(42);
        (0..samples)
            .filter(|&i| {
                // Sample lines spread through the footprint.
                let line = (i * 2_654_435_761) % p.footprint_lines;
                engine.fits_subrank(&synth.block_for(&p.data, line))
            })
            .count() as f64
            / samples as f64
    });
    let mut acc = 0.0;
    for (p, compressible) in profiles.iter().zip(&measured) {
        acc += compressible;
        println!(
            "{:<12} {:>9.1}% {:>9.1}%",
            p.name,
            100.0 * p.data.expected_compressible(),
            100.0 * compressible
        );
    }
    println!();
    println!("paper   : 50% average");
    println!("measured: {:.1}% average", 100.0 * acc / profiles.len() as f64);
}
