//! Fig. 4: the percentage of cachelines compressible to ≤30 bytes, per
//! workload — measured by running the real BDI/FPC engines over the
//! synthesized memory images.
//!
//! Paper: 50% of cachelines compress to 30B on average.

use attache_compress::CompressionEngine;
use attache_workloads::{all_rate_profiles, DataSynthesizer};

fn main() {
    let engine = CompressionEngine::new();
    let synth = DataSynthesizer::new(42);
    let samples = 40_000u64;

    println!("Fig. 4 — cachelines compressible to 30 bytes");
    println!("{:<12} {:>10} {:>10}", "workload", "target", "measured");
    let mut acc = 0.0;
    let profiles = all_rate_profiles();
    for p in &profiles {
        let compressible = (0..samples)
            .filter(|&i| {
                // Sample lines spread through the footprint.
                let line = (i * 2_654_435_761) % p.footprint_lines;
                engine.fits_subrank(&synth.block_for(&p.data, line))
            })
            .count() as f64
            / samples as f64;
        acc += compressible;
        println!(
            "{:<12} {:>9.1}% {:>9.1}%",
            p.name,
            100.0 * p.data.expected_compressible(),
            100.0 * compressible
        );
    }
    println!();
    println!("paper   : 50% average");
    println!("measured: {:.1}% average", 100.0 * acc / profiles.len() as f64);
}
