//! Sharded-execution benchmark: the production-scale 8-channel /
//! 64-core configuration run serially and at `ATTACHE_SHARDS ∈ {2,4,8}`.
//!
//! Every sharded run's `RunReport` is asserted byte-identical to the
//! serial reference before any timing is reported — the speedup numbers
//! are only meaningful because the work is provably the same. Wall
//! times, per-shard-count speedups and the host's available parallelism
//! are written to `<results>/BENCH_shards.json` plus a dated section in
//! `<results>/BENCH_trajectory.tsv`. Recording the host parallelism is
//! not decoration: on a single-hardware-thread host the rendezvous
//! overhead makes speedups *below* 1.0 the honest expectation, and the
//! JSON has to say so rather than let a reader assume an 8-thread run.
//!
//! The per-core run length is `ATTACHE_INSTR / 8` (the 64-core config
//! retires the same total work as an 8-core run at `ATTACHE_INSTR`), so
//! `ATTACHE_QUICK` / `ATTACHE_INSTR` / `ATTACHE_WARMUP` control cost as
//! everywhere else. Run via `scripts/bench.sh` or
//! `cargo run --release -p attache-bench --bin bench_shards`.

use attache_bench::ExperimentConfig;
use attache_sim::{BackendKind, MetadataStrategyKind, System};
use attache_workloads::scale_mix;
use std::fmt::Write as _;
use std::time::Instant;

const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Repeat count per shard count (`ATTACHE_BENCH_REPEAT`, default 2).
/// Runs are interleaved across shard counts and the per-count minimum is
/// reported, discarding transient machine noise.
fn repeats() -> usize {
    std::env::var("ATTACHE_BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("post-epoch clock")
        .as_secs();
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let ec = ExperimentConfig::from_env();
    // The shard axis IS the measurement; pin the backend to the cycle
    // model (the fast model ignores shards) and derive the per-core run
    // length so total retired work matches an 8-core ATTACHE_INSTR run.
    let instr = (ec.instructions / 8).max(1_000);
    let warmup = ec.warmup / 8;
    let base = ec
        .sim_config()
        .with_backend(BackendKind::Cycle)
        .with_instructions(instr, warmup)
        .with_strategy(MetadataStrategyKind::Attache);
    let mut cfg = attache_sim::SimConfig::scale8_baseline();
    cfg.strategy = base.strategy;
    cfg.backend = base.backend;
    cfg.engine = base.engine;
    cfg.instructions_per_core = base.instructions_per_core;
    cfg.warmup_instructions_per_core = base.warmup_instructions_per_core;
    let mix = scale_mix(cfg.core.cores);

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "shard benchmark: 8 channels x 64 cores, {instr} instr + {warmup} warm-up per core, \
         seed {}, host threads {host_threads}",
        ec.seed
    );
    println!("{:>6} {:>11} {:>9}  report", "shards", "wall [s]", "speedup");

    let mut walls = vec![f64::INFINITY; SHARD_COUNTS.len()];
    let mut reference = None;
    for _ in 0..repeats() {
        for (i, &n) in SHARD_COUNTS.iter().enumerate() {
            let run_cfg = cfg.clone().with_shards(n);
            let t = Instant::now();
            let report = System::run_mix(&run_cfg, &mix, ec.seed);
            walls[i] = walls[i].min(t.elapsed().as_secs_f64());
            // Bit-identity first, timing second: a sharded run that
            // diverged from serial would make the speedup meaningless.
            match &reference {
                None => reference = Some(report),
                Some(r) => assert_eq!(
                    *r, report,
                    "shards={n}: RunReport diverged from the serial reference"
                ),
            }
        }
    }

    let serial = walls[0];
    let mut rows = String::new();
    let mut best = 0.0f64;
    for (i, &n) in SHARD_COUNTS.iter().enumerate() {
        let speedup = serial / walls[i];
        if n > 1 {
            best = best.max(speedup);
        }
        println!(
            "{n:>6} {:>11.3} {:>8.2}x  bit-identical",
            walls[i], speedup
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"shards\": {n}, \"wall_secs\": {:.6}, \"speedup\": {speedup:.3}}}",
            walls[i],
        );
    }

    let date = today_utc();
    let report = reference.expect("at least one run");
    let json = format!(
        "{{\n  \"date\": \"{date}\",\n  \"config\": \"scale8 (8ch x 64 cores, Attache, mix)\",\n  \
         \"instructions_per_core\": {instr},\n  \"warmup_per_core\": {warmup},\n  \
         \"seed\": {},\n  \"host_threads\": {host_threads},\n  \
         \"bus_cycles\": {},\n  \"reports_bit_identical\": true,\n  \
         \"cases\": [\n{rows}\n  ],\n  \"best_speedup\": {best:.3}\n}}\n",
        ec.seed, report.bus_cycles,
    );
    let dir = ec.results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_shards.json");
    std::fs::write(&path, json).expect("write BENCH_shards.json");

    // Trajectory: the TSV is sectioned per benchmark (bench_compress owns
    // the original header); bench_shards appends its own header once,
    // then one dated row per run.
    let traj = dir.join("BENCH_trajectory.tsv");
    let header = "date\tinstr\thost_threads\tsh1_s\tsh2_s\tsh4_s\tsh8_s\tbest_speedup";
    let prev = std::fs::read_to_string(&traj).unwrap_or_default();
    let mut line = String::new();
    if !prev.contains(header) {
        let _ = writeln!(line, "{header}");
    }
    let _ = write!(line, "{date}\t{instr}\t{host_threads}");
    for w in &walls {
        let _ = write!(line, "\t{w:.3}");
    }
    let _ = writeln!(line, "\t{best:.2}");
    std::fs::write(&traj, prev + &line).expect("append BENCH_trajectory.tsv");
    println!(
        "\nbest sharded speedup {best:.2}x on {host_threads} host thread(s) -> {}",
        path.display()
    );
}
