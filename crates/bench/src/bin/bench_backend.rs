//! End-to-end backend benchmark: cycle-level DDR4 vs. the fast queueing
//! model (`ATTACHE_BACKEND=fast`), both under the event engine.
//!
//! Runs a small grid of profiles through both timing backends
//! (single-threaded, cache bypassed — this measures the simulator, not
//! the harness), checks the backend-independent facts agree (instruction
//! counts; the fast model must also be faster in *simulated* time, since
//! it never pays activates or refresh), and writes wall times and
//! speedups to `<results>/BENCH_backend.json`. The acceptance bar for
//! the boundary — how much of a run the memory-timing model was — is
//! recorded in the JSON as `best_speedup`.
//!
//! Run with `cargo run --release -p attache-bench --bin bench_backend`,
//! or via `scripts/bench.sh`. `ATTACHE_INSTR` / `ATTACHE_WARMUP` /
//! `ATTACHE_QUICK` control the run length as everywhere else.

use attache_bench::ExperimentConfig;
use attache_sim::{BackendKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::Profile;
use std::fmt::Write as _;
use std::time::Instant;

struct Case {
    profile: &'static str,
    strategy: MetadataStrategyKind,
}

/// The measured grid mirrors `bench_engine`'s: RAND/STREAM keep the bus
/// saturated (the regime where the cycle model's FR-FCFS scan burns the
/// most host time per simulated cycle), the pointer chasers are the
/// latency-bound middle, and CHASE is the serialized extreme where the
/// event engine already skips most cycles on both backends.
const CASES: &[Case] = &[
    Case { profile: "RAND", strategy: MetadataStrategyKind::Baseline },
    Case { profile: "RAND", strategy: MetadataStrategyKind::Attache },
    Case { profile: "STREAM", strategy: MetadataStrategyKind::Attache },
    Case { profile: "mcf", strategy: MetadataStrategyKind::Baseline },
    Case { profile: "mcf", strategy: MetadataStrategyKind::Attache },
    Case { profile: "sphinx3", strategy: MetadataStrategyKind::Attache },
    Case { profile: "omnetpp", strategy: MetadataStrategyKind::Attache },
    Case { profile: "CHASE", strategy: MetadataStrategyKind::Attache },
];

fn timed_run(cfg: &SimConfig, profile: Profile, seed: u64) -> (attache_sim::RunReport, f64) {
    let t = Instant::now();
    let report = System::run_rate_mode(cfg, profile, seed);
    (report, t.elapsed().as_secs_f64())
}

/// Repeat count per backend (`ATTACHE_BENCH_REPEAT`, default 2). Runs are
/// interleaved cycle/fast and the per-backend minimum is reported, which
/// discards transient machine noise the same way `hyperfine --min` does.
fn repeats() -> usize {
    std::env::var("ATTACHE_BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn main() {
    let ec = ExperimentConfig::from_env();
    // The backend axis IS the measurement here; pin the base config to
    // the cycle reference regardless of any ambient ATTACHE_BACKEND.
    let base = ec.sim_config().with_backend(BackendKind::Cycle);

    println!(
        "backend benchmark: {} instr + {} warm-up per core, seed {}",
        ec.instructions, ec.warmup, ec.seed
    );
    println!(
        "{:<10} {:<14} {:>11} {:>10} {:>9} {:>9}  {:>13}",
        "workload", "strategy", "cycle [s]", "fast [s]", "speedup", "sim-span", "fast Mcyc/s"
    );

    let mut rows = String::new();
    let mut best = 0.0f64;
    for case in CASES {
        let profile = Profile::by_name(case.profile).expect("known profile");
        let cfg = base.clone().with_strategy(case.strategy);

        let (mut s_cycle, mut s_fast) = (f64::INFINITY, f64::INFINITY);
        let (mut r_cycle, mut r_fast) = (None, None);
        for _ in 0..repeats() {
            let (r, s) = timed_run(&cfg, profile.clone(), ec.seed);
            s_cycle = s_cycle.min(s);
            r_cycle = Some(r);
            let (r, s) = timed_run(
                &cfg.clone().with_backend(BackendKind::Fast),
                profile.clone(),
                ec.seed,
            );
            s_fast = s_fast.min(s);
            r_fast = Some(r);
        }
        let (r_cycle, r_fast) = (r_cycle.expect("ran"), r_fast.expect("ran"));
        // Backend-independent facts (docs/BACKENDS.md): both reach the
        // retirement target (the last tick may overshoot by a few
        // instructions, and by a backend-dependent amount, since several
        // cores can retire on it), and the fast model is never slower in
        // simulated time.
        let target = 8 * ec.instructions;
        assert!(
            r_cycle.instructions >= target && r_fast.instructions >= target,
            "{}: a backend stopped short of the retirement target",
            case.profile
        );
        assert!(
            r_cycle.instructions.abs_diff(r_fast.instructions) <= 64,
            "{}: retirement overshoot diverged implausibly: cycle {} vs fast {}",
            case.profile,
            r_cycle.instructions,
            r_fast.instructions
        );
        assert!(
            r_fast.bus_cycles <= r_cycle.bus_cycles,
            "{}: the fast model ran longer in simulated time",
            case.profile
        );

        let speedup = s_cycle / s_fast;
        best = best.max(speedup);
        let span_ratio = r_cycle.bus_cycles as f64 / r_fast.bus_cycles.max(1) as f64;
        let fast_rate = r_fast.bus_cycles as f64 / s_fast / 1e6;
        println!(
            "{:<10} {:<14} {:>11.3} {:>10.3} {:>8.2}x {:>8.2}x  {:>13.1}",
            case.profile,
            format!("{:?}", case.strategy),
            s_cycle,
            s_fast,
            speedup,
            span_ratio,
            fast_rate,
        );

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            concat!(
                "    {{\"workload\": \"{}\", \"strategy\": \"{:?}\", ",
                "\"cycle_secs\": {:.6}, \"fast_secs\": {:.6}, ",
                "\"cycle_bus_cycles\": {}, \"fast_bus_cycles\": {}, ",
                "\"fast_mcycles_per_sec\": {:.3}, \"speedup\": {:.3}}}"
            ),
            case.profile,
            case.strategy,
            s_cycle,
            s_fast,
            r_cycle.bus_cycles,
            r_fast.bus_cycles,
            fast_rate,
            speedup,
        );
    }

    let json = format!(
        "{{\n  \"instructions\": {},\n  \"warmup\": {},\n  \"seed\": {},\n  \"cases\": [\n{}\n  ],\n  \"best_speedup\": {:.3}\n}}\n",
        ec.instructions, ec.warmup, ec.seed, rows, best
    );
    let dir = ec.results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_backend.json");
    std::fs::write(&path, json).expect("write BENCH_backend.json");
    println!("\nbest speedup {best:.2}x -> {}", path.display());
}
