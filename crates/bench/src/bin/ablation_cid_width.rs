//! Ablation: how the CID width trades Replacement-Area traffic against
//! metadata-header information (DESIGN.md §5, extending Table I with
//! timing runs).
//!
//! With a short CID, collisions — and therefore Replacement-Area reads and
//! writes — become frequent; with the paper's 14/15-bit CIDs they all but
//! vanish. Performance is essentially flat until the CID becomes absurdly
//! short, which is exactly the paper's argument for why a 15-bit CID
//! "removes almost all Metadata bandwidth overheads".

use attache_bench::ExperimentConfig;
use attache_sim::{MetadataStrategyKind, System};
use attache_workloads::Profile;

fn main() {
    let cfg = ExperimentConfig::from_env();
    // RAND maximizes uncompressed traffic, i.e. collision opportunity.
    let profile = Profile::rand();

    println!("CID-width ablation on RAND (all lines uncompressed)");
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>12}",
        "cid bits", "collision-p", "RA reads", "RA writes", "bus cycles"
    );
    for cid_bits in [6u8, 8, 10, 12, 14] {
        let mut sim_cfg = cfg
            .sim_config()
            .with_strategy(MetadataStrategyKind::Attache);
        sim_cfg.cid_bits = cid_bits;
        // A shorter run suffices: RA traffic scales linearly.
        sim_cfg.instructions_per_core = (cfg.instructions / 4).max(20_000);
        sim_cfg.warmup_instructions_per_core = (cfg.warmup / 4).max(4_000);
        let r = System::run_rate_mode(&sim_cfg, profile.clone(), cfg.seed);
        println!(
            "{:>9} {:>11.3}% {:>10} {:>10} {:>12}",
            cid_bits,
            100.0 / (1u64 << cid_bits) as f64,
            r.mem.replacement_area_reads,
            r.mem.replacement_area_writes,
            r.bus_cycles
        );
    }
    println!();
    println!(
        "Expectation: RA traffic halves per extra CID bit; by 14 bits it is\n\
         negligible (the paper's 0.003%-0.006% claim)."
    );
}
