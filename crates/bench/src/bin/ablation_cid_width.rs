//! Ablation: how the CID width trades Replacement-Area traffic against
//! metadata-header information (DESIGN.md §5, extending Table I with
//! timing runs).
//!
//! With a short CID, collisions — and therefore Replacement-Area reads and
//! writes — become frequent; with the paper's 14/15-bit CIDs they all but
//! vanish. Performance is essentially flat until the CID becomes absurdly
//! short, which is exactly the paper's argument for why a 15-bit CID
//! "removes almost all Metadata bandwidth overheads".

use attache_bench::{ExperimentConfig, Grid, JobSpec, WorkloadRef};
use attache_sim::MetadataStrategyKind;

const CID_WIDTHS: [u8; 5] = [6, 8, 10, 12, 14];

fn main() {
    let cfg = ExperimentConfig::from_env();

    // RAND maximizes uncompressed traffic, i.e. collision opportunity.
    // A shorter run suffices: RA traffic scales linearly.
    let mut grid = Grid::new();
    for cid_bits in CID_WIDTHS {
        let mut job = JobSpec::new(
            WorkloadRef::Rate("RAND".into()),
            MetadataStrategyKind::Attache,
        );
        job.overrides.cid_bits = Some(cid_bits);
        job.overrides.instructions = Some((cfg.instructions / 4).max(20_000));
        job.overrides.warmup = Some((cfg.warmup / 4).max(4_000));
        grid.push(job);
    }
    let reports = grid.run(&cfg);

    println!("CID-width ablation on RAND (all lines uncompressed)");
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>12}",
        "cid bits", "collision-p", "RA reads", "RA writes", "bus cycles"
    );
    for (cid_bits, r) in CID_WIDTHS.iter().zip(&reports) {
        println!(
            "{:>9} {:>11.3}% {:>10} {:>10} {:>12}",
            cid_bits,
            100.0 / (1u64 << cid_bits) as f64,
            r.mem.replacement_area_reads,
            r.mem.replacement_area_writes,
            r.bus_cycles
        );
    }
    println!();
    println!(
        "Expectation: RA traffic halves per extra CID bit; by 14 bits it is\n\
         negligible (the paper's 0.003%-0.006% claim)."
    );
}
