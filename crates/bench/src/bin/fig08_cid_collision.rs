//! Fig. 8: probability of a CID collision versus the number of accesses to
//! uncompressed lines — analytic curve plus a Monte-Carlo measurement over
//! real scrambled images.
//!
//! Paper: a 15-bit CID collides about once every 32K accesses.

use attache_bench::{parallel_map, ExperimentConfig};
use attache_core::blem::Blem;
use attache_core::header::CidConfig;

fn incompressible_block(seed: u64) -> [u8; 64] {
    let mut b = [0u8; 64];
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for byte in b.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *byte = (s >> 40) as u8;
    }
    b
}

fn main() {
    println!("Fig. 8 — CID collision probability vs accesses to uncompressed lines");
    println!("(analytic: 1 - (1 - 2^-cid_bits)^n)");
    println!();
    let cfg = CidConfig::single_algorithm(); // the paper's 15-bit headline CID
    println!("15-bit CID:");
    println!("{:>12} {:>22}", "accesses", "P(>=1 collision)");
    for exp in [10u32, 12, 14, 15, 16, 18, 20] {
        let n = 1u64 << exp;
        println!("{:>12} {:>21.2}%", n, 100.0 * cfg.collision_within(n));
    }
    println!(
        "expected accesses per collision: {} (paper: every ~32K accesses)",
        cfg.expected_accesses_per_collision()
    );

    // Monte-Carlo over real scrambled images with the simulator's
    // dual-algorithm (14-bit) header, plus a shorter CID where the rate is
    // directly measurable in a small sample.
    println!();
    println!("Monte-Carlo over scrambled incompressible lines:");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "cid bits", "lines", "collisions", "expected"
    );
    // The three CID widths are independent samples; fan out across workers.
    let trials = [(10u8, 400_000u64), (12, 400_000), (14, 800_000)];
    let counted = parallel_map(ExperimentConfig::from_env().workers(), &trials, |_, &(bits, n)| {
        let blem = Blem::with_config(7, CidConfig::new(bits));
        let mut collisions = 0u64;
        for i in 0..n {
            let data = incompressible_block(i * 2 + 1);
            let (compressed, collision) = blem.probe_line(i, &data);
            if !compressed && collision {
                collisions += 1;
            }
        }
        collisions
    });
    for (&(bits, n), collisions) in trials.iter().zip(&counted) {
        let expected = n as f64 / (1u64 << bits) as f64;
        println!("{:>9} {:>12} {:>12} {:>12.1}", bits, n, collisions, expected);
    }
    println!();
    println!("paper   : 0.003% of accesses need the Replacement Area (15-bit CID)");
    println!(
        "measured: collision rates track 2^-cid_bits (see table above); \
         14-bit dual-algorithm CID = {:.4}%",
        100.0 * CidConfig::dual_algorithm().collision_probability()
    );
}
