//! Table I: trading CID width for additional information bits.
//!
//! Paper: 15 bits -> 0.003% collisions, 14 -> 0.006%, 13 -> 0.01%.

use attache_core::header::CidConfig;

fn main() {
    println!("Table I — extending CID to store additional information");
    println!(
        "{:>9} {:>12} {:>24} {:>12}",
        "CID size", "info bits", "collision probability", "paper"
    );
    for (bits, paper) in [(15u8, "0.003%"), (14, "0.006%"), (13, "0.01%")] {
        let cfg = CidConfig::new(bits);
        println!(
            "{:>9} {:>12} {:>23.4}% {:>12}",
            bits,
            cfg.info_bits(),
            100.0 * cfg.collision_probability(),
            paper
        );
    }
    println!();
    println!(
        "The evaluated system uses the 14-bit CID: one info bit selects between\n\
         BDI and FPC on the fly (§IV-A.5), and the collision rate stays negligible."
    );
}
