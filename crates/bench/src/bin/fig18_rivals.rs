//! Fig. 18: rival-strategy head-to-head — Metadata-Cache, Attaché, Ideal
//! and CRAM-style implicit markers, all normalized to the no-compression
//! baseline, across speedup, energy and metadata-traffic overhead.
//!
//! CRAM (the implicit-metadata rival) stores no metadata at all: the
//! compression state is inferred from an in-line marker word, with an
//! exception region absorbing the rare incompressible lines whose natural
//! content collides with the marker. Its cost structure is the inverse of
//! the Metadata-Cache's: zero metadata reads, but a corrective second
//! half-fetch on *every* uncompressed read (there is no predictor and no
//! cached metadata to consult first).

use attache_bench::{geo_mean, ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

/// The rivals, in figure order (everything but the normalization target).
const RIVALS: [MetadataStrategyKind; 4] = [
    MetadataStrategyKind::MetadataCache,
    MetadataStrategyKind::Attache,
    MetadataStrategyKind::Oracle,
    MetadataStrategyKind::Cram,
];

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 18 — rival strategies head-to-head, normalized to Baseline");
    println!();
    println!("speedup over the no-compression baseline:");
    println!(
        "{:<12} {:>14} {:>10} {:>8} {:>8}",
        "workload", "MetadataCache", "Attache", "Ideal", "Cram"
    );
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); RIVALS.len()];
    let mut energies: Vec<Vec<f64>> = vec![Vec::new(); RIVALS.len()];
    let mut overheads: Vec<Vec<f64>> = vec![Vec::new(); RIVALS.len()];
    let mut correctives: Vec<Vec<f64>> = vec![Vec::new(); RIVALS.len()];
    for w in ResultSet::workload_names() {
        let base = set.get(&w, MetadataStrategyKind::Baseline).expect("baseline row");
        let mut cells = Vec::new();
        for (i, s) in RIVALS.into_iter().enumerate() {
            let r = set.get(&w, s).expect("strategy row");
            speedups[i].push(r.speedup_vs(base));
            energies[i].push(r.energy_ratio_vs(base));
            overheads[i].push(r.metadata_traffic_overhead());
            correctives[i].push(r.corrective_reads as f64 / r.demand_reads.max(1) as f64);
            cells.push(r.speedup_vs(base));
        }
        println!(
            "{:<12} {:>13.3}x {:>9.3}x {:>7.3}x {:>7.3}x",
            w, cells[0], cells[1], cells[2], cells[3]
        );
    }
    let gm_speed: Vec<f64> = speedups.iter().map(|v| geo_mean(v)).collect();
    println!(
        "geo-mean     {:>13.3}x {:>9.3}x {:>7.3}x {:>7.3}x",
        gm_speed[0], gm_speed[1], gm_speed[2], gm_speed[3]
    );

    println!();
    println!("head-to-head summary (geo-mean over all 22 workloads):");
    println!(
        "{:<15} {:>9} {:>9} {:>14} {:>11}",
        "strategy", "speedup", "energy", "extra-traffic", "corrective"
    );
    for (i, s) in RIVALS.into_iter().enumerate() {
        let mean_ovh =
            overheads[i].iter().sum::<f64>() / overheads[i].len().max(1) as f64;
        let mean_corr =
            correctives[i].iter().sum::<f64>() / correctives[i].len().max(1) as f64;
        println!(
            "{:<15} {:>8.3}x {:>8.1}% {:>13.2}% {:>10.2}%",
            s.to_string(),
            gm_speed[i],
            100.0 * geo_mean(&energies[i]),
            100.0 * mean_ovh,
            100.0 * mean_corr
        );
    }
    println!();
    println!("extra-traffic = (metadata + replacement/exception region) / demand requests");
    println!("corrective    = second-half fetches / demand reads (CRAM pays one on every");
    println!("                uncompressed read; Attache only on COPR overpredictions)");
    println!(
        "paper context: Attache ~1.153x / Ideal ~1.17x / MetadataCache ~1.08x; \
         CRAM trades all metadata traffic for per-read corrective fetches"
    );
}
