//! Fig. 11: COPR prediction accuracy per workload.
//!
//! Paper: 88% average accuracy — 8 points above the 1MB Metadata-Cache's
//! hit rate, using 368KB instead of 1MB of SRAM.

use attache_bench::{ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 11 — COPR prediction accuracy");
    println!("{:<12} {:>10} {:>14}", "workload", "accuracy", "mc hit-rate");
    let mut acc = Vec::new();
    let mut hit = Vec::new();
    for w in ResultSet::workload_names() {
        let att = set.get(&w, MetadataStrategyKind::Attache).expect("attache row");
        let mc = set.get(&w, MetadataStrategyKind::MetadataCache).expect("mc row");
        acc.push(att.copr_accuracy);
        hit.push(mc.metadata_cache_hit_rate);
        println!(
            "{:<12} {:>9.1}% {:>13.1}%",
            w,
            100.0 * att.copr_accuracy,
            100.0 * mc.metadata_cache_hit_rate
        );
    }
    println!();
    let avg_acc = acc.iter().sum::<f64>() / acc.len() as f64;
    let avg_hit = hit.iter().sum::<f64>() / hit.len() as f64;
    println!("paper   : COPR 88% accuracy vs Metadata-Cache 77% hit rate");
    println!(
        "measured: COPR {:.0}% accuracy vs Metadata-Cache {:.0}% hit rate",
        100.0 * avg_acc,
        100.0 * avg_hit
    );
}
