//! End-to-end engine benchmark: per-cycle vs. event-driven main loop.
//!
//! Runs a small grid of memory-bound profiles under both engines
//! (single-threaded, cache bypassed — this measures the simulator, not
//! the harness), checks the reports are identical, and writes the wall
//! times, simulated bus-cycles/second, and speedups to
//! `<results>/BENCH_engine.json`.
//!
//! Run with `cargo run --release -p attache-bench --bin bench_engine`,
//! or via `scripts/bench.sh`. `ATTACHE_INSTR` / `ATTACHE_WARMUP` /
//! `ATTACHE_QUICK` control the run length as everywhere else.

use attache_bench::ExperimentConfig;
use attache_sim::{EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::Profile;
use std::fmt::Write as _;
use std::time::Instant;

struct Case {
    profile: &'static str,
    strategy: MetadataStrategyKind,
}

/// The measured grid: CHASE is the fully serialized dependent chase (the
/// memory-latency-bound extreme, where long quiescent stalls let the event
/// engine skip most cycles), mcf/sphinx3/omnetpp are the catalog's pointer
/// chasers, and RAND/STREAM bound the benefit from below (the bus is busy
/// almost every cycle).
const CASES: &[Case] = &[
    Case { profile: "CHASE", strategy: MetadataStrategyKind::Baseline },
    Case { profile: "CHASE", strategy: MetadataStrategyKind::Attache },
    Case { profile: "mcf", strategy: MetadataStrategyKind::Baseline },
    Case { profile: "mcf", strategy: MetadataStrategyKind::Attache },
    Case { profile: "sphinx3", strategy: MetadataStrategyKind::Attache },
    Case { profile: "omnetpp", strategy: MetadataStrategyKind::Attache },
    Case { profile: "RAND", strategy: MetadataStrategyKind::Attache },
    Case { profile: "STREAM", strategy: MetadataStrategyKind::Attache },
];

fn timed_run(cfg: &SimConfig, profile: Profile, seed: u64) -> (attache_sim::RunReport, f64) {
    let t = Instant::now();
    let report = System::run_rate_mode(cfg, profile, seed);
    (report, t.elapsed().as_secs_f64())
}

/// Repeat count per engine (`ATTACHE_BENCH_REPEAT`, default 2). Runs are
/// interleaved cycle/event and the per-engine minimum is reported, which
/// discards transient machine noise the same way `hyperfine --min` does.
fn repeats() -> usize {
    std::env::var("ATTACHE_BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn main() {
    let ec = ExperimentConfig::from_env();
    let base = ec.sim_config();

    println!(
        "engine benchmark: {} instr + {} warm-up per core, seed {}",
        ec.instructions, ec.warmup, ec.seed
    );
    println!(
        "{:<10} {:<14} {:>12} {:>11} {:>11} {:>9}  {:>14}",
        "workload", "strategy", "bus-cycles", "cycle [s]", "event [s]", "speedup", "event Mcyc/s"
    );

    let mut rows = String::new();
    let mut best = 0.0f64;
    for case in CASES {
        let profile = Profile::by_name(case.profile).expect("known profile");
        let cfg = base.clone().with_strategy(case.strategy);

        let (mut s_cycle, mut s_event) = (f64::INFINITY, f64::INFINITY);
        let (mut r_cycle, mut r_event) = (None, None);
        for _ in 0..repeats() {
            let (r, s) = timed_run(
                &cfg.clone().with_engine(EngineKind::Cycle),
                profile.clone(),
                ec.seed,
            );
            s_cycle = s_cycle.min(s);
            r_cycle = Some(r);
            let (r, s) = timed_run(
                &cfg.clone().with_engine(EngineKind::Event),
                profile.clone(),
                ec.seed,
            );
            s_event = s_event.min(s);
            r_event = Some(r);
        }
        let (r_cycle, r_event) = (r_cycle.expect("ran"), r_event.expect("ran"));
        assert_eq!(r_cycle, r_event, "{}: engines disagree", case.profile);

        let speedup = s_cycle / s_event;
        best = best.max(speedup);
        let cyc_rate = r_cycle.bus_cycles as f64 / s_cycle / 1e6;
        let evt_rate = r_event.bus_cycles as f64 / s_event / 1e6;
        println!(
            "{:<10} {:<14} {:>12} {:>11.3} {:>11.3} {:>8.2}x  {:>14.1}",
            case.profile,
            format!("{:?}", case.strategy),
            r_event.bus_cycles,
            s_cycle,
            s_event,
            speedup,
            evt_rate,
        );

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            concat!(
                "    {{\"workload\": \"{}\", \"strategy\": \"{:?}\", ",
                "\"bus_cycles\": {}, \"cycle_secs\": {:.6}, \"event_secs\": {:.6}, ",
                "\"cycle_mcycles_per_sec\": {:.3}, \"event_mcycles_per_sec\": {:.3}, ",
                "\"speedup\": {:.3}}}"
            ),
            case.profile, case.strategy, r_event.bus_cycles, s_cycle, s_event, cyc_rate, evt_rate, speedup,
        );
    }

    let json = format!(
        "{{\n  \"instructions\": {},\n  \"warmup\": {},\n  \"seed\": {},\n  \"cases\": [\n{}\n  ],\n  \"best_speedup\": {:.3}\n}}\n",
        ec.instructions, ec.warmup, ec.seed, rows, best
    );
    let dir = ec.results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_engine.json");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    println!("\nbest speedup {best:.2}x -> {}", path.display());
}
