//! Fig. 13: DRAM energy of Metadata-Cache / Attaché / Ideal, normalized to
//! the no-compression baseline.
//!
//! Paper: Attaché saves 22% (ideal 23%); the Metadata-Cache saves only 10%
//! and *costs* 40% extra on RAND.

use attache_bench::{geo_mean, ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 13 — energy relative to the no-compression baseline (lower is better)");
    println!(
        "{:<12} {:>14} {:>10} {:>8}",
        "workload", "MetadataCache", "Attache", "Ideal"
    );
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for w in ResultSet::workload_names() {
        let base = set.get(&w, MetadataStrategyKind::Baseline).expect("baseline row");
        let mut cells = Vec::new();
        for (i, s) in [
            MetadataStrategyKind::MetadataCache,
            MetadataStrategyKind::Attache,
            MetadataStrategyKind::Oracle,
        ]
        .into_iter()
        .enumerate()
        {
            let r = set.get(&w, s).expect("strategy row");
            let ratio = r.energy_ratio_vs(base);
            per_strategy[i].push(ratio);
            cells.push(ratio);
        }
        println!(
            "{:<12} {:>13.1}% {:>9.1}% {:>7.1}%",
            w,
            100.0 * cells[0],
            100.0 * cells[1],
            100.0 * cells[2]
        );
    }
    println!();
    let gm: Vec<f64> = per_strategy.iter().map(|v| geo_mean(v)).collect();
    println!(
        "geo-mean     {:>13.1}% {:>9.1}% {:>7.1}%",
        100.0 * gm[0],
        100.0 * gm[1],
        100.0 * gm[2]
    );
    println!();
    println!("paper (average): MetadataCache 90% | Attache 78% | Ideal 77%");
    println!(
        "measured       : MetadataCache {:.0}% | Attache {:.0}% | Ideal {:.0}%",
        100.0 * gm[0],
        100.0 * gm[1],
        100.0 * gm[2]
    );
}
