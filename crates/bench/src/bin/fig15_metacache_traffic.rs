//! Fig. 15: normalized number of memory requests in the Metadata-Cache
//! system, split into data and metadata traffic.
//!
//! Paper: even a 1MB Metadata-Cache adds ~25% extra requests on average,
//! and the extra requests are predominantly *reads* (installs), because
//! block compressibility rarely changes and metadata lines stay clean.

use attache_bench::{ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 15 — normalized requests with a 1MB Metadata-Cache");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10}",
        "workload", "total", "meta-reads", "meta-writes", "read-share"
    );
    let mut totals = Vec::new();
    let mut read_share_acc = Vec::new();
    for w in ResultSet::workload_names() {
        let base = set.get(&w, MetadataStrategyKind::Baseline).expect("baseline");
        let mc = set.get(&w, MetadataStrategyKind::MetadataCache).expect("mc");
        let base_requests = (base.demand_reads + base.data_writes) as f64;
        let normalized = mc.total_requests() as f64 / base_requests;
        let meta_reads = mc.metadata_reads as f64 / base_requests;
        let meta_writes = mc.metadata_writes as f64 / base_requests;
        let read_share = if mc.metadata_reads + mc.metadata_writes > 0 {
            mc.metadata_reads as f64 / (mc.metadata_reads + mc.metadata_writes) as f64
        } else {
            f64::NAN
        };
        totals.push(normalized);
        if read_share.is_finite() {
            read_share_acc.push(read_share);
        }
        println!(
            "{:<12} {:>7.3}x {:>11.3}x {:>11.3}x {:>9.1}%",
            w,
            normalized,
            meta_reads,
            meta_writes,
            100.0 * read_share
        );
    }
    println!();
    let avg_total = totals.iter().sum::<f64>() / totals.len() as f64;
    let avg_share = read_share_acc.iter().sum::<f64>() / read_share_acc.len() as f64;
    println!("paper   : ~1.25x total requests; extra requests are mostly reads (installs)");
    println!(
        "measured: {:.2}x total requests; {:.0}% of metadata traffic is reads",
        avg_total,
        100.0 * avg_share
    );
}
