//! Compression hot-path benchmark: kernel throughput plus end-to-end
//! simulation rate, with a per-PR trajectory file.
//!
//! Two layers:
//!
//! * **Kernel MB/s** — BDI and FPC compress/decompress over a mixed
//!   corpus (compressible integers, pointer lines, zero lines, random
//!   noise), in megabytes of block data per second. This is what the
//!   SIMD lane rewrite targets directly.
//! * **End-to-end Mcyc/s** — simulated bus-cycles per wall-second under
//!   the Attaché strategy on mcf / sphinx3 / omnetpp / STREAM. This is
//!   what the user actually feels; the compression kernels, the probe
//!   cache, and the content memo all land here.
//!
//! Results go to `<results>/BENCH_compress.json`, and a dated line is
//! appended to `<results>/BENCH_trajectory.tsv` so the numbers form a
//! per-PR trajectory instead of a point sample. `ATTACHE_BENCH_REPEAT`
//! (default 2) controls min-of-N repeats, as in the other bench bins.
//!
//! Run with `cargo run --release -p attache-bench --bin bench_compress`,
//! or via `scripts/bench.sh`.

use attache_bench::ExperimentConfig;
use attache_compress::{bdi::Bdi, fpc::Fpc, Block, Compressed, CompressionEngine, Compressor};
use attache_sim::{MetadataStrategyKind, System};
use attache_workloads::Profile;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Workloads for the end-to-end layer: the paper's pointer chasers (the
/// mcf class, where per-access model cost dominates) plus STREAM (the
/// bandwidth-bound extreme, compression-heavy write traffic).
const WORKLOADS: &[&str] = &["mcf", "sphinx3", "omnetpp", "STREAM"];

/// Repeat count (`ATTACHE_BENCH_REPEAT`, default 2); the per-case best
/// is reported, discarding transient machine noise.
fn repeats() -> usize {
    std::env::var("ATTACHE_BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// The kernel corpus: one block per content class the engine's fast
/// paths distinguish, so the average is not dominated by any one early
/// exit.
fn corpus() -> Vec<Block> {
    let mut blocks = vec![[0u8; 64]];
    let mut ints = [0u8; 64];
    for (i, c) in ints.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(i as u32 % 50).to_le_bytes());
    }
    blocks.push(ints);
    let mut ptrs = [0u8; 64];
    for (i, c) in ptrs.chunks_exact_mut(8).enumerate() {
        c.copy_from_slice(&(0x7F00_0000_1000u64 + 64 * i as u64).to_le_bytes());
    }
    blocks.push(ptrs);
    let mut s = 0x1234_5678u64;
    for _ in 0..3 {
        let mut rnd = [0u8; 64];
        for b in rnd.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *b = (s >> 32) as u8;
        }
        blocks.push(rnd);
    }
    blocks
}

/// Times `f` over enough iterations of the corpus to fill ~50 ms, best
/// of [`repeats`] passes, and returns block-bytes processed per second
/// in MB/s (1 MB = 1e6 bytes, so the numbers read as bandwidth).
fn kernel_rate(blocks_per_iter: usize, mut f: impl FnMut()) -> f64 {
    const ITERS: u64 = 50_000;
    for _ in 0..ITERS / 10 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..repeats() {
        let t = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    (ITERS as f64 * blocks_per_iter as f64 * 64.0) / best / 1e6
}

/// `YYYY-MM-DD` (UTC) from the system clock — civil-from-days (Howard
/// Hinnant's algorithm), no date dependency needed.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("post-epoch clock")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let ec = ExperimentConfig::from_env();
    let blocks = corpus();
    let n = blocks.len();

    println!("compression benchmark: {} blocks/corpus pass", n);
    println!("{:<24} {:>12}", "kernel", "MB/s");

    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let engine = CompressionEngine::new();
    let bdi_images: Vec<Option<Compressed>> = blocks.iter().map(|b| bdi.compress(b)).collect();
    let fpc_images: Vec<Option<Compressed>> = blocks.iter().map(|b| fpc.compress(b)).collect();
    let engine_images: Vec<_> = blocks.iter().map(|b| engine.compress(b)).collect();

    let kernels: Vec<(&str, f64)> = vec![
        (
            "bdi_compress",
            kernel_rate(n, || {
                for blk in &blocks {
                    black_box(bdi.compress(black_box(blk)));
                }
            }),
        ),
        (
            "bdi_decompress",
            kernel_rate(n, || {
                for img in bdi_images.iter().flatten() {
                    black_box(bdi.decompress(black_box(img)));
                }
            }),
        ),
        (
            "fpc_compress",
            kernel_rate(n, || {
                for blk in &blocks {
                    black_box(fpc.compress(black_box(blk)));
                }
            }),
        ),
        (
            "fpc_decompress",
            kernel_rate(n, || {
                for img in fpc_images.iter().flatten() {
                    black_box(fpc.decompress(black_box(img)));
                }
            }),
        ),
        (
            "engine_compress",
            kernel_rate(n, || {
                for blk in &blocks {
                    black_box(engine.compress(black_box(blk)));
                }
            }),
        ),
        (
            "engine_decompress",
            kernel_rate(n, || {
                for img in &engine_images {
                    black_box(engine.decompress(black_box(img)));
                }
            }),
        ),
    ];
    for (name, rate) in &kernels {
        println!("{name:<24} {rate:>12.1}");
    }

    println!(
        "\nend-to-end (Attache strategy): {} instr + {} warm-up per core, seed {}",
        ec.instructions, ec.warmup, ec.seed
    );
    println!(
        "{:<10} {:>12} {:>10} {:>12}",
        "workload", "bus-cycles", "secs", "Mcyc/s"
    );
    let cfg = ec.sim_config().with_strategy(MetadataStrategyKind::Attache);
    let mut runs: Vec<(&str, u64, f64, f64)> = Vec::new();
    for name in WORKLOADS {
        let profile = Profile::by_name(name).expect("known profile");
        let mut secs = f64::INFINITY;
        let mut cycles = 0;
        for _ in 0..repeats() {
            let t = Instant::now();
            let report = System::run_rate_mode(&cfg, profile.clone(), ec.seed);
            secs = secs.min(t.elapsed().as_secs_f64());
            cycles = report.bus_cycles;
        }
        let rate = cycles as f64 / secs / 1e6;
        println!("{name:<10} {cycles:>12} {secs:>10.3} {rate:>12.2}");
        runs.push((name, cycles, secs, rate));
    }

    let date = today_utc();
    let mut kernel_rows = String::new();
    for (name, rate) in &kernels {
        if !kernel_rows.is_empty() {
            kernel_rows.push_str(",\n");
        }
        let _ = write!(kernel_rows, "    {{\"kernel\": \"{name}\", \"mb_per_sec\": {rate:.1}}}");
    }
    let mut run_rows = String::new();
    for (name, cycles, secs, rate) in &runs {
        if !run_rows.is_empty() {
            run_rows.push_str(",\n");
        }
        let _ = write!(
            run_rows,
            concat!(
                "    {{\"workload\": \"{}\", \"bus_cycles\": {}, ",
                "\"secs\": {:.6}, \"mcycles_per_sec\": {:.3}}}"
            ),
            name, cycles, secs, rate,
        );
    }
    let json = format!(
        "{{\n  \"date\": \"{date}\",\n  \"instructions\": {},\n  \"warmup\": {},\n  \
         \"seed\": {},\n  \"kernels\": [\n{kernel_rows}\n  ],\n  \"workloads\": [\n{run_rows}\n  ]\n}}\n",
        ec.instructions, ec.warmup, ec.seed,
    );
    let dir = ec.results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_compress.json");
    std::fs::write(&path, json).expect("write BENCH_compress.json");

    // Trajectory: one dated TSV line per bench run, appended, so the
    // compression hot path's history survives each PR's point sample.
    let traj = dir.join("BENCH_trajectory.tsv");
    let mut line = String::new();
    if !traj.exists() {
        line.push_str("date\tinstr");
        for (name, _) in &kernels {
            let _ = write!(line, "\t{name}_MBps");
        }
        for w in WORKLOADS {
            let _ = write!(line, "\t{w}_Mcyc_s");
        }
        line.push('\n');
    }
    let _ = write!(line, "{date}\t{}", ec.instructions);
    for (_, rate) in &kernels {
        let _ = write!(line, "\t{rate:.1}");
    }
    for (_, _, _, rate) in &runs {
        let _ = write!(line, "\t{rate:.2}");
    }
    line.push('\n');
    let prev = std::fs::read_to_string(&traj).unwrap_or_default();
    std::fs::write(&traj, prev + &line).expect("append BENCH_trajectory.tsv");
    println!("\n-> {} (+ trajectory {})", path.display(), traj.display());
}
