//! Fig. 14: (a) memory bandwidth usage and (b) average memory latency for
//! Attaché, relative to the baseline.
//!
//! Paper: Attaché enables 16% higher bandwidth and 14% lower average
//! memory latency.
//!
//! Note on (a): with compression the same work moves *fewer bytes*, so the
//! figure's "bandwidth improvement" is about throughput per unit time —
//! here reported as demand requests served per microsecond.

use attache_bench::{geo_mean, ExperimentConfig, ResultSet};
use attache_sim::{MetadataStrategyKind, BUS_CYCLE_NS};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 14 — Attaché memory bandwidth and latency vs baseline");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "req/us", "base req/us", "latency", "base latency"
    );
    let mut bw_gain = Vec::new();
    let mut lat_ratio = Vec::new();
    for w in ResultSet::workload_names() {
        let base = set.get(&w, MetadataStrategyKind::Baseline).expect("baseline");
        let att = set.get(&w, MetadataStrategyKind::Attache).expect("attache");
        let thr = |r: &attache_bench::ResultRow| {
            (r.demand_reads + r.data_writes) as f64 / (r.bus_cycles as f64 * BUS_CYCLE_NS / 1000.0)
        };
        let (t_a, t_b) = (thr(att), thr(base));
        bw_gain.push(t_a / t_b);
        lat_ratio.push(att.avg_read_latency_ns() / base.avg_read_latency_ns());
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>10.1}ns {:>10.1}ns",
            w,
            t_a,
            t_b,
            att.avg_read_latency_ns(),
            base.avg_read_latency_ns()
        );
    }
    println!();
    let bw = geo_mean(&bw_gain);
    let lat = geo_mean(&lat_ratio);
    println!("paper   : +16% effective bandwidth, -14% average memory latency");
    println!(
        "measured: {:+.1}% effective bandwidth, {:+.1}% average memory latency",
        100.0 * (bw - 1.0),
        100.0 * (lat - 1.0)
    );
}
