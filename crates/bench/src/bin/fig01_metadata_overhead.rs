//! Fig. 1: the motivation — extra memory traffic caused by metadata
//! accesses under a (large, 1MB) Metadata-Cache, alongside the fraction of
//! compressed blocks.
//!
//! Paper: metadata can add up to 85% extra traffic even with the cache.

use attache_bench::{ExperimentConfig, ResultSet};
use attache_sim::MetadataStrategyKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    println!("Fig. 1 — compressed blocks and metadata traffic overhead (1MB Metadata-Cache)");
    println!(
        "{:<12} {:>18} {:>18}",
        "workload", "compressed blocks", "metadata overhead"
    );
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let names = ResultSet::workload_names();
    for w in &names {
        let mc = set.get(w, MetadataStrategyKind::MetadataCache).expect("row");
        let ovh = mc.metadata_traffic_overhead();
        worst = worst.max(ovh);
        sum += ovh;
        println!(
            "{:<12} {:>17.1}% {:>17.1}%",
            w,
            100.0 * mc.compressed_read_fraction,
            100.0 * ovh
        );
    }
    println!();
    println!("paper   : metadata adds up to 85% extra traffic");
    println!(
        "measured: worst-case {:.1}% extra traffic, average {:.1}%",
        100.0 * worst,
        100.0 * sum / names.len() as f64
    );
}
