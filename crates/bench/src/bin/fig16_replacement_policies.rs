//! Fig. 16: hit rate of a 1MB Metadata-Cache under different replacement
//! policies.
//!
//! Paper: LRU already reaches 77%; DRRIP and SHiP add only ~2 points —
//! replacement policy cannot fix the Metadata-Cache's traffic problem.
//!
//! Measured functionally (trace → LLC → metadata cache) as in the Fig. 5
//! sweep; replacement behaviour is purely a function of the miss stream.

use attache_bench::{parallel_map, ExperimentConfig};
use attache_cache::{Llc, LlcConfig, MetadataCache, MetadataCacheConfig, PolicyKind};
use attache_workloads::{all_rate_profiles, TraceGenerator};

/// Average hit rate over the catalog; each workload is independent, so the
/// catalog fans out across workers.
fn hit_rate(policy: PolicyKind, accesses_per_workload: u64, seed: u64, workers: usize) -> f64 {
    let profiles = all_rate_profiles();
    let rates = parallel_map(workers, &profiles, |_, profile| {
        let mut mc = MetadataCache::new(MetadataCacheConfig {
            policy,
            ..MetadataCacheConfig::paper_1mb()
        });
        let mut llc = Llc::new(LlcConfig::table2());
        let mut gens: Vec<TraceGenerator> = (0..8)
            .map(|i| TraceGenerator::new(profile, seed ^ ((i + 1) * 0x9E37_79B9)))
            .collect();
        let bases: Vec<u64> = (0..8).map(|i| i as u64 * profile.footprint_lines).collect();
        let mut served = 0;
        while served < accesses_per_workload {
            for (gen, base) in gens.iter_mut().zip(&bases) {
                let ev = gen.next_event();
                let line = base + ev.line_offset;
                let acc = llc.access_line(line, ev.is_write);
                if !acc.hit {
                    mc.lookup(line);
                }
                if let Some(victim) = acc.writeback {
                    mc.update(victim);
                }
                served += 1;
            }
        }
        mc.stats().hit_rate()
    });
    rates.iter().sum::<f64>() / rates.len() as f64
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let accesses = (cfg.instructions / 10).max(50_000);

    println!("Fig. 16 — 1MB Metadata-Cache hit rate by replacement policy");
    println!("{:>8} {:>10}", "policy", "hit-rate");
    let mut lru = 0.0;
    let mut best_alt: f64 = 0.0;
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Random,
    ] {
        let rate = hit_rate(policy, accesses, cfg.seed, cfg.workers());
        match policy {
            PolicyKind::Lru => lru = rate,
            PolicyKind::Drrip | PolicyKind::Ship => best_alt = best_alt.max(rate),
            _ => {}
        }
        println!("{:>8} {:>9.1}%", policy.to_string(), 100.0 * rate);
    }
    println!();
    println!("paper   : LRU 77%; DRRIP/SHiP only ~2 points higher");
    println!(
        "measured: LRU {:.1}%; best alternative {:+.1} points",
        100.0 * lru,
        100.0 * (best_alt - lru)
    );
}
