//! Fig. 5: Metadata-Cache hit rate as a function of its size, plus the
//! speedup the largest (1MB) configuration actually delivers.
//!
//! Paper: even an impractically large 1MB cache reaches only a 77% hit
//! rate and 8% speedup.
//!
//! The hit-rate curve is measured functionally (trace → LLC → metadata
//! cache), which matches the timing simulation's hit rates while letting
//! the whole sweep run in seconds; the speedup column comes from the
//! cached timing sweep.

use attache_bench::{geo_mean, parallel_map, ExperimentConfig, ResultSet};
use attache_cache::{Llc, LlcConfig, MetadataCache, MetadataCacheConfig};
use attache_sim::MetadataStrategyKind;
use attache_workloads::{all_rate_profiles, TraceGenerator};

/// Functional hit-rate measurement for one cache size across the catalog.
/// Each workload is independent, so the catalog fans out across workers.
fn hit_rate_at(size_bytes: usize, accesses_per_workload: u64, seed: u64, workers: usize) -> f64 {
    let profiles = all_rate_profiles();
    let rates = parallel_map(workers, &profiles, |_, profile| {
        let mut mc = MetadataCache::new(MetadataCacheConfig::with_size(size_bytes));
        let mut llc = Llc::new(LlcConfig::table2());
        // 8 interleaved rate-mode traces sharing the LLC, as in the
        // timing simulation.
        let mut gens: Vec<TraceGenerator> = (0..8)
            .map(|i| TraceGenerator::new(profile, seed ^ ((i + 1) * 0x9E37_79B9)))
            .collect();
        let bases: Vec<u64> = (0..8).map(|i| i as u64 * profile.footprint_lines).collect();
        let mut served = 0;
        while served < accesses_per_workload {
            for (gen, base) in gens.iter_mut().zip(&bases) {
                let ev = gen.next_event();
                let line = base + ev.line_offset;
                let acc = llc.access_line(line, ev.is_write);
                if !acc.hit {
                    mc.lookup(line);
                }
                if let Some(victim) = acc.writeback {
                    mc.update(victim);
                }
                served += 1;
            }
        }
        mc.stats().hit_rate()
    });
    rates.iter().sum::<f64>() / rates.len() as f64
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let accesses = (cfg.instructions / 10).max(50_000);

    println!("Fig. 5 — Metadata-Cache hit rate vs capacity (average over all workloads)");
    println!("{:>8} {:>10}", "size", "hit-rate");
    let mut one_mb_rate = 0.0;
    for size_kb in [64usize, 128, 256, 512, 1024] {
        let rate = hit_rate_at(size_kb * 1024, accesses, cfg.seed, cfg.workers());
        if size_kb == 1024 {
            one_mb_rate = rate;
        }
        println!("{:>6}KB {:>9.1}%", size_kb, 100.0 * rate);
    }

    // Speedup of the 1MB configuration from the timing sweep.
    let set = ResultSet::ensure(&cfg);
    let speedups: Vec<f64> = set
        .with_baseline(MetadataStrategyKind::MetadataCache)
        .iter()
        .map(|(r, b)| r.speedup_vs(b))
        .collect();
    let gm = geo_mean(&speedups);

    println!();
    println!("paper   : 1MB cache -> 77% hit rate, 8% speedup");
    println!(
        "measured: 1MB cache -> {:.0}% hit rate, {:+.1}% speedup",
        100.0 * one_mb_rate,
        100.0 * (gm - 1.0)
    );
}
