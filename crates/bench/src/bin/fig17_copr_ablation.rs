//! Fig. 17: contribution of COPR's components — PaPR alone, PaPR+GI, and
//! the full predictor with LiPR.
//!
//! Paper: PaPR alone buys 11.5% speedup, adding GI reaches 15.3%, and
//! LiPR matters mainly for the mixed workloads.

use attache_bench::{geo_mean, ExperimentConfig, ResultSet};
use attache_core::copr::CoprConfig;
use attache_sim::{MetadataStrategyKind, System};
use attache_workloads::{mixes, Profile};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    // A representative subset (full-suite ablation would triple the sweep):
    // two streaming, one pointer-chasing, one graph, plus both mixes.
    let rate_subset = ["lbm", "STREAM", "mcf", "bc.kron"];
    let mix_list = mixes();

    // GI sizing: the paper splits the occupied memory into eight regions.
    let total_lines: u64 = Profile::by_name("lbm").unwrap().footprint_lines * 8;

    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn(u64) -> CoprConfig); 3] = [
        ("PaPR", CoprConfig::papr_only),
        ("PaPR+GI", CoprConfig::papr_gi),
        ("PaPR+GI+LiPR", CoprConfig::paper_default),
    ];

    println!("Fig. 17 — speedup by COPR component (subset incl. both mixes)");
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "workload", "PaPR", "PaPR+GI", "PaPR+GI+LiPR"
    );

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let run_one = |name: &str, variant: usize| -> f64 {
        let make = variants[variant].1;
        let mut sim_cfg = cfg
            .sim_config()
            .with_strategy(MetadataStrategyKind::Attache);
        sim_cfg.copr = Some(make(total_lines));
        let report = if let Some(p) = Profile::by_name(name) {
            System::run_rate_mode(&sim_cfg, p, cfg.seed)
        } else {
            let mix = mix_list.iter().find(|m| m.name == name).expect("mix name");
            System::run_mix(&sim_cfg, mix, cfg.seed)
        };
        let base = set
            .get(name, MetadataStrategyKind::Baseline)
            .expect("baseline row");
        base.bus_cycles as f64 / report.bus_cycles as f64
    };

    let mut names: Vec<&str> = rate_subset.to_vec();
    names.extend(mix_list.iter().map(|m| m.name));
    for name in &names {
        let mut cells = Vec::new();
        for v in 0..3 {
            eprintln!("[fig17] {} / {}", name, variants[v].0);
            let s = run_one(name, v);
            columns[v].push(s);
            cells.push(s);
        }
        println!(
            "{:<10} {:>9.3}x {:>9.3}x {:>13.3}x",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    let gm: Vec<f64> = columns.iter().map(|c| geo_mean(c)).collect();
    println!(
        "geo-mean   {:>9.3}x {:>9.3}x {:>13.3}x",
        gm[0], gm[1], gm[2]
    );
    println!();
    println!("paper   : PaPR 1.115x | PaPR+GI 1.153x | LiPR helps mainly the mixes");
    println!(
        "measured: PaPR {:.3}x | PaPR+GI {:.3}x | full {:.3}x",
        gm[0], gm[1], gm[2]
    );
}
