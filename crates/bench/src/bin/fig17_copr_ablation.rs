//! Fig. 17: contribution of COPR's components — PaPR alone, PaPR+GI, and
//! the full predictor with LiPR.
//!
//! Paper: PaPR alone buys 11.5% speedup, adding GI reaches 15.3%, and
//! LiPR matters mainly for the mixed workloads.

use attache_bench::{geo_mean, CoprVariant, ExperimentConfig, Grid, JobSpec, ResultSet, WorkloadRef};
use attache_sim::MetadataStrategyKind;
use attache_workloads::mixes;

const VARIANTS: [(&str, CoprVariant); 3] = [
    ("PaPR", CoprVariant::PaprOnly),
    ("PaPR+GI", CoprVariant::PaprGi),
    ("PaPR+GI+LiPR", CoprVariant::Full),
];

fn main() {
    let cfg = ExperimentConfig::from_env();
    let set = ResultSet::ensure(&cfg);

    // A representative subset (full-suite ablation would triple the sweep):
    // two streaming, one pointer-chasing, one graph, plus both mixes.
    let mut names: Vec<String> = ["lbm", "STREAM", "mcf", "bc.kron"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend(mixes().iter().map(|m| m.name.to_string()));

    // One Attaché job per (workload, COPR variant); the grid sizes each
    // job's GI regions to its own occupied footprint (the paper splits the
    // occupied memory, not a fixed budget, into eight regions).
    let mut grid = Grid::new();
    for name in &names {
        for (_, variant) in VARIANTS {
            let mut job = JobSpec::new(WorkloadRef::by_name(name), MetadataStrategyKind::Attache);
            job.overrides.copr = Some(variant);
            grid.push(job);
        }
    }
    let reports = grid.run(&cfg);

    println!("Fig. 17 — speedup by COPR component (subset incl. both mixes)");
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "workload", "PaPR", "PaPR+GI", "PaPR+GI+LiPR"
    );

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS.len()];
    for (w, name) in names.iter().enumerate() {
        let base = set
            .get(name, MetadataStrategyKind::Baseline)
            .expect("baseline row");
        let mut cells = Vec::new();
        for v in 0..VARIANTS.len() {
            let report = &reports[w * VARIANTS.len() + v];
            let s = base.bus_cycles as f64 / report.bus_cycles as f64;
            columns[v].push(s);
            cells.push(s);
        }
        println!(
            "{:<10} {:>9.3}x {:>9.3}x {:>13.3}x",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    let gm: Vec<f64> = columns.iter().map(|c| geo_mean(c)).collect();
    println!(
        "geo-mean   {:>9.3}x {:>9.3}x {:>13.3}x",
        gm[0], gm[1], gm[2]
    );
    println!();
    println!("paper   : PaPR 1.115x | PaPR+GI 1.153x | LiPR helps mainly the mixes");
    println!(
        "measured: PaPR {:.3}x | PaPR+GI {:.3}x | full {:.3}x",
        gm[0], gm[1], gm[2]
    );
}
