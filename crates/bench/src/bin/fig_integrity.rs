//! End-to-end data-integrity figure: corrected / uncorrectable /
//! silent-corruption rates and error-amplification factors across all
//! five strategies × a bit-error-rate sweep.
//!
//! Each grid point runs twice: once with the (72,64) SEC-DED pipeline
//! on (plus a background scrub), measuring corrections, detected-
//! uncorrectable reads and each strategy's recovery accounting, and
//! once with ECC off, measuring the silent corruption and
//! error-amplification real hardware would have delivered. The mirror
//! oracle stays attached throughout, so a run that silently consumed
//! poisoned data would abort rather than report. Before any sweep
//! numbers are written, a determinism preamble asserts the armed
//! configuration is bit-identical across the cycle/event engines and
//! across shard counts — one swapped read would re-key every
//! subsequent soft error, so this is the canary for the whole model.
//!
//! Output: `<results>/BENCH_integrity.json` plus a dated section row in
//! `<results>/BENCH_trajectory.tsv`. Run via `scripts/bench.sh` or
//! `cargo run --release -p attache-bench --bin fig_integrity`.

use attache_bench::ExperimentConfig;
use attache_sim::{EngineKind, MetadataStrategyKind, SimConfig, System};
use attache_workloads::{AccessPattern, Category, DataProfile, Profile, Suite};
use std::fmt::Write as _;

/// Soft-error rates in ppm of line-touches (`ATTACHE_BER` semantics):
/// from rare-correctable to double-flip-heavy.
const BER_SWEEP: &[u64] = &[5_000, 20_000, 80_000];

const SCRUB_PERIOD: u64 = 400;

fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("post-epoch clock")
        .as_secs();
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Reuse- and write-heavy half-compressible traffic: every strategy
/// sees compressed and verbatim lines, rewrites clear latched flips,
/// and re-reads give the ECC pipeline work on every tier of the sweep.
fn soak_profile() -> Profile {
    Profile {
        name: "integrity-soak",
        suite: Suite::Synthetic,
        category: Category::Compressible,
        data: DataProfile::clustered(0.5),
        pattern: AccessPattern::Random,
        footprint_lines: 8192,
        instructions_per_access: 5.0,
        write_fraction: 0.4,
        mlp_limit: None,
    }
}

fn base_config(ec: &ExperimentConfig) -> SimConfig {
    let mut cfg = ec.sim_config().with_mirror(true);
    cfg.llc.size_bytes = 128 << 10;
    cfg
}

fn main() {
    let ec = ExperimentConfig::from_env();
    let base = base_config(&ec);

    // Determinism preamble: the armed configuration must be
    // bit-identical across engines and shard counts before any of its
    // numbers are worth writing down.
    let armed = base
        .clone()
        .with_strategy(MetadataStrategyKind::Attache)
        .with_ber(Some(BER_SWEEP[1]))
        .with_ecc(true)
        .with_scrub(Some(SCRUB_PERIOD));
    let reference = System::run_rate_mode(
        &armed.clone().with_engine(EngineKind::Cycle),
        soak_profile(),
        ec.seed,
    );
    for (label, cfg) in [
        ("event engine", armed.clone().with_engine(EngineKind::Event)),
        ("2 shards", armed.clone().with_shards(2)),
    ] {
        let run = System::run_rate_mode(&cfg, soak_profile(), ec.seed);
        assert_eq!(
            reference, run,
            "{label}: armed integrity run diverged from the cycle/serial reference"
        );
    }
    println!("determinism: engine and shard axes bit-identical under armed integrity knobs");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "strategy", "ber_ppm", "corr/kRd", "uncor/MRd", "recovered", "data_loss", "silent/kRd", "amp"
    );

    let mut rows = String::new();
    for strategy in MetadataStrategyKind::ALL {
        for &ber in BER_SWEEP {
            let protected_cfg = base
                .clone()
                .with_strategy(strategy)
                .with_ber(Some(ber))
                .with_ecc(true)
                .with_scrub(Some(SCRUB_PERIOD));
            let protected = System::run_rate_mode(&protected_cfg, soak_profile(), ec.seed)
                .integrity
                .expect("armed runs report integrity stats");
            assert_eq!(
                protected.total_uncorrectable(),
                protected.recovered + protected.data_loss,
                "{strategy} ber={ber}: unaccounted uncorrectable reads"
            );
            assert_eq!(
                protected.silent_corruption_reads, 0,
                "{strategy} ber={ber}: ECC-on run delivered silent corruption"
            );

            let exposed_cfg = base.clone().with_strategy(strategy).with_ber(Some(ber));
            let exposed = System::run_rate_mode(&exposed_cfg, soak_profile(), ec.seed)
                .integrity
                .expect("armed runs report integrity stats");

            let reads = protected.reads_checked.max(1) as f64;
            let corrected_per_kread = protected.total_corrected() as f64 / reads * 1e3;
            let uncor_per_mread = protected.total_uncorrectable() as f64 / reads * 1e6;
            let silent_per_kread =
                exposed.silent_corruption_reads as f64 / exposed.reads_checked.max(1) as f64 * 1e3;
            let amplification = exposed.amplification();
            println!(
                "{:<14} {ber:>8} {corrected_per_kread:>10.3} {uncor_per_mread:>10.1} \
                 {:>10} {:>10} {silent_per_kread:>10.3} {amplification:>8.2}",
                strategy.to_string(),
                protected.recovered,
                protected.data_loss,
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"strategy\": \"{strategy}\", \"ber_ppm\": {ber}, \
                 \"reads_checked\": {}, \"injected_flips\": {}, \
                 \"corrected\": {}, \"uncorrectable\": {}, \
                 \"recovered\": {}, \"sdc_averted\": {}, \"data_loss\": {}, \
                 \"scrub_checks\": {}, \"scrub_corrected\": {}, \
                 \"silent_corruption_reads\": {}, \"corrupted_bytes_delivered\": {}, \
                 \"amplification\": {amplification:.4}}}",
                protected.reads_checked,
                protected.injected_flips,
                protected.total_corrected(),
                protected.total_uncorrectable(),
                protected.recovered,
                protected.sdc_averted,
                protected.data_loss,
                protected.scrub_checks,
                protected.scrub_corrected,
                exposed.silent_corruption_reads,
                exposed.corrupted_bytes_delivered,
            );
        }
    }

    let date = today_utc();
    let json = format!(
        "{{\n  \"date\": \"{date}\",\n  \
         \"config\": \"table2 (integrity soak, mirror on, scrub {SCRUB_PERIOD})\",\n  \
         \"instructions_per_core\": {},\n  \"warmup_per_core\": {},\n  \"seed\": {},\n  \
         \"determinism_bit_identical\": true,\n  \"cases\": [\n{rows}\n  ]\n}}\n",
        ec.instructions, ec.warmup, ec.seed,
    );
    let dir = ec.results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_integrity.json");
    std::fs::write(&path, json).expect("write BENCH_integrity.json");

    // Trajectory: sectioned per benchmark; fig_integrity appends its own
    // header once, then one dated row per run (summed over the sweep).
    let traj = dir.join("BENCH_trajectory.tsv");
    let header = "date\tinstr\tflips\tcorrected\tuncorrectable\trecovered\tdata_loss\tsilent";
    let prev = std::fs::read_to_string(&traj).unwrap_or_default();
    let mut sums = [0u64; 6];
    for line in rows.lines() {
        for (i, key) in [
            "\"injected_flips\": ",
            "\"corrected\": ",
            "\"uncorrectable\": ",
            "\"recovered\": ",
            "\"data_loss\": ",
            "\"silent_corruption_reads\": ",
        ]
        .iter()
        .enumerate()
        {
            if let Some(rest) = line.split(key).nth(1) {
                let n: u64 = rest
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0);
                sums[i] += n;
            }
        }
    }
    let mut out = String::new();
    if !prev.contains(header) {
        let _ = writeln!(out, "{header}");
    }
    let _ = write!(out, "{date}\t{}", ec.instructions);
    for s in &sums {
        let _ = write!(out, "\t{s}");
    }
    out.push('\n');
    std::fs::write(&traj, prev + &out).expect("append BENCH_trajectory.tsv");
    println!("\nintegrity sweep -> {}", path.display());
}
