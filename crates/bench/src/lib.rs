//! The experiment harness for the Attaché reproduction.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (see DESIGN.md §4 for the index). The
//! expensive part — the 22-workload × 4-strategy sweep behind Figs. 1 and
//! 12-15 — runs once and is cached as a TSV under `results/`, so the
//! figure binaries after the first are instant.
//!
//! Knobs (environment variables):
//!
//! * `ATTACHE_INSTR` — measured instructions per core (default 600000).
//! * `ATTACHE_WARMUP` — warm-up instructions per core (default 100000).
//! * `ATTACHE_SEED` — the run seed (default 42).
//! * `ATTACHE_RESULTS` — cache directory (default `results`).
//! * `ATTACHE_QUICK` — if set, a fast smoke configuration (40k/8k).

#![warn(missing_docs)]

pub mod results;
pub mod runner;

pub use results::{ResultRow, ResultSet};
pub use runner::{geo_mean, ExperimentConfig};
