//! The experiment harness for the Attaché reproduction.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (see DESIGN.md §4 for the index). Each
//! binary declares its experiments as a [`grid::Grid`] — a (workload ×
//! strategy × override) matrix — and [`grid::Grid::run`] executes the
//! jobs on a worker pool with per-job [`RunReport`](attache_sim::RunReport)
//! memoization under `results/cache/`. Grid points shared between figures
//! (the 22-workload × 5-strategy sweep feeds Figs. 1, 12-15 and 18) are
//! simulated once, ever, per configuration.
//!
//! Knobs (environment variables; see EXPERIMENTS.md for details):
//!
//! * `ATTACHE_INSTR` — measured instructions per core (default 600000).
//! * `ATTACHE_WARMUP` — warm-up instructions per core (default 100000).
//! * `ATTACHE_SEED` — the base seed (default 42); per-job seeds derive
//!   from it.
//! * `ATTACHE_WORKERS` — worker threads (default: all cores). Results
//!   are bit-identical for any worker count.
//! * `ATTACHE_RESULTS` — results directory (default `results`).
//! * `ATTACHE_NO_CACHE` — bypass the report cache (`--no-cache` works
//!   too).
//! * `ATTACHE_QUICK` — if set, a fast smoke configuration (40k/8k).

#![warn(missing_docs)]

pub mod grid;
pub mod resilient;
pub mod results;
pub mod runner;

pub use grid::{parallel_map, CoprVariant, Grid, JobSpec, Overrides, WorkloadRef};
pub use resilient::{run_resilient, JobOutcome};
pub use results::{ResultRow, ResultSet};
pub use runner::{geo_mean, ExperimentConfig};
