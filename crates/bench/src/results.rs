//! The full result sweep: 20 rate-mode workloads + 2 mixes, each under
//! all five metadata strategies.
//!
//! The sweep powers Figs. 1, 11, 12, 13, 14 and 15. It executes through
//! the [`Grid`] engine, so its grid points land in the per-job report
//! cache (`results/cache/`) and every figure binary reuses the same runs.
//! A TSV summary is still written under `results/` as a human-readable
//! artifact, but it is write-only: the per-job cache is the source of
//! truth, so a stale TSV can never feed wrong numbers into a figure.

use attache_sim::{MetadataStrategyKind, RunReport, BUS_CYCLE_NS};
use attache_workloads::{all_rate_profiles, mixes};
use std::io::Write;
use std::path::PathBuf;

use crate::grid::{Grid, WorkloadRef};
use crate::runner::ExperimentConfig;

/// The strategies in sweep (and figure) order. Tracks
/// [`MetadataStrategyKind::ALL`]: the strategy is part of each job's
/// cache key, so appending a strategy leaves every existing
/// `results/cache/` entry valid.
pub const STRATEGIES: [MetadataStrategyKind; MetadataStrategyKind::ALL.len()] =
    MetadataStrategyKind::ALL;

/// One (workload, strategy) result distilled from a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Workload name.
    pub workload: String,
    /// Strategy name (Display form of [`MetadataStrategyKind`]).
    pub strategy: String,
    /// Measured bus cycles.
    pub bus_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Demand reads.
    pub demand_reads: u64,
    /// Corrective reads.
    pub corrective_reads: u64,
    /// Metadata install reads.
    pub metadata_reads: u64,
    /// Replacement-Area reads.
    pub ra_reads: u64,
    /// Data writebacks.
    pub data_writes: u64,
    /// Metadata eviction writes.
    pub metadata_writes: u64,
    /// Replacement-Area writes.
    pub ra_writes: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Average demand-read latency in bus cycles.
    pub avg_read_latency: f64,
    /// Total DRAM energy in pJ.
    pub energy_pj: f64,
    /// COPR accuracy (NaN when not applicable).
    pub copr_accuracy: f64,
    /// Metadata-Cache hit rate (NaN when not applicable).
    pub metadata_cache_hit_rate: f64,
    /// Fraction of demand reads that found a compressed line.
    pub compressed_read_fraction: f64,
}

impl ResultRow {
    /// Distills a run report.
    pub fn from_report(r: &RunReport) -> Self {
        Self {
            workload: r.name.clone(),
            strategy: r.strategy.to_string(),
            bus_cycles: r.bus_cycles,
            instructions: r.instructions,
            demand_reads: r.mem.demand_reads,
            corrective_reads: r.mem.corrective_reads,
            metadata_reads: r.mem.metadata_reads,
            ra_reads: r.mem.replacement_area_reads,
            data_writes: r.mem.data_writes,
            metadata_writes: r.mem.metadata_writes,
            ra_writes: r.mem.replacement_area_writes,
            bytes: r.mem.bytes,
            avg_read_latency: r.mem.avg_read_latency(),
            energy_pj: r.energy.total_pj(),
            copr_accuracy: r.copr.map(|c| c.accuracy()).unwrap_or(f64::NAN),
            metadata_cache_hit_rate: r
                .metadata_cache
                .as_ref()
                .map(|(s, _)| s.hit_rate())
                .unwrap_or(f64::NAN),
            compressed_read_fraction: r.compressed_read_fraction(),
        }
    }

    /// Speedup of this row over its baseline row (cycle ratio).
    pub fn speedup_vs(&self, baseline: &ResultRow) -> f64 {
        baseline.bus_cycles as f64 / self.bus_cycles as f64
    }

    /// Energy relative to the baseline row.
    pub fn energy_ratio_vs(&self, baseline: &ResultRow) -> f64 {
        self.energy_pj / baseline.energy_pj
    }

    /// Extra metadata-related requests as a fraction of demand requests.
    pub fn metadata_traffic_overhead(&self) -> f64 {
        let demand = self.demand_reads + self.corrective_reads + self.data_writes;
        let meta = self.metadata_reads + self.metadata_writes + self.ra_reads + self.ra_writes;
        if demand == 0 {
            0.0
        } else {
            meta as f64 / demand as f64
        }
    }

    /// Total requests (reads + writes, all origins).
    pub fn total_requests(&self) -> u64 {
        self.demand_reads
            + self.corrective_reads
            + self.metadata_reads
            + self.ra_reads
            + self.data_writes
            + self.metadata_writes
            + self.ra_writes
    }

    /// Consumed bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bytes as f64 / (self.bus_cycles as f64 * BUS_CYCLE_NS)
    }

    /// Average demand-read latency in ns.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.avg_read_latency * BUS_CYCLE_NS
    }

    #[cfg(test)]
    const FIELDS: usize = 17;

    fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.workload,
            self.strategy,
            self.bus_cycles,
            self.instructions,
            self.demand_reads,
            self.corrective_reads,
            self.metadata_reads,
            self.ra_reads,
            self.data_writes,
            self.metadata_writes,
            self.ra_writes,
            self.bytes,
            self.avg_read_latency,
            self.energy_pj,
            self.copr_accuracy,
            self.metadata_cache_hit_rate,
            self.compressed_read_fraction,
        )
    }

    /// Parses one TSV row (the inverse of `to_tsv`; exercised by tests to
    /// keep the artifact format stable for external consumers).
    #[cfg(test)]
    fn from_tsv(line: &str) -> Option<Self> {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != Self::FIELDS {
            return None;
        }
        Some(Self {
            workload: f[0].to_string(),
            strategy: f[1].to_string(),
            bus_cycles: f[2].parse().ok()?,
            instructions: f[3].parse().ok()?,
            demand_reads: f[4].parse().ok()?,
            corrective_reads: f[5].parse().ok()?,
            metadata_reads: f[6].parse().ok()?,
            ra_reads: f[7].parse().ok()?,
            data_writes: f[8].parse().ok()?,
            metadata_writes: f[9].parse().ok()?,
            ra_writes: f[10].parse().ok()?,
            bytes: f[11].parse().ok()?,
            avg_read_latency: f[12].parse().ok()?,
            energy_pj: f[13].parse().ok()?,
            copr_accuracy: f[14].parse().ok()?,
            metadata_cache_hit_rate: f[15].parse().ok()?,
            compressed_read_fraction: f[16].parse().ok()?,
        })
    }
}

/// The full sweep, with lookup helpers.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    rows: Vec<ResultRow>,
}

impl ResultSet {
    /// All workload names in sweep order (20 rate profiles + 2 mixes).
    pub fn workload_names() -> Vec<String> {
        let mut names: Vec<String> = all_rate_profiles()
            .iter()
            .map(|p| p.name.to_string())
            .collect();
        names.extend(mixes().iter().map(|m| m.name.to_string()));
        names
    }

    fn tsv_path(cfg: &ExperimentConfig) -> PathBuf {
        cfg.results_dir().join(format!("sweep_{}.tsv", cfg.tag()))
    }

    /// Runs the sweep through the grid engine — pulling every grid point
    /// already simulated from the per-job report cache — and refreshes the
    /// TSV summary artifact.
    pub fn ensure(cfg: &ExperimentConfig) -> ResultSet {
        let set = Self::run_sweep(cfg);
        set.save(&Self::tsv_path(cfg));
        set
    }

    fn save(&self, path: &PathBuf) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut out = String::from(
            "workload\tstrategy\tbus_cycles\tinstructions\tdemand_reads\tcorrective_reads\t\
             metadata_reads\tra_reads\tdata_writes\tmetadata_writes\tra_writes\tbytes\t\
             avg_read_latency\tenergy_pj\tcopr_accuracy\tmetadata_cache_hit_rate\t\
             compressed_read_fraction\n",
        );
        for r in &self.rows {
            out.push_str(&r.to_tsv());
            out.push('\n');
        }
        match std::fs::File::create(path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("[attache-bench] wrote sweep summary to {}", path.display()),
            Err(e) => eprintln!("[attache-bench] could not write sweep summary: {e}"),
        }
    }

    /// The sweep's (workload × strategy) grid: 22 workloads × 5 strategies,
    /// workloads-major per strategy.
    pub fn grid() -> Grid {
        let mut workloads: Vec<WorkloadRef> = all_rate_profiles()
            .iter()
            .map(|p| WorkloadRef::Rate(p.name.to_string()))
            .collect();
        workloads.extend(mixes().iter().map(|m| WorkloadRef::Mix(m.name.to_string())));
        Grid::cross(&workloads, &STRATEGIES)
    }

    /// Runs the full sweep (22 workloads × 5 strategies) on the grid
    /// engine: parallel across `cfg.workers()` threads, memoized per job.
    pub fn run_sweep(cfg: &ExperimentConfig) -> ResultSet {
        let reports = Self::grid().run(cfg);
        ResultSet {
            rows: reports.iter().map(ResultRow::from_report).collect(),
        }
    }

    /// All rows.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// The row for `(workload, strategy)`.
    pub fn get(&self, workload: &str, strategy: MetadataStrategyKind) -> Option<&ResultRow> {
        let s = strategy.to_string();
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.strategy == s)
    }

    /// `(row, baseline_row)` pairs for one strategy across all workloads.
    pub fn with_baseline(
        &self,
        strategy: MetadataStrategyKind,
    ) -> Vec<(&ResultRow, &ResultRow)> {
        Self::workload_names()
            .iter()
            .filter_map(|w| {
                let r = self.get(w, strategy)?;
                let b = self.get(w, MetadataStrategyKind::Baseline)?;
                Some((r, b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> ResultRow {
        ResultRow {
            workload: "mcf".into(),
            strategy: "Attache".into(),
            bus_cycles: 1000,
            instructions: 80_000,
            demand_reads: 500,
            corrective_reads: 10,
            metadata_reads: 0,
            ra_reads: 1,
            data_writes: 100,
            metadata_writes: 0,
            ra_writes: 2,
            bytes: 64_000,
            avg_read_latency: 123.5,
            energy_pj: 9.5e6,
            copr_accuracy: 0.87,
            metadata_cache_hit_rate: f64::NAN,
            compressed_read_fraction: 0.6,
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let row = sample_row();
        let back = ResultRow::from_tsv(&row.to_tsv()).expect("parses");
        assert_eq!(back.workload, row.workload);
        assert_eq!(back.bus_cycles, row.bus_cycles);
        assert!((back.copr_accuracy - row.copr_accuracy).abs() < 1e-12);
        assert!(back.metadata_cache_hit_rate.is_nan());
    }

    #[test]
    fn overhead_fraction() {
        let mut row = sample_row();
        row.metadata_reads = 122; // (122 + 1 + 2) / (500 + 10 + 100)
        let ovh = row.metadata_traffic_overhead();
        assert!((ovh - 125.0 / 610.0).abs() < 1e-12);
    }

    #[test]
    fn workload_catalog_is_complete() {
        let names = ResultSet::workload_names();
        assert_eq!(names.len(), 22);
        assert!(names.contains(&"mix1".to_string()));
        assert!(names.contains(&"RAND".to_string()));
    }

    #[test]
    fn malformed_tsv_is_rejected() {
        assert!(ResultRow::from_tsv("too\tfew\tfields").is_none());
    }
}
