//! The resilient grid executor: crash-safe, resumable sweeps.
//!
//! [`Grid::run`](crate::grid::Grid::run) assumes every job completes; a
//! single panicking grid point (a model bug on one configuration, a
//! mirror-oracle hit, a pathological run that never terminates) kills
//! the whole sweep and throws away hours of sibling work. This module
//! wraps the same worker pool with four guarantees:
//!
//! * **Isolation.** Each job runs under [`std::panic::catch_unwind`]; a
//!   poisoned job is quarantined with its failure context (the panic
//!   message, which carries the trace-ring dump when a ring is attached)
//!   under `results/failures/<job>.txt`, and every other job completes.
//! * **Bounded retries.** Panicked jobs are retried with exponential
//!   backoff up to `ATTACHE_JOB_RETRIES` times (default 1 retry) before
//!   quarantine — one flaky environmental hiccup does not cost a grid
//!   point.
//! * **Watchdog.** With `ATTACHE_JOB_TICK_BUDGET=<bus cycles>` set, a
//!   runaway simulation panics with a typed
//!   [`TickBudgetExceeded`] payload, which the executor converts into a
//!   structured [`JobOutcome::TimedOut`] instead of a crash. Timeouts
//!   are deterministic, so they are not retried.
//! * **Checkpointing.** Completed and quarantined jobs are journaled to
//!   `results/checkpoint.json` (atomic write-then-rename after every
//!   job). With `ATTACHE_RESUME=1`, a re-run reloads finished jobs from
//!   the report cache and re-executes only quarantined or never-started
//!   ones — a killed sweep resumes instead of restarting.
//!
//! `ATTACHE_JOB_LIMIT=<n>` caps the number of jobs *executed* in one
//! invocation (cache hits and resumed jobs are free); jobs past the cap
//! return [`JobOutcome::Deferred`]. Together with `ATTACHE_RESUME` this
//! also gives tests a deterministic "kill the sweep mid-way" lever.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use attache_sim::{env_u64, RunReport, TickBudgetExceeded};

use crate::grid::{Grid, JobSpec};
use crate::runner::ExperimentConfig;

/// Checkpoint journal format version; bumped on layout changes so an
/// old journal is discarded instead of misread.
const CHECKPOINT_VERSION: u32 = 1;

/// What happened to one grid job under the resilient executor.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job completed — freshly executed, from the report cache, or
    /// reloaded via an `ATTACHE_RESUME` checkpoint.
    Done(Box<RunReport>),
    /// The cooperative tick-budget watchdog cut the run off
    /// (`ATTACHE_JOB_TICK_BUDGET`). Deterministic, so never retried.
    TimedOut {
        /// The configured budget in bus cycles.
        budget: u64,
        /// The bus cycle at which the run was stopped.
        at_tick: u64,
    },
    /// The job panicked on every attempt and was quarantined.
    Panicked {
        /// The final attempt's panic message (includes the trace-ring
        /// dump when a ring was attached).
        message: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// Not attempted in this invocation (`ATTACHE_JOB_LIMIT` reached);
    /// a later `ATTACHE_RESUME=1` run picks it up.
    Deferred,
}

impl JobOutcome {
    /// The completed report, when there is one.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            JobOutcome::Done(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// Whether the job failed (timed out or quarantined). `Deferred` is
    /// not a failure — it simply has not run yet.
    pub fn is_failure(&self) -> bool {
        matches!(self, JobOutcome::TimedOut { .. } | JobOutcome::Panicked { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryStatus {
    Done,
    Quarantined,
}

impl EntryStatus {
    fn key(self) -> &'static str {
        match self {
            EntryStatus::Done => "done",
            EntryStatus::Quarantined => "quarantined",
        }
    }

    fn from_key(key: &str) -> Option<EntryStatus> {
        match key {
            "done" => Some(EntryStatus::Done),
            "quarantined" => Some(EntryStatus::Quarantined),
            _ => None,
        }
    }
}

/// The journaled sweep state: one status per job cache-key hash. Written
/// as line-delimited JSON — a header object, then one object per job —
/// rewritten whole (write-tmp-then-rename) after every job so a kill at
/// any instant leaves either the old or the new journal, never a torn
/// one.
#[derive(Debug)]
struct Checkpoint {
    tag: String,
    entries: HashMap<String, EntryStatus>,
}

impl Checkpoint {
    fn new(tag: String) -> Self {
        Self {
            tag,
            entries: HashMap::new(),
        }
    }

    /// Loads a journal written by a previous run of the *same*
    /// configuration; a missing file, an unreadable line, a version
    /// bump, or a different config tag all yield an empty checkpoint
    /// (re-run everything — always safe, never wrong).
    fn load(path: &Path, tag: String) -> Self {
        let mut ckpt = Self::new(tag);
        let Ok(text) = std::fs::read_to_string(path) else {
            return ckpt;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return ckpt;
        };
        let version_ok = json_str_field(header, "version")
            .is_some_and(|v| v.parse() == Ok(CHECKPOINT_VERSION));
        let tag_ok = json_str_field(header, "config").as_deref() == Some(ckpt.tag.as_str());
        if !version_ok || !tag_ok {
            eprintln!(
                "[attache-resilient] checkpoint {} is for a different \
                 configuration or format; starting fresh",
                path.display()
            );
            return ckpt;
        }
        for line in lines {
            let (Some(key), Some(status)) = (
                json_str_field(line, "key"),
                json_str_field(line, "status").and_then(|s| EntryStatus::from_key(&s)),
            ) else {
                continue;
            };
            ckpt.entries.insert(key, status);
        }
        ckpt
    }

    fn save(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut text = format!(
            "{{\"version\": \"{CHECKPOINT_VERSION}\", \"config\": \"{}\"}}\n",
            self.tag
        );
        // Sorted for a stable, diffable journal.
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(key, _)| key.as_str());
        for (key, status) in entries {
            text.push_str(&format!(
                "{{\"key\": \"{key}\", \"status\": \"{}\"}}\n",
                status.key()
            ));
        }
        let tmp = path.with_extension("tmp");
        if let Err(e) = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path)) {
            eprintln!(
                "[attache-resilient] warning: could not journal checkpoint at {}: {e}",
                path.display()
            );
        }
    }
}

/// Extracts the string value of `"field": "..."` from a single-line JSON
/// object. The journal's values (hex hashes, config tags, status names)
/// never contain quotes or escapes, so plain scanning is exact here.
fn json_str_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The checkpoint journal's location for `cfg`.
pub fn checkpoint_path(cfg: &ExperimentConfig) -> PathBuf {
    cfg.results_dir().join("checkpoint.json")
}

/// The quarantine directory for `cfg` (one `.txt` per failed job).
pub fn failures_dir(cfg: &ExperimentConfig) -> PathBuf {
    cfg.results_dir().join("failures")
}

fn resume_from_env() -> bool {
    match std::env::var("ATTACHE_RESUME") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Executes every job of `grid` with per-job panic isolation, retries,
/// the tick-budget watchdog, and checkpoint journaling (see the module
/// docs). Returns one [`JobOutcome`] per job, in job order.
pub fn run_resilient(grid: &Grid, cfg: &ExperimentConfig) -> Vec<JobOutcome> {
    let retries = env_u64("ATTACHE_JOB_RETRIES", 1) as u32;
    let job_limit = attache_sim::env_u64_opt("ATTACHE_JOB_LIMIT").map(|n| n as usize);
    let resume = resume_from_env();
    let use_cache = cfg.cache_enabled();
    let ckpt_path = checkpoint_path(cfg);
    let tag = cfg.tag();
    let ckpt = Mutex::new(if resume {
        Checkpoint::load(&ckpt_path, tag)
    } else {
        Checkpoint::new(tag)
    });
    let executed = AtomicUsize::new(0);
    let total = grid.jobs().len();
    let done_count = AtomicUsize::new(0);
    let update = |hash: &str, status: EntryStatus| {
        let mut c = ckpt.lock().expect("checkpoint lock poisoned");
        c.entries.insert(hash.to_string(), status);
        c.save(&ckpt_path);
    };
    crate::grid::parallel_map(cfg.workers(), grid.jobs(), |_, job| {
        let key = job.cache_key(cfg);
        let hash = format!("{:016x}", crate::grid::fnv1a64(key.as_bytes()));
        let path = job.cache_path(cfg);
        let journaled_done = resume
            && ckpt.lock().expect("checkpoint lock poisoned").entries.get(&hash)
                == Some(&EntryStatus::Done);
        if journaled_done || use_cache {
            // A journaled-done job *should* reload from the cache; if its
            // file vanished or rotted, fall through and re-execute.
            if let Some(report) = crate::grid::load_cached(&path, &key) {
                let k = done_count.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[attache-resilient] [{k:>3}/{total}] {} {} (bus_cycles={})",
                    job.label(),
                    if journaled_done { "resumed" } else { "cached" },
                    report.bus_cycles
                );
                update(&hash, EntryStatus::Done);
                return JobOutcome::Done(Box::new(report));
            }
        }
        if let Some(limit) = job_limit {
            if executed.fetch_add(1, Ordering::Relaxed) >= limit {
                return JobOutcome::Deferred;
            }
        }
        let k = done_count.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("[attache-resilient] [{k:>3}/{total}] {} running...", job.label());
        let outcome = run_one(job, cfg, retries);
        match &outcome {
            JobOutcome::Done(report) => {
                if use_cache {
                    crate::grid::store_cached(&path, report, &key);
                }
                update(&hash, EntryStatus::Done);
            }
            JobOutcome::TimedOut { budget, at_tick } => {
                quarantine(
                    cfg,
                    job,
                    &key,
                    &format!("timed out at bus cycle {at_tick} (budget {budget})"),
                    1,
                );
                update(&hash, EntryStatus::Quarantined);
            }
            JobOutcome::Panicked { message, attempts } => {
                quarantine(cfg, job, &key, message, *attempts);
                update(&hash, EntryStatus::Quarantined);
            }
            JobOutcome::Deferred => unreachable!("run_one never defers"),
        }
        outcome
    })
}

/// One job, up to `1 + retries` attempts with exponential backoff.
fn run_one(job: &JobSpec, cfg: &ExperimentConfig, retries: u32) -> JobOutcome {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| job.execute(cfg))) {
            Ok(report) => return JobOutcome::Done(Box::new(report)),
            Err(payload) => {
                if let Some(t) = payload.downcast_ref::<TickBudgetExceeded>() {
                    return JobOutcome::TimedOut {
                        budget: t.budget,
                        at_tick: t.now,
                    };
                }
                let message = panic_message(payload);
                if attempts > retries {
                    return JobOutcome::Panicked { message, attempts };
                }
                eprintln!(
                    "[attache-resilient] {} attempt {attempts} panicked ({}); retrying",
                    job.label(),
                    message.lines().next().unwrap_or("no message")
                );
                std::thread::sleep(backoff(attempts));
            }
        }
    }
}

/// Exponential backoff before retry `attempt + 1`: 200ms, 400ms, ...
/// capped at ~6.4s so a misconfigured retry count cannot stall a sweep.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(100u64 << attempt.min(6))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Writes the failure context for a quarantined job to
/// `results/failures/<job>.txt`: the label, the full cache key, the
/// attempt count, and the panic message — which already carries the
/// trace-ring dump when the job ran with a ring attached.
fn quarantine(cfg: &ExperimentConfig, job: &JobSpec, key: &str, message: &str, attempts: u32) {
    let dir = failures_dir(cfg);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[attache-resilient] warning: could not create {}: {e}",
            dir.display()
        );
        return;
    }
    let path = dir.join(format!("{}.txt", job.export_stem(cfg)));
    let text = format!(
        "job: {}\ncache key: {key}\nattempts: {attempts}\n\n{message}\n",
        job.label()
    );
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!(
            "[attache-resilient] warning: could not write quarantine file {}: {e}",
            path.display()
        );
    } else {
        eprintln!(
            "[attache-resilient] {} quarantined; context in {}",
            job.label(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction() {
        let line = "{\"key\": \"00ff\", \"status\": \"done\"}";
        assert_eq!(json_str_field(line, "key").as_deref(), Some("00ff"));
        assert_eq!(json_str_field(line, "status").as_deref(), Some("done"));
        assert_eq!(json_str_field(line, "missing"), None);
        assert_eq!(json_str_field("not json", "key"), None);
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_other_configs() {
        let dir = std::env::temp_dir().join(format!(
            "attache-resilient-ckpt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let mut c = Checkpoint::new("i100_w10_s42".to_string());
        c.entries
            .insert("00aa".to_string(), EntryStatus::Done);
        c.entries
            .insert("00bb".to_string(), EntryStatus::Quarantined);
        c.save(&path);
        let same = Checkpoint::load(&path, "i100_w10_s42".to_string());
        assert_eq!(same.entries.len(), 2);
        assert_eq!(same.entries.get("00aa"), Some(&EntryStatus::Done));
        assert_eq!(same.entries.get("00bb"), Some(&EntryStatus::Quarantined));
        // A different run configuration must not inherit the journal.
        let other = Checkpoint::load(&path, "i200_w10_s42".to_string());
        assert!(other.entries.is_empty());
        // Garbage in the file degrades to an empty checkpoint.
        std::fs::write(&path, "}{ torn").unwrap();
        let torn = Checkpoint::load(&path, "i100_w10_s42".to_string());
        assert!(torn.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(backoff(1), Duration::from_millis(200));
        assert_eq!(backoff(2), Duration::from_millis(400));
        assert!(backoff(60) <= Duration::from_millis(6400));
    }
}
