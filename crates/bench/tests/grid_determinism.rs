//! The grid engine's two load-bearing guarantees, end to end:
//!
//! * parallel execution is bit-identical to serial execution, and
//! * the on-disk report cache round-trips reports exactly and never serves
//!   an entry for a different configuration.
//!
//! Run lengths are tiny (a few thousand instructions) — these tests
//! exercise the engine, not the paper's numbers.

use attache_bench::{Grid, JobSpec, Overrides, WorkloadRef};
use attache_sim::{report_io, MetadataStrategyKind, RunReport};

/// A small but non-trivial grid: two workloads (one of each kind) under
/// two strategies, plus one overridden job.
fn small_grid() -> Grid {
    let workloads = [
        WorkloadRef::Rate("mcf".to_string()),
        WorkloadRef::Mix("mix1".to_string()),
    ];
    let strategies = [
        MetadataStrategyKind::Baseline,
        MetadataStrategyKind::Attache,
    ];
    let mut grid = Grid::cross(&workloads, &strategies);
    grid.push(JobSpec {
        workload: WorkloadRef::Rate("lbm".to_string()),
        strategy: MetadataStrategyKind::Attache,
        overrides: Overrides {
            cid_bits: Some(10),
            ..Overrides::default()
        },
    });
    grid
}

/// Runs the grid at the given worker count in a throwaway results
/// directory, with the report cache disabled so every job recomputes.
fn run_uncached(workers: usize) -> Vec<RunReport> {
    // The env knobs below are process-global, so serialize the tests that
    // touch them.
    let _guard = env_lock().lock().unwrap();
    let dir = temp_dir(&format!("uncached-w{workers}"));
    std::env::set_var("ATTACHE_QUICK", "1");
    std::env::set_var("ATTACHE_INSTR", "4000");
    std::env::set_var("ATTACHE_WARMUP", "800");
    std::env::set_var("ATTACHE_WORKERS", workers.to_string());
    std::env::set_var("ATTACHE_NO_CACHE", "1");
    std::env::set_var("ATTACHE_RESULTS", &dir);
    let cfg = attache_bench::ExperimentConfig::from_env();
    let reports = small_grid().run(&cfg);
    cleanup_env();
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

fn env_lock() -> &'static std::sync::Mutex<()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    &LOCK
}

fn cleanup_env() {
    for k in [
        "ATTACHE_QUICK",
        "ATTACHE_INSTR",
        "ATTACHE_WARMUP",
        "ATTACHE_WORKERS",
        "ATTACHE_NO_CACHE",
        "ATTACHE_RESULTS",
    ] {
        std::env::remove_var(k);
    }
}

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "attache-grid-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

#[test]
fn parallel_grid_matches_serial_bit_for_bit() {
    let serial = run_uncached(1);
    let parallel = run_uncached(2);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // RunReport derives PartialEq over every counter and f64, so this
        // is a full bit-level comparison of the simulation outcome.
        assert_eq!(s, p, "parallel run diverged for {}/{}", s.name, s.strategy);
    }
}

#[test]
fn cache_round_trips_and_misses_on_config_change() {
    let _guard = env_lock().lock().unwrap();
    let dir = temp_dir("cache");
    std::env::set_var("ATTACHE_QUICK", "1");
    std::env::set_var("ATTACHE_INSTR", "3000");
    std::env::set_var("ATTACHE_WARMUP", "600");
    std::env::set_var("ATTACHE_WORKERS", "2");
    std::env::remove_var("ATTACHE_NO_CACHE");
    std::env::set_var("ATTACHE_RESULTS", &dir);
    let cfg = attache_bench::ExperimentConfig::from_env();

    let grid = small_grid();
    let first = grid.run(&cfg);

    // Every job must now have a cache file...
    let cache_dir = cfg.cache_dir();
    let entries = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists after a cached run")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "report"))
        .count();
    assert_eq!(entries, grid.jobs().len(), "one cache file per job");

    // ...and a second run must reproduce the first from cache, exactly.
    let second = grid.run(&cfg);
    assert_eq!(first, second, "cache round-trip changed a report");

    // A direct file-level round-trip is also exact.
    let job = &grid.jobs()[0];
    let key = job.cache_key(&cfg);
    let report = &first[0];
    let text = report_io::to_text(report, &key);
    let back = report_io::from_text(&text, Some(&key)).expect("parses");
    assert_eq!(*report, back);

    // A changed configuration must not hit stale entries: same cache dir,
    // different run length, so every job recomputes under new keys.
    std::env::set_var("ATTACHE_INSTR", "4000");
    let longer = attache_bench::ExperimentConfig::from_env();
    assert_ne!(
        grid.jobs()[0].cache_key(&cfg),
        grid.jobs()[0].cache_key(&longer),
        "run length must be part of the cache key"
    );
    let third = grid.run(&longer);
    assert_ne!(
        first[0].bus_cycles, third[0].bus_cycles,
        "longer run served from stale cache entry"
    );

    // And a key mismatch at the file level reads as a miss, not as data.
    assert!(report_io::from_text(&text, Some("some-other-key")).is_none());

    cleanup_env();
    let _ = std::fs::remove_dir_all(&dir);
}
