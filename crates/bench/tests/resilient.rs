//! End-to-end suite for the resilient grid executor
//! (`crates/bench/src/resilient.rs`): quarantine with failure context,
//! the tick-budget watchdog, and crash-safe checkpoint/resume.
//!
//! Everything lives in ONE `#[test]` because every scenario mutates
//! process-global `ATTACHE_*` variables and the harness runs a binary's
//! tests concurrently; the phases share one environment and run in
//! sequence. Run lengths are tiny — this exercises the executor, not the
//! paper's numbers.

use attache_bench::{
    resilient, ExperimentConfig, Grid, JobOutcome, JobSpec, Overrides, WorkloadRef,
};
use attache_sim::MetadataStrategyKind;

fn healthy_grid() -> Grid {
    Grid::cross(
        &[WorkloadRef::Rate("mcf".to_string()), WorkloadRef::Rate("lbm".to_string())],
        &[MetadataStrategyKind::Baseline],
    )
}

/// `healthy_grid` plus one job whose mirror oracle is deliberately
/// poisoned (`Overrides::mirror_poison`), so it panics mid-simulation
/// with a trace-ring dump in the message — the executor's worst case.
/// The footprint cap forces a written-back line to be re-read (and its
/// poisoned record checked) within a smoke-length run.
fn poisoned_grid() -> Grid {
    let mut grid = healthy_grid();
    grid.push(JobSpec {
        workload: WorkloadRef::Rate("mcf".to_string()),
        strategy: MetadataStrategyKind::Attache,
        overrides: Overrides {
            mirror_poison: true,
            footprint_lines: Some(4096),
            ..Overrides::default()
        },
    });
    grid
}

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "attache-resilient-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn base_env(results_dir: &str) {
    std::env::set_var("ATTACHE_QUICK", "1");
    std::env::set_var("ATTACHE_INSTR", "3000");
    std::env::set_var("ATTACHE_WARMUP", "600");
    // One worker: ATTACHE_JOB_LIMIT then cuts the sweep at a
    // deterministic job boundary, modelling a mid-sweep kill.
    std::env::set_var("ATTACHE_WORKERS", "1");
    // No backoff sleeps in tests.
    std::env::set_var("ATTACHE_JOB_RETRIES", "0");
    std::env::remove_var("ATTACHE_NO_CACHE");
    std::env::remove_var("ATTACHE_RESUME");
    std::env::remove_var("ATTACHE_JOB_LIMIT");
    std::env::remove_var("ATTACHE_JOB_TICK_BUDGET");
    std::env::set_var("ATTACHE_RESULTS", results_dir);
}

fn cleanup_env() {
    for k in [
        "ATTACHE_QUICK",
        "ATTACHE_INSTR",
        "ATTACHE_WARMUP",
        "ATTACHE_WORKERS",
        "ATTACHE_JOB_RETRIES",
        "ATTACHE_NO_CACHE",
        "ATTACHE_RESUME",
        "ATTACHE_JOB_LIMIT",
        "ATTACHE_JOB_TICK_BUDGET",
        "ATTACHE_RESULTS",
    ] {
        std::env::remove_var(k);
    }
}

#[test]
fn resilient_executor_quarantines_resumes_and_times_out() {
    // ---- Phase A: a poisoned job is quarantined; its siblings finish.
    let dir = temp_dir("quarantine");
    base_env(&dir);
    let cfg = ExperimentConfig::from_env();
    let grid = poisoned_grid();
    let outcomes = resilient::run_resilient(&grid, &cfg);
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].report().is_some(), "healthy job 0 must complete");
    assert!(outcomes[1].report().is_some(), "healthy job 1 must complete");
    let JobOutcome::Panicked { message, attempts } = &outcomes[2] else {
        panic!("poisoned job must be quarantined, got {:?}", outcomes[2]);
    };
    assert_eq!(*attempts, 1, "ATTACHE_JOB_RETRIES=0 means exactly one attempt");
    assert!(
        message.contains("mirror oracle"),
        "the panic message must identify the oracle: {message}"
    );
    assert!(
        message.contains("trace ring"),
        "the poisoned job runs with a ring, so the failure context must \
         carry the event dump: {message}"
    );

    // The quarantine file carries the same context for post-mortems.
    let failure_path = resilient::failures_dir(&cfg)
        .join(format!("{}.txt", grid.jobs()[2].export_stem(&cfg)));
    let failure_text = std::fs::read_to_string(&failure_path)
        .unwrap_or_else(|e| panic!("quarantine file {} must exist: {e}", failure_path.display()));
    assert!(failure_text.contains("mirror oracle") && failure_text.contains("trace ring"));

    // The checkpoint journal records two done jobs and one quarantined.
    let journal = std::fs::read_to_string(resilient::checkpoint_path(&cfg)).unwrap();
    assert_eq!(journal.matches("\"done\"").count(), 2, "journal: {journal}");
    assert_eq!(journal.matches("\"quarantined\"").count(), 1, "journal: {journal}");

    // ---- Phase B: ATTACHE_RESUME re-runs ONLY the quarantined job; the
    // finished jobs come back byte-identical from the cache.
    std::env::set_var("ATTACHE_RESUME", "1");
    let resumed = resilient::run_resilient(&grid, &cfg);
    assert_eq!(
        resumed[0].report(),
        outcomes[0].report(),
        "a resumed finished job must reproduce its report exactly"
    );
    assert_eq!(resumed[1].report(), outcomes[1].report());
    assert!(resumed[2].is_failure(), "the poisoned job fails again on resume");
    std::env::remove_var("ATTACHE_RESUME");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase C: ATTACHE_JOB_LIMIT models a mid-sweep kill; resume
    // completes the rest and the union is byte-identical to an
    // uninterrupted sweep.
    let dir = temp_dir("resume");
    base_env(&dir);
    let cfg = ExperimentConfig::from_env();
    let grid = healthy_grid();
    std::env::set_var("ATTACHE_JOB_LIMIT", "1");
    let partial = resilient::run_resilient(&grid, &cfg);
    assert!(partial[0].report().is_some(), "the first job fits the limit");
    assert_eq!(partial[1], JobOutcome::Deferred, "the second job must be cut off");
    std::env::remove_var("ATTACHE_JOB_LIMIT");
    std::env::set_var("ATTACHE_RESUME", "1");
    let completed = resilient::run_resilient(&grid, &cfg);
    let reports: Vec<_> = completed
        .iter()
        .map(|o| o.report().expect("resume completes every job").clone())
        .collect();
    std::env::remove_var("ATTACHE_RESUME");

    // The ground truth: the plain grid engine in a fresh directory.
    let baseline_dir = temp_dir("baseline");
    std::env::set_var("ATTACHE_RESULTS", &baseline_dir);
    let baseline = grid.run(&ExperimentConfig::from_env());
    assert_eq!(
        reports, baseline,
        "a killed-and-resumed sweep must be byte-identical to an uninterrupted one"
    );

    // ---- Phase C2: corrupt cache entries read as a (warned) miss; the
    // jobs re-run and overwrite them with valid reports.
    std::env::set_var("ATTACHE_RESULTS", &dir);
    let garbage = b"}} definitely not a report {{";
    let cache_files: Vec<_> = std::fs::read_dir(cfg.cache_dir())
        .expect("cache dir exists after the sweep")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "report"))
        .collect();
    assert_eq!(cache_files.len(), 2, "one cache file per healthy job");
    for p in &cache_files {
        std::fs::write(p, garbage).unwrap();
    }
    let rerun = resilient::run_resilient(&grid, &cfg);
    for (o, b) in rerun.iter().zip(&baseline) {
        assert_eq!(
            o.report(),
            Some(b),
            "a corrupt cache entry must re-run to the same report, not fail"
        );
    }
    for p in &cache_files {
        let bytes = std::fs::read(p).unwrap();
        assert_ne!(bytes, garbage.to_vec(), "the re-run must overwrite the corrupt entry");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&baseline_dir);

    // ---- Phase D: the tick-budget watchdog turns a runaway job into a
    // structured TimedOut instead of a crash or a hang.
    let dir = temp_dir("watchdog");
    base_env(&dir);
    std::env::set_var("ATTACHE_JOB_TICK_BUDGET", "500");
    let cfg = ExperimentConfig::from_env();
    let grid = Grid::cross(
        &[WorkloadRef::Rate("mcf".to_string())],
        &[MetadataStrategyKind::Baseline],
    );
    let outcomes = resilient::run_resilient(&grid, &cfg);
    let JobOutcome::TimedOut { budget, at_tick } = outcomes[0] else {
        panic!("a 500-cycle budget must time the job out, got {:?}", outcomes[0]);
    };
    assert_eq!(budget, 500);
    assert!(at_tick > 500, "the watchdog fires at the first tick past the budget");
    let failure_text = std::fs::read_to_string(
        resilient::failures_dir(&cfg).join(format!("{}.txt", grid.jobs()[0].export_stem(&cfg))),
    )
    .expect("timed-out jobs are quarantined with context");
    assert!(failure_text.contains("timed out"), "context: {failure_text}");

    cleanup_env();
    let _ = std::fs::remove_dir_all(&dir);
}
