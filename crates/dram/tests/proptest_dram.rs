//! Property-based tests for the DRAM model: the timing state machines must
//! never lose a request, latencies must respect physical floors, and the
//! address mapping must be a bijection.

use attache_dram::{
    AccessKind, AccessWidth, AddressMapping, DramConfig, MemRequest, MemorySystem, Origin,
    PowerParams, SubrankId, Timing,
};
use proptest::prelude::*;

fn width_strategy() -> impl Strategy<Value = AccessWidth> {
    prop_oneof![
        Just(AccessWidth::Full),
        Just(AccessWidth::Half(SubrankId(0))),
        Just(AccessWidth::Half(SubrankId(1))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_is_bijective(addr in 0u64..(1 << 28)) {
        let m = AddressMapping::new(DramConfig::table2());
        prop_assert_eq!(m.compose(m.decompose(addr)), addr);
    }

    #[test]
    fn every_request_completes_exactly_once(
        reqs in prop::collection::vec(
            (0u64..(1 << 20), any::<bool>(), width_strategy()),
            1..40,
        ),
    ) {
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        let mut pending: Vec<u64> = Vec::new();
        let mut backlog: Vec<MemRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, (line, is_write, width))| MemRequest {
                id: i as u64,
                line_addr: *line,
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
                width: *width,
                origin: Origin::Demand { core: 0 },
                arrival: 0,
            })
            .collect();
        // Writes to duplicate lines coalesce: they complete as one DRAM
        // write, so only track the surviving instance per line.
        let mut seen_done = std::collections::HashSet::new();
        let mut write_lines = std::collections::HashMap::new();
        for r in &backlog {
            if r.kind == AccessKind::Write {
                write_lines.insert(r.line_addr, r.id); // last write wins
            }
        }
        let mut expected: std::collections::HashSet<u64> = backlog
            .iter()
            .filter(|r| {
                r.kind == AccessKind::Read || write_lines.get(&r.line_addr) == Some(&r.id)
            })
            .map(|r| r.id)
            .collect();
        // Reads that match a queued write may be forwarded; they still
        // complete. Coalesced-away writes never do.
        backlog.reverse();
        let mut guard = 0u64;
        while !(backlog.is_empty() && pending.is_empty() && expected.is_empty()) {
            while let Some(req) = backlog.pop() {
                let id = req.id;
                let arrival_fixed = MemRequest { arrival: mem.now(), ..req };
                if mem.enqueue(arrival_fixed).is_ok() {
                    pending.push(id);
                } else {
                    backlog.push(req);
                    break;
                }
            }
            mem.tick();
            for c in mem.drain_completions() {
                prop_assert!(
                    seen_done.insert(c.request.id),
                    "request {} completed twice", c.request.id
                );
                expected.remove(&c.request.id);
                pending.retain(|&p| p != c.request.id);
            }
            guard += 1;
            prop_assert!(guard < 2_000_000, "requests must not be lost");
        }
    }

    #[test]
    fn read_latency_has_physical_floor(
        line in 0u64..(1 << 24),
        width in width_strategy(),
    ) {
        let t = Timing::table2();
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        mem.enqueue(MemRequest {
            id: 0,
            line_addr: line,
            kind: AccessKind::Read,
            width,
            origin: Origin::Demand { core: 0 },
            arrival: 0,
        }).unwrap();
        let mut done = Vec::new();
        for _ in 0..10_000 {
            mem.tick();
            done = mem.drain_completions();
            if !done.is_empty() {
                break;
            }
        }
        prop_assert_eq!(done.len(), 1);
        // Cold bank: ACT + tRCD + CL + burst is the minimum possible.
        let floor = t.t_rcd + t.t_cas + t.t_burst;
        prop_assert!(done[0].latency() >= floor, "latency {}", done[0].latency());
    }

    #[test]
    fn energy_is_monotone_in_work(extra in 1u64..16) {
        let run = |n: u64| {
            let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
            for i in 0..n {
                mem.enqueue(MemRequest {
                    id: i,
                    line_addr: i * 64,
                    kind: AccessKind::Read,
                    width: AccessWidth::Full,
                    origin: Origin::Demand { core: 0 },
                    arrival: 0,
                }).unwrap();
            }
            let mut got = 0;
            while got < n as usize {
                mem.tick();
                got += mem.drain_completions().len();
            }
            mem.energy().total_pj()
        };
        prop_assert!(run(4 + extra) > run(4));
    }
}
