//! Property-based tests for the DRAM model: the timing state machines must
//! never lose a request, latencies must respect physical floors, and the
//! address mapping must be a bijection.
//!
//! Cases come from the shared seeded splitmix64 generator in
//! `attache-testkit` (no external property-testing crate), so the suite
//! builds offline and each failing case is reproducible from its iteration
//! index. The seeds (30..=33) predate the testkit port; `width` consumes
//! one draw exactly like the old `Gen::width` method did, so the streams
//! (and any recorded failing-case indices) are unchanged.

use attache_dram::{
    AccessKind, AccessWidth, AddressMapping, DramConfig, MemRequest, MemorySystem, Origin,
    PowerParams, SubrankId, Timing,
};
use attache_testkit::Gen;

/// One draw → an access width, with Full and each half sub-rank equally
/// likely.
fn width(g: &mut Gen) -> AccessWidth {
    match g.below(3) {
        0 => AccessWidth::Full,
        1 => AccessWidth::Half(SubrankId(0)),
        _ => AccessWidth::Half(SubrankId(1)),
    }
}

#[test]
fn mapping_is_bijective() {
    let mut g = Gen::new(30);
    let m = AddressMapping::new(DramConfig::table2());
    for case in 0..4096 {
        let addr = g.next_u64() % (1 << 28);
        assert_eq!(m.compose(m.decompose(addr)), addr, "case {case}");
    }
}

#[test]
fn every_request_completes_exactly_once() {
    let mut g = Gen::new(31);
    for case in 0..64 {
        let n = 1 + g.next_u64() % 40;
        let reqs: Vec<(u64, bool, AccessWidth)> = (0..n)
            .map(|_| {
                (
                    g.next_u64() % (1 << 20),
                    g.next_u64() & 1 == 1,
                    width(&mut g),
                )
            })
            .collect();
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        let mut pending: Vec<u64> = Vec::new();
        let mut backlog: Vec<MemRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, (line, is_write, width))| MemRequest {
                id: i as u64,
                line_addr: *line,
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
                width: *width,
                origin: Origin::Demand { core: 0 },
                arrival: 0,
            })
            .collect();
        // Writes to duplicate lines coalesce: they complete as one DRAM
        // write, so only track the surviving instance per line.
        let mut seen_done = std::collections::HashSet::new();
        let mut write_lines = std::collections::HashMap::new();
        for r in &backlog {
            if r.kind == AccessKind::Write {
                write_lines.insert(r.line_addr, r.id); // last write wins
            }
        }
        let mut expected: std::collections::HashSet<u64> = backlog
            .iter()
            .filter(|r| {
                r.kind == AccessKind::Read || write_lines.get(&r.line_addr) == Some(&r.id)
            })
            .map(|r| r.id)
            .collect();
        // Reads that match a queued write may be forwarded; they still
        // complete. Coalesced-away writes never do.
        backlog.reverse();
        let mut guard = 0u64;
        while !(backlog.is_empty() && pending.is_empty() && expected.is_empty()) {
            while let Some(req) = backlog.pop() {
                let id = req.id;
                let arrival_fixed = MemRequest { arrival: mem.now(), ..req };
                if mem.enqueue(arrival_fixed).is_ok() {
                    pending.push(id);
                } else {
                    backlog.push(req);
                    break;
                }
            }
            mem.tick();
            for c in mem.drain_completions() {
                assert!(
                    seen_done.insert(c.request.id),
                    "case {case}: request {} completed twice",
                    c.request.id
                );
                expected.remove(&c.request.id);
                pending.retain(|&p| p != c.request.id);
            }
            guard += 1;
            assert!(guard < 2_000_000, "case {case}: requests must not be lost");
        }
    }
}

#[test]
fn read_latency_has_physical_floor() {
    let mut g = Gen::new(32);
    for case in 0..256 {
        let line = g.next_u64() % (1 << 24);
        let width = width(&mut g);
        let t = Timing::table2();
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        mem.enqueue(MemRequest {
            id: 0,
            line_addr: line,
            kind: AccessKind::Read,
            width,
            origin: Origin::Demand { core: 0 },
            arrival: 0,
        })
        .unwrap();
        let mut done = Vec::new();
        for _ in 0..10_000 {
            mem.tick();
            done = mem.drain_completions();
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1, "case {case}");
        // Cold bank: ACT + tRCD + CL + burst is the minimum possible.
        let floor = t.t_rcd + t.t_cas + t.t_burst;
        assert!(
            done[0].latency() >= floor,
            "case {case}: latency {}",
            done[0].latency()
        );
    }
}

#[test]
fn energy_is_monotone_in_work() {
    let run = |n: u64| {
        let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
        for i in 0..n {
            mem.enqueue(MemRequest {
                id: i,
                line_addr: i * 64,
                kind: AccessKind::Read,
                width: AccessWidth::Full,
                origin: Origin::Demand { core: 0 },
                arrival: 0,
            })
            .unwrap();
        }
        let mut got = 0;
        while got < n as usize {
            mem.tick();
            got += mem.drain_completions().len();
        }
        mem.energy().total_pj()
    };
    let mut g = Gen::new(33);
    for case in 0..16 {
        let extra = 1 + g.next_u64() % 15;
        assert!(run(4 + extra) > run(4), "case {case}: extra {extra}");
    }
}
