//! DRAM protocol conformance: the scheduler's command stream, audited.
//!
//! Randomized traffic runs with a [`ConformanceChecker`] attached to every
//! channel; any ACT/RD/WR/PRE/REF the independent shadow model deems
//! illegal panics the run, so a green test *is* the zero-violation claim.
//! The suite also proves the auditor has teeth: a deliberately injected
//! early CAS (replayed from `tests/corpus/dram-trcd.case`) and a full
//! system run audited against deliberately stricter reference timings are
//! both caught.

use attache_dram::{
    AccessKind, AccessWidth, ConformanceChecker, DramCommand, DramConfig, MemRequest,
    MemorySystem, Origin, PowerParams, SubrankId, Timing,
};
use attache_testkit::{CorpusCase, Gen};

fn width(g: &mut Gen) -> AccessWidth {
    match g.below(3) {
        0 => AccessWidth::Full,
        1 => AccessWidth::Half(SubrankId(0)),
        _ => AccessWidth::Half(SubrankId(1)),
    }
}

fn random_request(g: &mut Gen, id: u64, now: u64) -> MemRequest {
    MemRequest {
        id,
        line_addr: g.next_u64() % (1 << 18),
        kind: if g.bool() { AccessKind::Write } else { AccessKind::Read },
        width: width(g),
        origin: Origin::Demand { core: 0 },
        arrival: now,
    }
}

/// Ticks `mem` for `cycles`, feeding it randomized requests as queue
/// space allows. Long enough runs cross tREFI, so REF commands are
/// audited too.
fn drive(mem: &mut MemorySystem, g: &mut Gen, requests: u64, cycles: u64) {
    let mut sent = 0;
    for _ in 0..cycles {
        if sent < requests && g.below(3) == 0 {
            let req = random_request(g, sent, mem.now());
            if mem.enqueue(req).is_ok() {
                sent += 1;
            }
        }
        mem.tick();
        mem.drain_completions();
    }
    assert_eq!(sent, requests, "queue pressure kept requests out of the run");
}

#[test]
fn legal_randomized_traffic_has_zero_violations() {
    // Auditor panics on the first violation, so reaching the stats
    // assertions means the whole stream conformed. 26k cycles crosses
    // two tREFI windows: refreshes (and their precharges) are audited.
    let mut g = Gen::new(0xC0F0);
    let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
    mem.enable_conformance();
    drive(&mut mem, &mut g, 600, 26_000);
    let stats = mem.conformance_stats().expect("auditor attached");
    assert!(stats.commands_checked > 0, "auditor saw no commands");
    assert!(stats.activates > 0, "traffic must activate rows");
    assert!(stats.reads > 0 && stats.writes > 0, "traffic must mix CAS kinds");
    assert!(stats.precharges > 0, "row conflicts must precharge");
    assert!(stats.refreshes > 0, "a 26k-cycle run must refresh");
}

#[test]
fn event_engine_fast_forward_keeps_the_auditor_consistent() {
    // The event engine's idle fast-forward path performs refreshes in
    // bulk without issuing per-cycle commands; the auditor must absorb
    // them (banks closed, rank busy) and still validate the traffic that
    // resumes afterwards.
    let mut g = Gen::new(0xC0F1);
    let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
    mem.enable_conformance();
    drive(&mut mem, &mut g, 120, 6_000);
    // Drain to idle, then leap across several tREFI windows.
    let mut guard = 0;
    while !mem.is_idle() {
        mem.tick();
        mem.drain_completions();
        guard += 1;
        assert!(guard < 200_000, "system failed to drain to idle");
    }
    let t = Timing::table2();
    mem.advance_idle_to(mem.now() + 5 * t.t_refi);
    drive(&mut mem, &mut g, 120, 6_000);
    let stats = mem.conformance_stats().expect("auditor attached");
    assert!(stats.refreshes >= 5, "bulk refreshes must be accounted");
    assert!(stats.reads > 0 && stats.writes > 0);
}

#[test]
fn injected_trcd_violation_is_caught() {
    // Replays tests/corpus/dram-trcd.case: a CAS one cycle before the
    // activated row is usable must be rejected with the tRCD rule.
    let case = CorpusCase::load("dram-trcd");
    let bank = case.require("bank") as usize;
    let row = case.require("row") as usize;
    let act = case.require("act-cycle");
    let t = Timing::table2();
    let mut c = ConformanceChecker::new(&DramConfig::table2());
    c.observe(act, 0, &DramCommand::Activate { bank, row, mask: 0b11 })
        .expect("the ACT itself is legal");
    let v = c
        .observe(act + t.t_rcd - 1, 0, &DramCommand::Read { bank, row, mask: 0b11 })
        .unwrap_err();
    assert_eq!(v.rule, "tRCD");
    assert!(v.detail.contains("RD"), "detail names the command: {}", v.detail);
    // One cycle later the same command conforms.
    c.observe(act + t.t_rcd, 0, &DramCommand::Read { bank, row, mask: 0b11 })
        .expect("CAS at exactly tRCD is legal");
}

#[test]
fn full_system_run_against_stricter_reference_panics() {
    // End-to-end teeth check: audit the real scheduler against reference
    // timings stricter than its own. The scheduler issues CAS as soon as
    // its tRCD expires, which the stricter reference forbids — the
    // auditor must abort the run. (Hook swap keeps the expected panic
    // out of the test output.)
    let result = {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(|| {
            let mut g = Gen::new(0xC0F2);
            let mut mem = MemorySystem::new(DramConfig::table2(), PowerParams::ddr4_1600());
            let mut strict = Timing::table2();
            strict.t_rcd += 8;
            mem.enable_conformance_with(strict);
            drive(&mut mem, &mut g, 200, 20_000);
        });
        std::panic::set_hook(prev);
        r
    };
    let err = result.expect_err("a stricter reference must flag the scheduler");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic payload".into());
    assert!(
        msg.contains("DRAM protocol violation"),
        "panic must come from the auditor: {msg}"
    );
    assert!(msg.contains("tRCD"), "violated rule must be named: {msg}");
}
