//! A fast fixed-latency/queueing memory model (`ATTACHE_BACKEND=fast`).
//!
//! [`FastMemory`] trades row-buffer, refresh and scheduling fidelity for
//! speed: a request's service time is computed *once, at enqueue*, from a
//! fixed command latency plus a per-sub-rank data-bus reservation, and the
//! model then has nothing to do until the request retires. There is no
//! FR-FCFS scan, no bank state and no refresh machinery, so the event
//! engine can skip directly from retirement to retirement — this is where
//! the severalfold speedup over the cycle model on sweeps comes from.
//!
//! What it keeps (the parts Attaché's results hinge on):
//!
//! * **Sub-rank bus contention.** Each channel has one reservation clock
//!   per sub-rank; a half-width access occupies one sub-rank for
//!   `tBURST`, a full-width access occupies both. Two half-width accesses
//!   to opposite sub-ranks overlap completely — the paper's mechanism —
//!   while same-sub-rank traffic pipelines at `tBURST` spacing, matching
//!   the cycle model's `tCCD` back-to-back CAS rate.
//! * **Queue backpressure.** Per-channel read/write queue capacities (and
//!   the fault injector's read derate) bound the requests in flight, so
//!   MLP limits and retry paths behave as they do on the cycle model.
//! * **Traffic attribution, bandwidth and energy accounting.** The same
//!   [`ChannelStats`] per-origin counters, per-sub-rank busy/CAS gauges
//!   and [`PowerModel`] burst/background energy (integer-cycle background
//!   counting, so the cycle and event engines stay bit-identical).
//!
//! What it deliberately drops — the documented tolerance envelope in
//! `docs/BACKENDS.md` — is everything row- and refresh-shaped:
//! `row_hits`/`row_misses`/`activates`/`precharges`/`refreshes` stay 0,
//! every read pays the same cold-read latency (`tRCD + tCAS + tBURST`
//! after its bus slot), writes complete at `tRCD + tCWL + tBURST` with no
//! coalescing, forwarding or drain hysteresis, and ACT/PRE/refresh energy
//! is absent. The cross-model referee ([`crate::referee`]) bounds the
//! resulting divergence.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::backend::{BackendKind, MemoryBackend};
use crate::channel::{ChannelStats, QueueFull};
use crate::config::{AddressMapping, DramConfig};
use crate::power::{EnergyBreakdown, PowerModel, PowerParams};
use crate::request::{AccessKind, Completion, MemRequest, Origin};

/// A request scheduled at enqueue time, waiting out its fixed latency.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    finished_at: u64,
    /// Enqueue sequence number: total, deterministic retire order for
    /// requests finishing on the same cycle.
    seq: u64,
    req: MemRequest,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.finished_at, self.seq) == (other.finished_at, other.seq)
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finished_at, self.seq).cmp(&(other.finished_at, other.seq))
    }
}

/// One channel of the queueing model.
#[derive(Debug)]
struct FastChannel {
    /// Per-sub-rank reservation clock: the earliest cycle the next access
    /// may occupy that sub-rank's data bus.
    free_at: Vec<u64>,
    /// In-flight requests, min-ordered by `(finished_at, seq)`.
    pending: BinaryHeap<Reverse<Scheduled>>,
    reads_in_flight: usize,
    writes_in_flight: usize,
    stats: ChannelStats,
    busy: Vec<u64>,
    cas: Vec<u64>,
    power: PowerModel,
}

impl FastChannel {
    fn new(cfg: &DramConfig, power: PowerParams) -> Self {
        Self {
            free_at: vec![0; cfg.subranks],
            pending: BinaryHeap::new(),
            reads_in_flight: 0,
            writes_in_flight: 0,
            stats: ChannelStats::default(),
            busy: vec![0; cfg.subranks],
            cas: vec![0; cfg.subranks],
            power: PowerModel::new(power),
        }
    }
}

/// The fast fixed-latency/queueing backend (see the module docs for the
/// fidelity contract).
#[derive(Debug)]
pub struct FastMemory {
    cfg: DramConfig,
    mapping: AddressMapping,
    channels: Vec<FastChannel>,
    now: u64,
    /// Start of the current measurement epoch (set by `reset_stats`).
    base_cycle: u64,
    seq: u64,
    mutation_gen: u64,
    /// Active read derate as `(cap, until)`, mirroring the cycle model's
    /// fault hook: read queues capped at `cap` until the clock reaches
    /// `until`; expiry handled at the same tick cycle as the cycle model.
    derate: Option<(usize, u64)>,
}

impl FastMemory {
    /// Creates an idle fast memory system.
    pub fn new(cfg: DramConfig, power: PowerParams) -> Self {
        Self {
            mapping: AddressMapping::new(cfg),
            channels: (0..cfg.channels)
                .map(|_| FastChannel::new(&cfg, power))
                .collect(),
            cfg,
            now: 0,
            base_cycle: 0,
            seq: 0,
            mutation_gen: 0,
            derate: None,
        }
    }

    /// The read-queue capacity currently in force (the configured
    /// capacity, tightened by an active fault derate).
    fn effective_read_cap(&self) -> usize {
        match self.derate {
            Some((cap, _)) => cap.min(self.cfg.read_queue_capacity),
            None => self.cfg.read_queue_capacity,
        }
    }

    /// Lifts an expired derate. Mirrors the cycle model: runs at the top
    /// of every tick, *before* the clock advances, so the cap lifts at
    /// exactly the same tick cycle under either engine (the event engine
    /// is forced to execute that tick by the `next_event` clamp).
    fn expire_derate(&mut self) {
        if let Some((_, until)) = self.derate {
            if self.now >= until {
                self.derate = None;
                self.mutation_gen += 1;
            }
        }
    }

    /// A derate expiry changes enqueue outcomes, so no event bound may
    /// skip past it (same clamp as the cycle model).
    fn clamp_to_derate_expiry(&self, bound: u64) -> u64 {
        match self.derate {
            Some((_, until)) => bound.min(until.max(self.now + 1)),
            None => bound,
        }
    }
}

impl MemoryBackend for FastMemory {
    fn kind(&self) -> BackendKind {
        BackendKind::Fast
    }

    fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    fn can_accept(&self, line_addr: u64, kind: AccessKind) -> bool {
        let ch = &self.channels[self.mapping.decompose(line_addr).channel];
        match kind {
            AccessKind::Read => ch.reads_in_flight < self.effective_read_cap(),
            AccessKind::Write => ch.writes_in_flight < self.cfg.write_queue_capacity,
        }
    }

    fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        if !self.can_accept(req.line_addr, req.kind) {
            return Err(QueueFull);
        }
        let t = self.cfg.timing;
        let chi = self.mapping.decompose(req.line_addr).channel;
        let ch = &mut self.channels[chi];
        // The access occupies its sub-rank bus(es) from `start`;
        // reservation clocks space same-sub-rank traffic tBURST apart.
        let mask = req.width.mask();
        let mut start = self.now + 1;
        for (s, free) in ch.free_at.iter().enumerate() {
            if mask & (1 << s) != 0 {
                start = start.max(*free);
            }
        }
        for (s, free) in ch.free_at.iter_mut().enumerate() {
            if mask & (1 << s) != 0 {
                *free = start + t.t_burst;
            }
        }
        let command = match req.kind {
            AccessKind::Read => t.t_rcd + t.t_cas,
            AccessKind::Write => t.t_rcd + t.t_cwl,
        };
        ch.pending.push(Reverse(Scheduled {
            finished_at: start + command + t.t_burst,
            seq: self.seq,
            req,
        }));
        self.seq += 1;
        match req.kind {
            AccessKind::Read => ch.reads_in_flight += 1,
            AccessKind::Write => ch.writes_in_flight += 1,
        }
        self.mutation_gen += 1;
        Ok(())
    }

    fn tick(&mut self) {
        self.expire_derate();
        self.now += 1;
        for ch in &mut self.channels {
            ch.power.on_background(1, !ch.pending.is_empty());
        }
    }

    fn advance_noop(&mut self, span: u64) {
        // No event in the span (caller-guaranteed via `next_event`), so
        // per-channel activity is constant across it and background
        // energy can be accounted in bulk, bit-identically to `span`
        // single ticks.
        self.now += span;
        for ch in &mut self.channels {
            ch.power.on_background(span, !ch.pending.is_empty());
        }
    }

    fn advance_idle_to(&mut self, target: u64) {
        assert!(self.is_idle(), "advance_idle_to with requests in flight");
        assert!(target >= self.now, "advance_idle_to into the past");
        let span = target - self.now;
        for ch in &mut self.channels {
            ch.power.on_background(span, false);
        }
        self.now = target;
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn is_idle(&self) -> bool {
        self.channels.iter().all(|ch| ch.pending.is_empty())
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_completions_into(&mut out);
        out
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        let mut drained = false;
        for ch in &mut self.channels {
            while let Some(Reverse(head)) = ch.pending.peek() {
                if head.finished_at > self.now {
                    break;
                }
                let Reverse(s) = ch.pending.pop().expect("peeked element");
                let req = s.req;
                let mask = req.width.mask();
                for sr in 0..ch.free_at.len() {
                    if mask & (1 << sr) != 0 {
                        ch.busy[sr] += self.cfg.timing.t_burst;
                        ch.cas[sr] += 1;
                        ch.stats.busy_bus_cycles += self.cfg.timing.t_burst;
                    }
                }
                ch.stats.bytes += req.width.bytes();
                match (req.kind, req.origin) {
                    (AccessKind::Read, Origin::Corrective { .. }) => {
                        ch.stats.corrective_reads += 1;
                    }
                    (AccessKind::Read, Origin::MetadataInstall) => ch.stats.metadata_reads += 1,
                    (AccessKind::Read, Origin::ReplacementArea) => {
                        ch.stats.replacement_area_reads += 1;
                    }
                    (AccessKind::Read, Origin::Scrub) => ch.stats.scrub_reads += 1,
                    (AccessKind::Read, _) => ch.stats.demand_reads += 1,
                    (AccessKind::Write, Origin::MetadataWriteback) => {
                        ch.stats.metadata_writes += 1;
                    }
                    (AccessKind::Write, Origin::ReplacementArea) => {
                        ch.stats.replacement_area_writes += 1;
                    }
                    (AccessKind::Write, _) => ch.stats.data_writes += 1,
                }
                match req.kind {
                    AccessKind::Read => {
                        ch.stats.read_latency_sum += s.finished_at - req.arrival;
                        ch.stats.read_latency_count += 1;
                        ch.reads_in_flight -= 1;
                        ch.power.on_read(req.width.chips(), req.width.bytes());
                    }
                    AccessKind::Write => {
                        ch.writes_in_flight -= 1;
                        ch.power.on_write(req.width.chips(), req.width.bytes());
                    }
                }
                out.push(Completion {
                    request: req,
                    finished_at: s.finished_at,
                });
                drained = true;
            }
        }
        // Unlike the cycle model (slots free at CAS issue), a retirement
        // here frees queue slots, so it can change enqueue outcomes and
        // must bump the generation. Completions retire at event cycles,
        // where both engines execute a real tick-and-drain, so the
        // generation evolves engine-identically.
        if drained {
            self.mutation_gen += 1;
        }
    }

    fn next_event(&self) -> u64 {
        let mut bound = u64::MAX;
        for ch in &self.channels {
            if let Some(Reverse(head)) = ch.pending.peek() {
                bound = bound.min(head.finished_at.max(self.now + 1));
            }
        }
        self.clamp_to_derate_expiry(bound)
    }

    fn mutation_gen(&self) -> u64 {
        self.mutation_gen
    }

    fn stats(&self) -> ChannelStats {
        let mut s = ChannelStats::default();
        for per in self.channel_stats() {
            s.add(&per);
        }
        s
    }

    fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels
            .iter()
            .map(|ch| {
                let mut s = ch.stats;
                s.cycles = self.now - self.base_cycle;
                s
            })
            .collect()
    }

    fn energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for ch in &self.channels {
            e.add(&ch.power.energy());
        }
        e
    }

    fn reset_stats(&mut self) {
        self.base_cycle = self.now;
        for ch in &mut self.channels {
            ch.stats = ChannelStats::default();
            ch.busy.iter_mut().for_each(|b| *b = 0);
            ch.cas.iter_mut().for_each(|c| *c = 0);
            ch.power.reset();
        }
    }

    fn queue_depths(&self) -> Vec<(usize, usize)> {
        self.channels
            .iter()
            .map(|ch| (ch.reads_in_flight, ch.writes_in_flight))
            .collect()
    }

    fn subrank_busy(&self) -> Vec<Vec<u64>> {
        self.channels.iter().map(|ch| ch.busy.clone()).collect()
    }

    fn subrank_cas(&self) -> Vec<Vec<u64>> {
        self.channels.iter().map(|ch| ch.cas.clone()).collect()
    }

    fn fault_derate_reads(&mut self, cap: usize, until: u64) {
        self.derate = Some((cap, until));
        self.mutation_gen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Timing;
    use crate::request::AccessWidth;

    fn mem() -> FastMemory {
        FastMemory::new(DramConfig::table2(), PowerParams::ddr4_1600())
    }

    fn read(id: u64, line_addr: u64, width: AccessWidth, arrival: u64) -> MemRequest {
        MemRequest {
            id,
            line_addr,
            kind: AccessKind::Read,
            width,
            origin: Origin::Demand { core: 0 },
            arrival,
        }
    }

    fn write(id: u64, line_addr: u64, width: AccessWidth, arrival: u64) -> MemRequest {
        MemRequest {
            id,
            line_addr,
            kind: AccessKind::Write,
            width,
            origin: Origin::Writeback,
            arrival,
        }
    }

    fn run_until_complete(mem: &mut FastMemory, n: usize, max_cycles: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for _ in 0..max_cycles {
            mem.tick();
            done.append(&mut mem.drain_completions());
            if done.len() >= n {
                break;
            }
        }
        done
    }

    #[test]
    fn cold_read_latency_matches_the_cycle_model() {
        // Contract anchor: an uncontended read costs exactly what the
        // cycle model's cold read does (its `cold_read_latency_...` test),
        // so the two models agree perfectly in the zero-load limit.
        let mut m = mem();
        m.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        let done = run_until_complete(&mut m, 1, 1_000);
        let t = Timing::table2();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished_at, 1 + t.t_rcd + t.t_cas + t.t_burst);
        assert_eq!(done[0].latency(), 1 + t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn half_width_reads_to_opposite_subranks_overlap() {
        let mut m = mem();
        m.enqueue(read(1, 0, AccessWidth::Half(crate::SubrankId(0)), 0))
            .unwrap();
        m.enqueue(read(2, 0, AccessWidth::Half(crate::SubrankId(1)), 0))
            .unwrap();
        let done = run_until_complete(&mut m, 2, 1_000);
        // Independent sub-rank buses: both finish on the same cycle.
        assert_eq!(done[0].finished_at, done[1].finished_at);
    }

    #[test]
    fn same_bus_accesses_pipeline_at_burst_spacing() {
        let t = Timing::table2();
        let mut m = mem();
        m.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        m.enqueue(read(2, 2, AccessWidth::Full, 0)).unwrap();
        m.enqueue(read(3, 0, AccessWidth::Half(crate::SubrankId(0)), 0))
            .unwrap();
        let done = run_until_complete(&mut m, 3, 1_000);
        // Full-width reads serialize on the shared bus at tBURST (= tCCD)
        // spacing, like the cycle model's row-hit pipeline; the half read
        // queues behind both on sub-rank 0.
        assert_eq!(done[1].finished_at - done[0].finished_at, t.t_burst);
        assert_eq!(done[2].finished_at - done[1].finished_at, t.t_burst);
    }

    #[test]
    fn queue_backpressure_and_release() {
        let mut m = mem();
        let cap = m.config().read_queue_capacity;
        for i in 0..cap as u64 {
            m.enqueue(read(i, i * 2, AccessWidth::Full, 0)).unwrap();
        }
        assert_eq!(m.enqueue(read(999, 0, AccessWidth::Full, 0)), Err(QueueFull));
        assert!(!m.can_accept(0, AccessKind::Read));
        assert!(m.can_accept(0, AccessKind::Write));
        // Draining completions frees slots again.
        let gen = m.mutation_gen();
        while m.drain_completions().is_empty() {
            m.tick();
        }
        assert!(m.can_accept(0, AccessKind::Read));
        assert!(m.mutation_gen() > gen, "a drain must bump the generation");
    }

    #[test]
    fn write_latency_uses_cwl() {
        let t = Timing::table2();
        let mut m = mem();
        m.enqueue(write(1, 0, AccessWidth::Full, 0)).unwrap();
        let done = run_until_complete(&mut m, 1, 1_000);
        assert_eq!(done[0].finished_at, 1 + t.t_rcd + t.t_cwl + t.t_burst);
        assert_eq!(m.stats().data_writes, 1);
    }

    #[test]
    fn next_event_is_the_earliest_retirement() {
        let mut m = mem();
        assert_eq!(m.next_event(), u64::MAX);
        m.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        let t = Timing::table2();
        assert_eq!(m.next_event(), 1 + t.t_rcd + t.t_cas + t.t_burst);
        assert_eq!(m.next_event_cached(), m.next_event());
    }

    #[test]
    fn derate_caps_reads_and_expires_on_schedule() {
        let mut m = mem();
        m.fault_derate_reads(1, 10);
        let gen_set = m.mutation_gen();
        m.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        assert_eq!(m.enqueue(read(2, 2, AccessWidth::Full, 0)), Err(QueueFull));
        // The expiry is an event: the bound may not skip past cycle 10.
        assert!(m.next_event() <= 10);
        while m.now() < 10 {
            m.tick();
            m.drain_completions();
        }
        // The tick leaving cycle 10 lifts the cap (same cycle as the
        // cycle model's expire_derate).
        m.tick();
        assert!(m.mutation_gen() > gen_set);
        assert!(m.can_accept(2, AccessKind::Read));
        m.enqueue(read(2, 2, AccessWidth::Full, m.now())).unwrap();
    }

    #[test]
    fn bulk_noop_advance_is_bit_identical_to_ticks() {
        // The event engine accounts skipped spans through advance_noop;
        // background energy must come out bit-identical to per-cycle
        // ticking, with and without pending work.
        let mut stepped = mem();
        let mut bulk = mem();
        stepped.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        bulk.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        for _ in 0..37 {
            stepped.tick();
        }
        bulk.advance_noop(37);
        assert_eq!(stepped.now(), bulk.now());
        assert_eq!(
            stepped.energy().background_pj.to_bits(),
            bulk.energy().background_pj.to_bits()
        );
    }

    #[test]
    fn stats_attribute_by_origin_and_reset_opens_a_new_epoch() {
        let mut m = mem();
        m.enqueue(MemRequest {
            origin: Origin::MetadataInstall,
            ..read(1, 0, AccessWidth::Half(crate::SubrankId(1)), 0)
        })
        .unwrap();
        m.enqueue(MemRequest {
            origin: Origin::ReplacementArea,
            ..write(2, 2, AccessWidth::Full, 0)
        })
        .unwrap();
        run_until_complete(&mut m, 2, 1_000);
        let s = m.stats();
        assert_eq!(s.metadata_reads, 1);
        assert_eq!(s.replacement_area_writes, 1);
        assert_eq!(s.bytes, 32 + 64);
        assert_eq!(s.row_hits + s.row_misses + s.activates + s.refreshes, 0);
        assert!(m.energy().read_pj > 0.0);
        assert!(m.energy().io_pj > 0.0);
        let busy = m.subrank_busy();
        assert!(busy.iter().flatten().sum::<u64>() > 0);
        m.reset_stats();
        assert_eq!(m.stats(), ChannelStats::default());
        assert_eq!(m.energy().total_pj(), 0.0);
        // The clock keeps running; the next epoch measures from here.
        let before = m.now();
        m.tick();
        assert_eq!(m.stats().cycles, m.now() - before);
    }

    #[test]
    fn advance_idle_to_fast_forwards_background_time() {
        let mut m = mem();
        m.advance_idle_to(5_000);
        assert_eq!(m.now(), 5_000);
        assert_eq!(m.stats().cycles, 5_000);
        assert!(m.energy().background_pj > 0.0);
        assert_eq!(m.energy().refresh_pj, 0.0, "no refresh in the fast model");
    }

    #[test]
    #[should_panic(expected = "advance_idle_to with requests in flight")]
    fn advance_idle_to_rejects_pending_work() {
        let mut m = mem();
        m.enqueue(read(1, 0, AccessWidth::Full, 0)).unwrap();
        m.advance_idle_to(100);
    }
}
