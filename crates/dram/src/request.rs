//! Memory requests and completions exchanged with the memory controller.

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (data returns to the requester).
    Read,
    /// A write (posted; no data returns).
    Write,
}

/// Which sub-rank(s) a request occupies.
///
/// A compressed 64-byte block fits a single 32-byte sub-rank beat; an
/// uncompressed block needs both sub-ranks (the full 64-bit-wide rank, as in
/// the non-sub-ranked baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// Half-width access served by one sub-rank (32 bytes).
    Half(SubrankId),
    /// Full-width access served by both sub-ranks in lockstep (64 bytes).
    Full,
}

impl AccessWidth {
    /// Bytes moved over the bus by this access.
    pub fn bytes(&self) -> u64 {
        match self {
            AccessWidth::Half(_) => 32,
            AccessWidth::Full => 64,
        }
    }

    /// The sub-ranks (as a 2-bit mask) this access occupies.
    pub fn mask(&self) -> u8 {
        match self {
            AccessWidth::Half(SubrankId(s)) => 1 << s,
            AccessWidth::Full => 0b11,
        }
    }

    /// DRAM chips engaged (of 8 per rank).
    pub fn chips(&self) -> u32 {
        match self {
            AccessWidth::Half(_) => 4,
            AccessWidth::Full => 8,
        }
    }
}

/// Identifies one of the two sub-ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubrankId(pub u8);

impl SubrankId {
    /// The opposite sub-rank.
    pub fn other(self) -> SubrankId {
        SubrankId(1 - self.0)
    }
}

/// Why a request was issued — used to attribute traffic in the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// A demand read from a core (LLC miss).
    Demand {
        /// The requesting core.
        core: u8,
    },
    /// An LLC dirty-victim writeback.
    Writeback,
    /// A Metadata-Cache install read (the overhead Attaché removes).
    MetadataInstall,
    /// A Metadata-Cache dirty-eviction write.
    MetadataWriteback,
    /// A Replacement-Area access (BLEM CID-collision handling).
    ReplacementArea,
    /// The corrective second-half fetch after a COPR misprediction.
    Corrective {
        /// The core whose demand read is being corrected.
        core: u8,
    },
    /// A background patrol-scrub read (ECC maintenance, not demand
    /// traffic and not metadata overhead).
    Scrub,
}

impl Origin {
    /// Whether this traffic is metadata overhead (not data movement).
    pub fn is_metadata_overhead(&self) -> bool {
        matches!(
            self,
            Origin::MetadataInstall | Origin::MetadataWriteback | Origin::ReplacementArea
        )
    }
}

/// A request presented to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id assigned by the requester.
    pub id: u64,
    /// 64-byte block address (byte address / 64).
    pub line_addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Sub-rank footprint.
    pub width: AccessWidth,
    /// Traffic attribution.
    pub origin: Origin,
    /// Bus cycle at which the request entered the controller.
    pub arrival: u64,
}

/// A finished request, reported back to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: MemRequest,
    /// Bus cycle at which the data transfer finished.
    pub finished_at: u64,
}

impl Completion {
    /// Queueing + service latency in bus cycles.
    pub fn latency(&self) -> u64 {
        self.finished_at - self.request.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks_and_bytes() {
        assert_eq!(AccessWidth::Half(SubrankId(0)).mask(), 0b01);
        assert_eq!(AccessWidth::Half(SubrankId(1)).mask(), 0b10);
        assert_eq!(AccessWidth::Full.mask(), 0b11);
        assert_eq!(AccessWidth::Half(SubrankId(0)).bytes(), 32);
        assert_eq!(AccessWidth::Full.bytes(), 64);
        assert_eq!(AccessWidth::Half(SubrankId(1)).chips(), 4);
        assert_eq!(AccessWidth::Full.chips(), 8);
    }

    #[test]
    fn subrank_other_flips() {
        assert_eq!(SubrankId(0).other(), SubrankId(1));
        assert_eq!(SubrankId(1).other(), SubrankId(0));
    }

    #[test]
    fn origin_overhead_classification() {
        assert!(Origin::MetadataInstall.is_metadata_overhead());
        assert!(Origin::MetadataWriteback.is_metadata_overhead());
        assert!(Origin::ReplacementArea.is_metadata_overhead());
        assert!(!Origin::Demand { core: 0 }.is_metadata_overhead());
        assert!(!Origin::Corrective { core: 0 }.is_metadata_overhead());
        assert!(!Origin::Writeback.is_metadata_overhead());
        assert!(!Origin::Scrub.is_metadata_overhead());
    }

    #[test]
    fn completion_latency() {
        let req = MemRequest {
            id: 1,
            line_addr: 0,
            kind: AccessKind::Read,
            width: AccessWidth::Full,
            origin: Origin::Demand { core: 0 },
            arrival: 100,
        };
        let c = Completion {
            request: req,
            finished_at: 148,
        };
        assert_eq!(c.latency(), 48);
    }
}
