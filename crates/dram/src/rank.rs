//! Rank-level state: sub-banks, per-sub-rank data buses, the activation
//! window (tRRD/tFAW) and refresh bookkeeping.

use crate::bank::SubBank;
use crate::config::{DramConfig, Timing};

/// A rank of 8 DRAM chips split into two 4-chip sub-ranks with separate
/// chip-selects (§V of the paper).
#[derive(Debug, Clone)]
pub struct Rank {
    banks: usize,
    subranks: usize,
    /// `sub_banks[bank * subranks + subrank]`.
    sub_banks: Vec<SubBank>,
    /// Earliest next CAS-read issue per sub-rank data bus.
    bus_next_rd: Vec<u64>,
    /// Earliest next CAS-write issue per sub-rank data bus.
    bus_next_wr: Vec<u64>,
    /// Issue times of the last four ACT commands **per sub-rank**: tFAW is
    /// a per-chip charge-pump limit, and the sub-ranks are disjoint chip
    /// groups, so each sub-rank has its own four-activate window (a
    /// full-width ACT counts in both).
    act_window: Vec<[u64; 4]>,
    act_window_len: Vec<usize>,
    /// Earliest next ACT per sub-rank (tRRD, same per-chip argument).
    next_act_rrd: Vec<u64>,
    /// Next refresh is due at this cycle.
    pub next_refresh_due: u64,
    /// The rank is executing a refresh until this cycle.
    pub refresh_until: u64,
    /// Number of sub-banks currently holding an open row (for background
    /// power accounting).
    pub open_sub_banks: usize,
    /// Total refreshes performed.
    pub refreshes: u64,
}

impl Rank {
    /// Creates an idle rank for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        let banks = cfg.banks();
        Self {
            banks,
            subranks: cfg.subranks,
            sub_banks: vec![SubBank::new(); banks * cfg.subranks],
            bus_next_rd: vec![0; cfg.subranks],
            bus_next_wr: vec![0; cfg.subranks],
            act_window: vec![[0; 4]; cfg.subranks],
            act_window_len: vec![0; cfg.subranks],
            next_act_rrd: vec![0; cfg.subranks],
            next_refresh_due: cfg.timing.t_refi,
            refresh_until: 0,
            open_sub_banks: 0,
            refreshes: 0,
        }
    }

    /// Immutable access to a sub-bank.
    pub fn sub_bank(&self, bank: usize, subrank: usize) -> &SubBank {
        &self.sub_banks[bank * self.subranks + subrank]
    }

    fn sub_bank_mut(&mut self, bank: usize, subrank: usize) -> &mut SubBank {
        &mut self.sub_banks[bank * self.subranks + subrank]
    }

    /// Iterates the sub-ranks selected by `mask`.
    fn mask_iter(&self, mask: u8) -> impl Iterator<Item = usize> + '_ {
        (0..self.subranks).filter(move |s| mask & (1 << s) != 0)
    }

    /// Whether the rank is busy refreshing at `now`.
    pub fn refreshing(&self, now: u64) -> bool {
        now < self.refresh_until
    }

    /// Whether a refresh is due (and must be serviced before new activity).
    pub fn refresh_due(&self, now: u64) -> bool {
        now >= self.next_refresh_due && !self.refreshing(now)
    }

    fn act_window_ok(&self, now: u64, subrank: usize, t: &Timing) -> bool {
        if now < self.next_act_rrd[subrank] {
            return false;
        }
        if self.act_window_len[subrank] == 4 {
            // Oldest of the last four ACTs must be outside tFAW.
            let oldest = self.act_window[subrank][0];
            if now < oldest + t.t_faw {
                return false;
            }
        }
        true
    }

    fn act_window_push(&mut self, now: u64, subrank: usize, t: &Timing) {
        if self.act_window_len[subrank] == 4 {
            self.act_window[subrank].rotate_left(1);
            self.act_window[subrank][3] = now;
        } else {
            let len = self.act_window_len[subrank];
            self.act_window[subrank][len] = now;
            self.act_window_len[subrank] += 1;
        }
        self.next_act_rrd[subrank] = now + t.t_rrd;
    }

    /// Whether an ACT of `row` may issue to `bank` for the sub-ranks in
    /// `mask` at `now`. Only sub-banks that do not already have the row open
    /// are required to be idle-and-ready.
    pub fn can_activate(&self, now: u64, bank: usize, row: usize, mask: u8, t: &Timing) -> bool {
        if self.refreshing(now) || self.refresh_due(now) {
            return false;
        }
        let mut any_needed = false;
        for s in self.mask_iter(mask) {
            let sb = self.sub_bank(bank, s);
            if sb.row_open(row) {
                continue;
            }
            any_needed = true;
            if !sb.can_activate(now) || !self.act_window_ok(now, s, t) {
                return false;
            }
        }
        any_needed
    }

    /// Issues the ACT validated by [`can_activate`](Rank::can_activate).
    pub fn activate(&mut self, now: u64, bank: usize, row: usize, mask: u8, t: &Timing) {
        let subranks: Vec<usize> = self.mask_iter(mask).collect();
        for s in subranks {
            if !self.sub_bank(bank, s).row_open(row) {
                self.sub_bank_mut(bank, s).activate(now, row, t);
                self.open_sub_banks += 1;
                // tRRD/tFAW accrue only on the chip groups that activate.
                self.act_window_push(now, s, t);
            }
        }
    }

    /// Whether the sub-banks in `mask` hold a row that conflicts with `row`
    /// and may be precharged at `now`. Returns the sub-mask to precharge, or
    /// `None` when no precharge is possible/needed.
    pub fn precharge_mask(&self, now: u64, bank: usize, row: usize, mask: u8) -> Option<u8> {
        if self.refreshing(now) {
            return None;
        }
        let mut pre_mask = 0u8;
        for s in self.mask_iter(mask) {
            let sb = self.sub_bank(bank, s);
            match sb.state() {
                crate::bank::RowState::Active { row: open } if open != row => {
                    if !sb.can_precharge(now) {
                        return None;
                    }
                    pre_mask |= 1 << s;
                }
                _ => {}
            }
        }
        if pre_mask == 0 {
            None
        } else {
            Some(pre_mask)
        }
    }

    /// Issues a PRE to the sub-banks in `mask`.
    pub fn precharge(&mut self, now: u64, bank: usize, mask: u8, t: &Timing) {
        let subranks: Vec<usize> = self.mask_iter(mask).collect();
        for s in subranks {
            self.sub_bank_mut(bank, s).precharge(now, t);
            self.open_sub_banks -= 1;
        }
    }

    /// Whether a column READ may issue at `now`.
    pub fn can_read(&self, now: u64, bank: usize, row: usize, mask: u8) -> bool {
        if self.refreshing(now) {
            return false;
        }
        self.mask_iter(mask).all(|s| {
            self.sub_bank(bank, s).can_read(now, row) && now >= self.bus_next_rd[s]
        })
    }

    /// Issues a column READ at `now`.
    pub fn read(&mut self, now: u64, bank: usize, mask: u8, t: &Timing) {
        let subranks: Vec<usize> = self.mask_iter(mask).collect();
        for s in subranks {
            self.sub_bank_mut(bank, s).read(now, t);
            self.bus_next_rd[s] = now + t.t_ccd;
            self.bus_next_wr[s] = now + t.read_to_write();
        }
    }

    /// Whether a column WRITE may issue at `now`.
    pub fn can_write(&self, now: u64, bank: usize, row: usize, mask: u8) -> bool {
        if self.refreshing(now) {
            return false;
        }
        self.mask_iter(mask).all(|s| {
            self.sub_bank(bank, s).can_write(now, row) && now >= self.bus_next_wr[s]
        })
    }

    /// Issues a column WRITE at `now`.
    pub fn write(&mut self, now: u64, bank: usize, mask: u8, t: &Timing) {
        let subranks: Vec<usize> = self.mask_iter(mask).collect();
        for s in subranks {
            self.sub_bank_mut(bank, s).write(now, t);
            self.bus_next_wr[s] = now + t.t_ccd;
            self.bus_next_rd[s] = now + t.write_to_read();
        }
    }

    /// The earliest cycle the sub-rank `s` data bus accepts another READ.
    pub fn bus_read_ready_at(&self, s: usize) -> u64 {
        self.bus_next_rd[s]
    }

    /// The earliest cycle the sub-rank `s` data bus accepts another WRITE.
    pub fn bus_write_ready_at(&self, s: usize) -> u64 {
        self.bus_next_wr[s]
    }

    /// The earliest cycle an ACT on sub-rank `s` clears tRRD and tFAW
    /// (bank-level tRC/tRP gates live in the sub-bank).
    pub fn act_window_ready_at(&self, s: usize, t: &Timing) -> u64 {
        let mut ready = self.next_act_rrd[s];
        if self.act_window_len[s] == 4 {
            ready = ready.max(self.act_window[s][0] + t.t_faw);
        }
        ready
    }

    /// Returns the mask of sub-banks (across all banks) that still hold an
    /// open row — these must be precharged before REF.
    pub fn any_bank_open(&self) -> bool {
        self.open_sub_banks > 0
    }

    /// Finds one (bank, sub-rank-mask) pair that can be precharged at `now`
    /// in preparation for a refresh.
    pub fn refresh_precharge_candidate(&self, now: u64) -> Option<(usize, u8)> {
        for bank in 0..self.banks {
            let mut mask = 0u8;
            for s in 0..self.subranks {
                let sb = self.sub_bank(bank, s);
                if matches!(sb.state(), crate::bank::RowState::Active { .. }) {
                    if !sb.can_precharge(now) {
                        return None; // wait for this bank to become eligible
                    }
                    mask |= 1 << s;
                }
            }
            if mask != 0 {
                return Some((bank, mask));
            }
        }
        None
    }

    /// Issues a REF at `now`; the rank is busy until `now + tRFC`.
    pub fn refresh(&mut self, now: u64, t: &Timing) {
        debug_assert!(!self.any_bank_open(), "REF requires all banks precharged");
        self.refresh_until = now + t.t_rfc;
        self.next_refresh_due += t.t_refi;
        self.refreshes += 1;
        for sb in &mut self.sub_banks {
            sb.force_idle(self.refresh_until);
        }
    }

    /// Performs `n` refreshes "in bulk" while the channel is idle, without
    /// simulating each cycle (used by the idle fast-forward path).
    pub fn bulk_refresh(&mut self, n: u64, t: &Timing) {
        self.refreshes += n;
        self.next_refresh_due += n * t.t_refi;
        for sb in &mut self.sub_banks {
            sb.force_idle(self.next_refresh_due.saturating_sub(t.t_refi) + t.t_rfc);
        }
        self.open_sub_banks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::table2()
    }

    fn t() -> Timing {
        Timing::table2()
    }

    #[test]
    fn activate_then_read_single_subrank() {
        let mut r = Rank::new(&cfg());
        assert!(r.can_activate(0, 3, 10, 0b01, &t()));
        r.activate(0, 3, 10, 0b01, &t());
        assert!(!r.can_read(t().t_rcd - 1, 3, 10, 0b01));
        assert!(r.can_read(t().t_rcd, 3, 10, 0b01));
        // The other sub-rank has nothing open.
        assert!(!r.can_read(t().t_rcd, 3, 10, 0b10));
        assert!(!r.can_read(t().t_rcd, 3, 10, 0b11));
    }

    #[test]
    fn subranks_hold_independent_rows() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 0, 5, 0b01, &t());
        r.activate(t().t_rrd, 0, 9, 0b10, &t());
        let rd = t().t_rrd + t().t_rcd;
        assert!(r.can_read(rd, 0, 5, 0b01));
        assert!(r.can_read(rd, 0, 9, 0b10));
        assert!(!r.can_read(rd, 0, 5, 0b11), "row 5 only open in sub-rank 0");
    }

    #[test]
    fn full_width_activate_opens_both() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 1, 4, 0b11, &t());
        assert_eq!(r.open_sub_banks, 2);
        assert!(r.can_read(t().t_rcd, 1, 4, 0b11));
    }

    #[test]
    fn partial_activate_completes_full_width() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 1, 4, 0b01, &t());
        // Full-width access: only sub-rank 1 still needs the ACT.
        assert!(r.can_activate(t().t_rrd, 1, 4, 0b11, &t()));
        r.activate(t().t_rrd, 1, 4, 0b11, &t());
        assert_eq!(r.open_sub_banks, 2);
    }

    #[test]
    fn half_width_activates_have_independent_faw_windows() {
        // Alternating sub-rank ACTs: each sub-rank's window fills at half
        // the rate, so 8 narrow ACTs fit where only 4 full ones would.
        let mut r = Rank::new(&cfg());
        let mut now = 0;
        for i in 0..8usize {
            let mask = 1u8 << (i % 2);
            let bank = i / 2;
            assert!(
                r.can_activate(now, bank, 1, mask, &t()),
                "narrow ACT {i} at {now} must not be tFAW-blocked"
            );
            r.activate(now, bank, 1, mask, &t());
            now += t().t_rrd / 2 + 1; // opposite sub-ranks: no shared tRRD
        }
        assert!(now < t().t_faw + 4 * t().t_rrd);
    }

    #[test]
    fn faw_blocks_fifth_activate() {
        let mut r = Rank::new(&cfg());
        let mut now = 0;
        for bank in 0..4 {
            assert!(r.can_activate(now, bank, 1, 0b11, &t()));
            r.activate(now, bank, 1, 0b11, &t());
            now += t().t_rrd;
        }
        // Fifth ACT within tFAW of the first must stall.
        assert!(now < t().t_faw);
        assert!(!r.can_activate(now, 4, 1, 0b11, &t()));
        assert!(r.can_activate(t().t_faw, 4, 1, 0b11, &t()));
    }

    #[test]
    fn ccd_serializes_same_subrank_reads_but_not_other_subrank() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 0, 1, 0b01, &t());
        r.activate(t().t_rrd, 1, 1, 0b10, &t());
        let now = t().t_rrd + t().t_rcd;
        r.read(now, 0, 0b01, &t());
        assert!(!r.can_read(now + 1, 0, 1, 0b01), "tCCD on sub-rank 0");
        assert!(r.can_read(now + 1, 1, 1, 0b10), "sub-rank 1 bus is free");
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 0, 1, 0b01, &t());
        let now = t().t_rcd;
        r.write(now, 0, 0b01, &t());
        let rd_ok = now + t().write_to_read();
        assert!(!r.can_read(rd_ok - 1, 0, 1, 0b01));
        assert!(r.can_read(rd_ok, 0, 1, 0b01));
    }

    #[test]
    fn refresh_blocks_rank_for_trfc() {
        let mut r = Rank::new(&cfg());
        let due = r.next_refresh_due;
        assert!(r.refresh_due(due));
        r.refresh(due, &t());
        assert!(r.refreshing(due + t().t_rfc - 1));
        assert!(!r.refreshing(due + t().t_rfc));
        assert_eq!(r.refreshes, 1);
        assert!(!r.can_activate(due + 1, 0, 0, 0b11, &t()));
        assert!(r.can_activate(due + t().t_rfc, 0, 0, 0b11, &t()));
    }

    #[test]
    fn refresh_precharge_candidate_finds_open_banks() {
        let mut r = Rank::new(&cfg());
        r.activate(0, 2, 7, 0b11, &t());
        assert_eq!(r.refresh_precharge_candidate(t().t_ras), Some((2, 0b11)));
        r.precharge(t().t_ras, 2, 0b11, &t());
        assert_eq!(r.refresh_precharge_candidate(t().t_ras + 1), None);
        assert!(!r.any_bank_open());
    }

    #[test]
    fn bulk_refresh_advances_schedule() {
        let mut r = Rank::new(&cfg());
        r.bulk_refresh(5, &t());
        assert_eq!(r.refreshes, 5);
        assert_eq!(r.next_refresh_due, t().t_refi * 6);
    }
}
