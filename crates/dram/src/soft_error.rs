//! A seeded device-level soft-error process: the raw bit-flip source the
//! ECC layer (see [`crate::ecc`]) exists to absorb.
//!
//! Two error populations, both deterministic:
//!
//! * **Transient flips** (cosmic-ray style single-event upsets): sampled
//!   at *touch* time — every read or scrub of a line advances a global
//!   touch counter, and whether that touch deposits a flip (and where)
//!   is a pure function of `(seed, line, touch ordinal)`. Because both
//!   engines, all backends and every shard count replay the identical
//!   touch sequence, the error process is bit-identical everywhere the
//!   request stream is.
//! * **Sticky cells** (weak/stuck cells): a pure function of
//!   `(seed, line)` with rate one-eighth of the transient rate. A sticky
//!   cell re-asserts its flip after every rewrite of the line — the
//!   worst-case reading of a stuck-at cell — so only correction
//!   *bandwidth* (scrub, ECC) keeps it in check, never a one-shot heal.
//!
//! Rates are expressed in **ppm of line-touches** (knob `ATTACHE_BER`):
//! a rate of 500 means one transient flip per ~2000 touched lines. Flip
//! positions cover the full 576-bit protected image — 512 data bits plus
//! 64 check bits — encoded as `word * 72 + bit` with bits `0..64` the
//! data word and `64..72` its check byte, matching the codec layout.

/// Bits in one protected line image (8 words × (64 data + 8 check)).
pub const LINE_BITS: u32 = 576;

/// Bits per protected word (64 data + 8 check).
pub const WORD_BITS: u32 = 72;

/// A deterministic soft-error source (see module docs).
#[derive(Debug, Clone)]
pub struct SoftErrorProcess {
    seed: u64,
    rate_ppm: u64,
    touches: u64,
}

/// splitmix64 finalizer — the same mixer the testkit RNG builds on.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SoftErrorProcess {
    /// A process injecting `rate_ppm` transient flips per million
    /// line-touches (and sticky cells at one-eighth that rate).
    pub fn new(seed: u64, rate_ppm: u64) -> Self {
        Self {
            seed: mix(seed ^ 0x50F7_E44C_0DE0_5EED),
            rate_ppm,
            touches: 0,
        }
    }

    /// The configured transient-flip rate in ppm of line-touches.
    pub fn rate_ppm(&self) -> u64 {
        self.rate_ppm
    }

    /// Line-touches sampled so far.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Samples one touch of `line`: advances the touch counter and
    /// returns the bit position (`word * 72 + bit`) of a freshly
    /// deposited transient flip, if this touch deposits one.
    pub fn touch(&mut self, line: u64) -> Option<u16> {
        let h = mix(self.seed ^ mix(line) ^ self.touches.wrapping_mul(0xA24B_AED4_963E_E407));
        self.touches += 1;
        if h % 1_000_000 < self.rate_ppm {
            Some(((h >> 32) % u64::from(LINE_BITS)) as u16)
        } else {
            None
        }
    }

    /// The line's sticky cell, if it has one: a pure function of
    /// `(seed, line)`, stable across the whole run. The returned bit is
    /// flipped relative to whatever was last written.
    pub fn sticky(&self, line: u64) -> Option<u16> {
        let h = mix(self.seed ^ 0x57_1C4B ^ mix(line.wrapping_mul(0x9E6C_63D0_985B_49C5)));
        if h % 8_000_000 < self.rate_ppm {
            Some(((h >> 32) % u64::from(LINE_BITS)) as u16)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_replay_identical_flip_sequences() {
        let mut a = SoftErrorProcess::new(42, 100_000);
        let mut b = SoftErrorProcess::new(42, 100_000);
        for t in 0..5_000u64 {
            let line = (t * 37) % 512;
            assert_eq!(a.touch(line), b.touch(line), "touch {t}");
        }
        assert_eq!(a.touches(), 5_000);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SoftErrorProcess::new(1, 500_000);
        let mut b = SoftErrorProcess::new(2, 500_000);
        let hits_a: Vec<_> = (0..2_000u64).map(|t| a.touch(t % 64)).collect();
        let hits_b: Vec<_> = (0..2_000u64).map(|t| b.touch(t % 64)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn zero_rate_is_silent_and_full_rate_always_fires() {
        let mut quiet = SoftErrorProcess::new(7, 0);
        let mut loud = SoftErrorProcess::new(7, 1_000_000);
        for t in 0..1_000u64 {
            assert_eq!(quiet.touch(t), None);
            let bit = loud.touch(t).expect("rate 1e6 ppm fires every touch");
            assert!(u32::from(bit) < LINE_BITS);
        }
    }

    #[test]
    fn flip_rate_tracks_the_ppm_knob() {
        let mut p = SoftErrorProcess::new(99, 100_000); // 10% of touches
        let n = 20_000u64;
        let hits = (0..n).filter(|&t| p.touch(t % 1024).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "observed {rate}");
    }

    #[test]
    fn sticky_cells_are_rarer_stable_and_seed_dependent() {
        let p = SoftErrorProcess::new(5, 800_000); // sticky rate 10%
        let stickies = (0..10_000u64).filter(|&l| p.sticky(l).is_some()).count();
        let rate = stickies as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&rate), "observed {rate}");
        for line in 0..512 {
            assert_eq!(p.sticky(line), p.sticky(line), "pure function of line");
            if let Some(bit) = p.sticky(line) {
                assert!(u32::from(bit) < LINE_BITS);
            }
        }
        let q = SoftErrorProcess::new(6, 800_000);
        let map_p: Vec<_> = (0..2_000u64).map(|l| p.sticky(l)).collect();
        let map_q: Vec<_> = (0..2_000u64).map(|l| q.sticky(l)).collect();
        assert_ne!(map_p, map_q);
    }
}
