//! One memory channel: request queues, FR-FCFS scheduling, refresh, and the
//! command/data bus model.
//!
//! Scheduling follows the paper's CramSim configuration (§V): reads are
//! prioritized over writes, and a write buffer drains to memory once a high
//! watermark is reached (with hysteresis down to a low watermark). Row hits
//! are preferred over older row misses (FR-FCFS) with an age cap to prevent
//! starvation.

use crate::config::{AddressMapping, DramConfig, Location, Timing};
use crate::conformance::{ConformanceChecker, ConformanceStats, DramCommand};
use crate::power::{PowerModel, PowerParams};
use crate::rank::Rank;
use crate::request::{AccessKind, Completion, MemRequest};

/// Aggregated per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Bus cycles simulated.
    pub cycles: u64,
    /// Demand reads completed.
    pub demand_reads: u64,
    /// Corrective (COPR-misprediction) reads completed.
    pub corrective_reads: u64,
    /// Metadata-Cache install reads completed.
    pub metadata_reads: u64,
    /// Replacement-Area reads completed.
    pub replacement_area_reads: u64,
    /// LLC writebacks completed.
    pub data_writes: u64,
    /// Metadata-Cache eviction writes completed.
    pub metadata_writes: u64,
    /// Replacement-Area writes completed.
    pub replacement_area_writes: u64,
    /// CAS commands that hit an already-open row.
    pub row_hits: u64,
    /// CAS commands that required ACT (and possibly PRE) first.
    pub row_misses: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// Data bytes moved over the bus.
    pub bytes: u64,
    /// Sub-rank-bus busy cycles (sum over sub-ranks).
    pub busy_bus_cycles: u64,
    /// Total latency of completed reads (arrival to data end), bus cycles.
    pub read_latency_sum: u64,
    /// Number of completed reads counted in the latency sum.
    pub read_latency_count: u64,
    /// Reads served by forwarding from the write queue.
    pub forwarded_reads: u64,
    /// Bus cycles spent in write-drain mode.
    pub drain_cycles: u64,
    /// Write-drain episodes entered.
    pub drain_episodes: u64,
}

impl ChannelStats {
    /// Total read requests serviced from DRAM (not forwarded).
    pub fn total_reads(&self) -> u64 {
        self.demand_reads + self.corrective_reads + self.metadata_reads + self.replacement_area_reads
    }

    /// Total write requests serviced.
    pub fn total_writes(&self) -> u64 {
        self.data_writes + self.metadata_writes + self.replacement_area_writes
    }

    /// Total memory requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Average read latency in bus cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.read_latency_count == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.read_latency_count as f64
        }
    }

    /// Mean data bandwidth in bytes per bus cycle.
    pub fn bandwidth_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes as f64 / self.cycles as f64
        }
    }

    /// Row-buffer hit rate over CAS commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating channels).
    pub fn add(&mut self, o: &ChannelStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.demand_reads += o.demand_reads;
        self.corrective_reads += o.corrective_reads;
        self.metadata_reads += o.metadata_reads;
        self.replacement_area_reads += o.replacement_area_reads;
        self.data_writes += o.data_writes;
        self.metadata_writes += o.metadata_writes;
        self.replacement_area_writes += o.replacement_area_writes;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.activates += o.activates;
        self.precharges += o.precharges;
        self.refreshes += o.refreshes;
        self.bytes += o.bytes;
        self.busy_bus_cycles += o.busy_bus_cycles;
        self.read_latency_sum += o.read_latency_sum;
        self.read_latency_count += o.read_latency_count;
        self.forwarded_reads += o.forwarded_reads;
        self.drain_cycles += o.drain_cycles;
        self.drain_episodes += o.drain_episodes;
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemRequest,
    loc: Location,
    needed_act: bool,
}

/// Rejection returned when a queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl core::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("memory controller queue is full")
    }
}

impl std::error::Error for QueueFull {}


/// Command tracing (set `ATTACHE_TRACE=1`): logs CAS/ACT/PRE on channel 0
/// to stderr. The flag is read once and cached.
fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("ATTACHE_TRACE").is_ok())
}

/// Protocol conformance auditing (set `ATTACHE_CONFORMANCE=1`): attaches a
/// [`ConformanceChecker`] to every channel at construction. Read per call —
/// not cached — so tests can toggle it between [`Channel::new`] calls.
fn conformance_enabled() -> bool {
    std::env::var("ATTACHE_CONFORMANCE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Age (bus cycles) past which the oldest read preempts row-hit-first order.
const STARVATION_AGE: u64 = 1_536;

/// One DDR4 channel with its memory controller front-end.
#[derive(Debug)]
pub struct Channel {
    index: usize,
    cfg: DramConfig,
    mapping: AddressMapping,
    ranks: Vec<Rank>,
    read_q: Vec<Pending>,
    write_q: Vec<Pending>,
    in_flight: Vec<(u64, MemRequest, bool)>, // (finish, req, counted_row_hit)
    completed: Vec<Completion>,
    now: u64,
    sticky_drain: bool,
    stats: ChannelStats,
    stats_base: u64,
    /// Per-sub-rank data-bus busy cycles / CAS counts. Observability-only
    /// side counters (not part of [`ChannelStats`], which feeds
    /// `RunReport`): sub-ranked strategies serve narrow lines from a
    /// subset of chips, and these expose that split per sub-rank.
    subrank_busy: Vec<u64>,
    subrank_cas: Vec<u64>,
    power: PowerModel,
    /// Optional protocol auditor; a pure observer of the command stream.
    auditor: Option<Box<ConformanceChecker>>,
    /// Optional shared event-trace ring, dumped when the auditor fires.
    trace: Option<attache_metrics::SharedTraceRing>,
    /// Fault-injection: temporary cap on the read queue's effective
    /// capacity (`None` = full capacity). Timing-only: models a derated
    /// controller front-end that back-pressures reads.
    read_derate: Option<usize>,
}

impl Channel {
    /// Creates channel `index` of a memory system described by `cfg`.
    pub fn new(index: usize, cfg: DramConfig, power: PowerParams) -> Self {
        Self {
            index,
            cfg,
            mapping: AddressMapping::new(cfg),
            ranks: (0..cfg.ranks).map(|_| Rank::new(&cfg)).collect(),
            read_q: Vec::with_capacity(cfg.read_queue_capacity),
            write_q: Vec::with_capacity(cfg.write_queue_capacity),
            in_flight: Vec::new(),
            completed: Vec::new(),
            now: 0,
            sticky_drain: false,
            stats: ChannelStats::default(),
            stats_base: 0,
            subrank_busy: vec![0; cfg.subranks],
            subrank_cas: vec![0; cfg.subranks],
            power: PowerModel::new(power),
            auditor: conformance_enabled().then(|| Box::new(ConformanceChecker::new(&cfg))),
            trace: None,
            read_derate: None,
        }
    }

    /// Fault-injection hook: caps (or restores) the read queue's
    /// effective capacity. Affects only future enqueue decisions —
    /// requests already queued are unaffected, so a cap below the current
    /// occupancy simply blocks new reads until the queue drains.
    pub fn set_read_derate(&mut self, cap: Option<usize>) {
        self.read_derate = cap;
    }

    /// Attaches a protocol auditor validating against `timing` — normally
    /// the channel's own timing (zero violations expected), but tests pass
    /// a perturbed reference to prove deliberate violations are caught.
    pub fn attach_auditor(&mut self, timing: Timing) {
        self.auditor = Some(Box::new(ConformanceChecker::with_timing(&self.cfg, timing)));
    }

    /// Audit counters of the attached auditor, if any.
    pub fn conformance_stats(&self) -> Option<ConformanceStats> {
        self.auditor.as_ref().map(|a| a.stats())
    }

    /// Runs one observed command past the auditor.
    ///
    /// # Panics
    ///
    /// Panics on any protocol violation: a command the scheduler issued
    /// that the independent shadow model deems illegal is a simulator bug,
    /// and continuing would produce silently wrong timing.
    fn audit(&mut self, now: u64, rank: usize, cmd: DramCommand) {
        if let Some(a) = self.auditor.as_mut() {
            if let Err(v) = a.observe(now, rank, &cmd) {
                let history = self
                    .trace
                    .as_ref()
                    .map(|r| format!("\n{}", attache_metrics::dump_shared(r)))
                    .unwrap_or_default();
                panic!(
                    "[attache-dram] channel {} rank {rank}: DRAM protocol violation: {v}{history}",
                    self.index
                );
            }
        }
    }

    /// Shares an event-trace ring with this channel; its contents are
    /// appended to the panic message when the protocol auditor fires.
    pub fn set_trace(&mut self, ring: attache_metrics::SharedTraceRing) {
        self.trace = Some(ring);
    }

    /// Per-sub-rank data-bus busy cycles since the last stats reset.
    pub fn subrank_busy(&self) -> &[u64] {
        &self.subrank_busy
    }

    /// Per-sub-rank CAS (read or write burst) counts since the last
    /// stats reset.
    pub fn subrank_cas(&self) -> &[u64] {
        &self.subrank_cas
    }

    /// The current bus cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether a read can be accepted this cycle.
    pub fn can_accept_read(&self) -> bool {
        let cap = match self.read_derate {
            Some(derate) => derate.min(self.cfg.read_queue_capacity),
            None => self.cfg.read_queue_capacity,
        };
        self.read_q.len() < cap
    }

    /// Whether a write can be accepted this cycle.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue_capacity
    }

    /// Queue occupancy `(reads, writes)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Whether [`enqueue`](Channel::enqueue) would succeed for `req` right
    /// now, without mutating anything. This is *not* the same as the queue
    /// having a free slot: reads forward from the write queue and writes
    /// coalesce into it, and both succeed even when the target queue is full.
    pub fn would_accept(&self, req: &MemRequest) -> bool {
        let hits_write_q = self
            .write_q
            .iter()
            .any(|p| p.req.line_addr == req.line_addr);
        match req.kind {
            AccessKind::Read => hits_write_q || self.can_accept_read(),
            AccessKind::Write => hits_write_q || self.can_accept_write(),
        }
    }

    /// Enqueues a request.
    ///
    /// Reads that hit a queued write are forwarded and complete immediately.
    /// Writes to a line already in the write queue coalesce in place.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the corresponding queue has no free slot.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let loc = self.mapping.decompose(req.line_addr);
        debug_assert_eq!(loc.channel, self.index, "request routed to wrong channel");
        match req.kind {
            AccessKind::Read => {
                if self.write_q.iter().any(|p| p.req.line_addr == req.line_addr) {
                    // Forward from the write buffer: data available on chip.
                    self.stats.forwarded_reads += 1;
                    self.completed.push(Completion {
                        request: req,
                        finished_at: self.now + 1,
                    });
                    return Ok(());
                }
                if !self.can_accept_read() {
                    return Err(QueueFull);
                }
                self.read_q.push(Pending {
                    req,
                    loc,
                    needed_act: false,
                });
            }
            AccessKind::Write => {
                if let Some(p) = self
                    .write_q
                    .iter_mut()
                    .find(|p| p.req.line_addr == req.line_addr)
                {
                    p.req = req; // coalesce: latest write wins
                    return Ok(());
                }
                if !self.can_accept_write() {
                    return Err(QueueFull);
                }
                self.write_q.push(Pending {
                    req,
                    loc,
                    needed_act: false,
                });
            }
        }
        Ok(())
    }

    /// Drains completions accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Whether no work is pending or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.in_flight.is_empty()
    }

    /// Running statistics.
    pub fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.cycles = self.now - self.stats_base;
        s
    }

    /// Accumulated DRAM energy.
    pub fn energy(&self) -> crate::power::EnergyBreakdown {
        self.power.energy()
    }

    /// Resets statistics and energy after warm-up (state machines keep
    /// their contents).
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
        // Keep `cycles` relative to the reset point.
        self.stats_base = self.now;
        self.subrank_busy.iter_mut().for_each(|c| *c = 0);
        self.subrank_cas.iter_mut().for_each(|c| *c = 0);
        self.power.reset();
    }

    /// Advances one bus cycle. Returns `true` when the cycle changed any
    /// *scheduling* state (refreshed, issued a command, or flipped the
    /// drain mode) — i.e. when a cached
    /// [`next_sched_event`](Channel::next_sched_event) bound must be
    /// discarded. Burst retirement deliberately does **not** count: queues
    /// only shrink at CAS-issue time and all timing registers are written
    /// at issue, so retiring data changes neither command legality nor
    /// enqueue outcomes (retires are tracked separately via
    /// [`next_retire`](Channel::next_retire)).
    pub fn tick(&mut self) -> bool {
        self.now += 1;
        let now = self.now;

        // Retire finished bursts.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (finish, req, row_hit) = self.in_flight.swap_remove(i);
                self.record_completion(req, finish, row_hit);
            } else {
                i += 1;
            }
        }

        // Background power (one rank per channel in Table II, loop anyway).
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(1, active);
        }

        // Refresh management consumes the command bus when it acts.
        if self.manage_refresh(now) {
            return true;
        }

        self.issue(now)
    }

    /// Advances one bus cycle executing only burst retirement (plus the
    /// background-power and drain-cycle accounting every cycle performs).
    /// Valid only when the caller knows from a cached
    /// [`next_sched_event`](Channel::next_sched_event) bound that no
    /// refresh, command issue, or drain-mode flip can occur this cycle —
    /// then the full [`tick`](Channel::tick) would do exactly this.
    pub fn tick_retire_only(&mut self) {
        debug_assert!(
            self.next_sched_event() > self.now + 1,
            "tick_retire_only would skip a scheduler event"
        );
        self.now += 1;
        let now = self.now;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (finish, req, row_hit) = self.in_flight.swap_remove(i);
                self.record_completion(req, finish, row_hit);
            } else {
                i += 1;
            }
        }
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(1, active);
        }
        if self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            self.stats.drain_cycles += 1;
        }
    }

    /// Fast-forwards an idle channel to `target`, accounting refreshes and
    /// background energy in bulk.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not idle.
    pub fn advance_idle_to(&mut self, target: u64) {
        assert!(self.is_idle(), "advance_idle_to requires an idle channel");
        if target <= self.now {
            return;
        }
        let span = target - self.now;
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            let due = self.ranks[r].next_refresh_due;
            if target >= due {
                let n = (target - due) / t.t_refi + 1;
                self.ranks[r].bulk_refresh(n, &t);
                for _ in 0..n {
                    self.power.on_refresh();
                }
                self.stats.refreshes += n;
                if let Some(a) = self.auditor.as_mut() {
                    // Mirror bulk_refresh's force_idle horizon: the last
                    // refresh of the batch completes tRFC after it starts.
                    let busy =
                        self.ranks[r].next_refresh_due.saturating_sub(t.t_refi) + t.t_rfc;
                    a.fast_forward_refresh(r, n, busy);
                }
            }
            self.power.on_background(span, false);
        }
        self.now = target;
    }

    /// The earliest future cycle at which [`tick`](Channel::tick) could do
    /// anything other than accrue background power: retire an in-flight
    /// burst, service a refresh, flip the write-drain mode, or issue a
    /// CAS/ACT/PRE for a queued request. The min of
    /// [`next_sched_event`](Channel::next_sched_event) and
    /// [`next_retire`](Channel::next_retire).
    pub fn next_event(&self) -> u64 {
        self.next_sched_event().min(self.next_retire())
    }

    /// The earliest future cycle at which an in-flight burst retires or a
    /// buffered completion (forwarded read) is ready to drain. Unlike the
    /// scheduling bound this needs no scan invalidation: it only ever
    /// changes when a CAS issues (push) or a burst retires (pop), both of
    /// which happen on executed ticks.
    pub fn next_retire(&self) -> u64 {
        // Forwarded reads buffer a completion for the next tick.
        if !self.completed.is_empty() {
            return self.now + 1;
        }
        let mut horizon = u64::MAX;
        for &(finish, ..) in &self.in_flight {
            horizon = horizon.min(finish);
        }
        horizon.max(self.now + 1)
    }

    /// The earliest future cycle at which the *scheduler* could act:
    /// service a refresh, flip the write-drain mode, or issue a CAS/ACT/PRE
    /// for a queued request. Burst retirement is deliberately excluded
    /// (see [`next_retire`](Channel::next_retire)); a cached value of this
    /// bound stays valid across retire-only cycles and is invalidated only
    /// by [`tick`](Channel::tick) returning `true` or by an enqueue.
    ///
    /// The contract is one-sided: the returned cycle may be *earlier* than
    /// the first real event (the caller just ticks and re-asks, degrading
    /// toward the per-cycle engine), but it must never be later — every
    /// cycle strictly between `now` and the returned value must be a no-op
    /// tick. All scheduler gates are of the form `now >= X` over state that
    /// is frozen while no command issues, so the earliest legal issue cycle
    /// for each queued request is an exact `max` of its gates.
    pub fn next_sched_event(&self) -> u64 {
        let now = self.now;
        let soon = now + 1;
        let mut horizon = u64::MAX;
        for rank in &self.ranks {
            // A due refresh precharges/refreshes on the command bus right
            // away; don't model its sub-steps, just fall back to ticking.
            if rank.refresh_due(now) {
                return soon;
            }
            horizon = horizon.min(rank.next_refresh_due);
        }
        // Never skip across a write-drain mode transition: `issue` mutates
        // `sticky_drain` and counts episodes there. Queue lengths are frozen
        // during a no-op span, so the next tick's decision is computable.
        let next_sticky = if self.sticky_drain {
            self.write_q.len() > self.cfg.write_low_watermark
        } else {
            self.write_q.len() >= self.cfg.write_high_watermark
        };
        if next_sticky != self.sticky_drain {
            return soon;
        }
        let writes = next_sticky || (self.read_q.is_empty() && !self.write_q.is_empty());
        let q = if writes { &self.write_q } else { &self.read_q };
        if q.is_empty() {
            return horizon;
        }
        // Anti-starvation mirror of `issue_from`: once the oldest read
        // crosses STARVATION_AGE it is served exclusively, so the crossing
        // itself is an event, and past it only that read's gates matter.
        let mut starving = None;
        if !writes {
            if let Some((i, p)) = self
                .read_q
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.req.arrival)
            {
                if now.saturating_sub(p.req.arrival) > STARVATION_AGE {
                    starving = Some(i);
                } else {
                    horizon = horizon.min(p.req.arrival + STARVATION_AGE + 1);
                }
            }
        }
        let candidates = match starving {
            Some(i) => i..i + 1,
            None => 0..q.len(),
        };
        for i in candidates {
            let ready = self.candidate_ready_at(&q[i], writes, starving.is_some());
            // A gate already satisfied means "issuable next tick" (this
            // tick's single command slot may have gone to someone else).
            horizon = horizon.min(ready.max(soon));
            if horizon == soon {
                break;
            }
        }
        horizon
    }

    /// Tightens a still-valid scheduling bound after a successful
    /// [`enqueue`](Channel::enqueue) of `req`, without rescanning the
    /// queues. An enqueue can only *add* scheduling opportunities (the new
    /// candidate itself, a drain-mode flip it triggers) or remove them
    /// (extra row protection, a served-queue switch) — and removed
    /// opportunities merely leave the old bound early, which the one-sided
    /// contract allows. So the exact update is
    /// `min(old, flip term, new candidate's ready, starvation crossing)`.
    pub fn bound_with_enqueued(&self, old: u64, req: &MemRequest) -> u64 {
        let now = self.now;
        let soon = now + 1;
        // Did this enqueue arm a drain-mode flip for the next tick?
        let next_sticky = if self.sticky_drain {
            self.write_q.len() > self.cfg.write_low_watermark
        } else {
            self.write_q.len() >= self.cfg.write_high_watermark
        };
        if next_sticky != self.sticky_drain {
            return soon;
        }
        let writes = next_sticky || (self.read_q.is_empty() && !self.write_q.is_empty());
        let q = match req.kind {
            AccessKind::Write => &self.write_q,
            AccessKind::Read => &self.read_q,
        };
        // A forwarded read touches no queue (its completion is tracked by
        // `next_retire`), and a request whose queue is not being served
        // adds no earlier opportunity: it becomes servable only after an
        // issue or flip, both of which re-derive the bound anyway.
        let served = (req.kind == AccessKind::Write) == writes;
        if !served {
            return old;
        }
        let Some(p) = q.iter().find(|p| p.req.id == req.id) else {
            return old;
        };
        let starving = req.kind == AccessKind::Read
            && now.saturating_sub(req.arrival) > STARVATION_AGE;
        let mut bound = old.min(self.candidate_ready_at(p, writes, starving).max(soon));
        if req.kind == AccessKind::Read {
            // The new read may one day cross the anti-starvation age and
            // grab exclusive service — that crossing is an event.
            bound = bound.min((req.arrival + STARVATION_AGE + 1).max(soon));
        }
        bound
    }

    /// The earliest cycle at which any of the three scheduler passes could
    /// issue a command for `p`, or `u64::MAX` when `p` can make no progress
    /// until some other event changes the machine state.
    fn candidate_ready_at(&self, p: &Pending, writes: bool, starving: bool) -> u64 {
        let t = self.cfg.timing;
        let rank = &self.ranks[p.loc.rank];
        let bank = p.loc.flat_bank(&self.cfg);
        let mask = p.req.width.mask();
        // Every pass is blocked while the rank refreshes.
        let gate = rank.refresh_until;
        let mut ready = u64::MAX;

        // Pass 1 (CAS): legal once every masked sub-bank has the row open
        // and the column/bus timers have expired.
        let mut all_open = true;
        let mut cas = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if !sb.row_open(p.loc.row) {
                all_open = false;
                break;
            }
            cas = cas.max(if writes {
                sb.write_ready_at().max(rank.bus_write_ready_at(s))
            } else {
                sb.read_ready_at().max(rank.bus_read_ready_at(s))
            });
        }
        if all_open {
            ready = ready.min(cas);
        }

        // Pass 2 (ACT): legal once every masked sub-bank that lacks the row
        // is idle and clears tRC/tRP/tRRD/tFAW. A sub-bank holding a
        // *different* row blocks the ACT until a PRE (pass 3) closes it.
        let mut any_needed = false;
        let mut blocked = false;
        let mut act = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if sb.row_open(p.loc.row) {
                continue;
            }
            any_needed = true;
            if matches!(sb.state(), crate::bank::RowState::Active { .. }) {
                blocked = true;
                break;
            }
            act = act
                .max(sb.activate_ready_at())
                .max(rank.act_window_ready_at(s, &t));
        }
        if any_needed && !blocked {
            ready = ready.min(act);
        }

        // Pass 3 (PRE): legal once every conflicting masked sub-bank clears
        // tRAS/tRTP/tWR. Row protection (`unprotected_mask`) depends only on
        // queue contents, which are frozen during a no-op span, so a fully
        // protected conflict contributes no bound — it unblocks via the
        // protector's own CAS, which is bounded above.
        let mut conflict_mask = 0u8;
        let mut pre = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if let crate::bank::RowState::Active { row } = sb.state() {
                if row != p.loc.row {
                    conflict_mask |= 1 << s;
                    pre = pre.max(sb.precharge_ready_at());
                }
            }
        }
        if conflict_mask != 0
            && (starving
                || self.unprotected_mask(p.loc.rank, bank, conflict_mask, writes, p.req.arrival)
                    != 0)
        {
            ready = ready.min(pre);
        }

        ready
    }

    /// Advances `span` cycles in bulk, replaying exactly the side effects
    /// the per-cycle engine would have produced over a span of no-op ticks:
    /// background power per rank and write-drain cycle accounting. The
    /// caller must guarantee (via [`next_event`](Channel::next_event)) that
    /// no command, completion, refresh, or drain-mode flip falls inside the
    /// span.
    pub fn advance_noop(&mut self, span: u64) {
        debug_assert!(
            self.next_event() > self.now + span,
            "advance_noop would skip over a scheduler event"
        );
        if span == 0 {
            return;
        }
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(span, active);
        }
        if self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            self.stats.drain_cycles += span;
        }
        self.now += span;
    }

    fn record_completion(&mut self, req: MemRequest, finish: u64, row_hit: bool) {
        use crate::request::Origin;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        match (req.kind, req.origin) {
            (AccessKind::Read, Origin::Demand { .. }) => self.stats.demand_reads += 1,
            (AccessKind::Read, Origin::Corrective { .. }) => self.stats.corrective_reads += 1,
            (AccessKind::Read, Origin::MetadataInstall) => self.stats.metadata_reads += 1,
            (AccessKind::Read, Origin::ReplacementArea) => self.stats.replacement_area_reads += 1,
            (AccessKind::Read, _) => self.stats.demand_reads += 1,
            (AccessKind::Write, Origin::MetadataWriteback) => self.stats.metadata_writes += 1,
            (AccessKind::Write, Origin::ReplacementArea) => self.stats.replacement_area_writes += 1,
            (AccessKind::Write, _) => self.stats.data_writes += 1,
        }
        if req.kind == AccessKind::Read {
            self.stats.read_latency_sum += finish - req.arrival;
            self.stats.read_latency_count += 1;
        }
        self.completed.push(Completion {
            request: req,
            finished_at: finish,
        });
    }

    /// Returns `true` when the command bus was used for refresh work.
    fn manage_refresh(&mut self, now: u64) -> bool {
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            if self.ranks[r].refresh_due(now) {
                if self.ranks[r].any_bank_open() {
                    if let Some((bank, mask)) = self.ranks[r].refresh_precharge_candidate(now) {
                        self.ranks[r].precharge(now, bank, mask, &t);
                        self.audit(now, r, DramCommand::Precharge { bank, mask });
                        self.stats.precharges += 1;
                        return true;
                    }
                    // Wait for precharge eligibility.
                    return false;
                }
                self.ranks[r].refresh(now, &t);
                self.audit(now, r, DramCommand::Refresh);
                self.power.on_refresh();
                self.stats.refreshes += 1;
                return true;
            }
        }
        false
    }

    fn drain_writes(&mut self) -> bool {
        let hi = self.cfg.write_high_watermark;
        let lo = self.cfg.write_low_watermark;
        if self.sticky_drain {
            if self.write_q.len() <= lo {
                self.sticky_drain = false;
            }
        } else if self.write_q.len() >= hi {
            self.sticky_drain = true;
        }
        self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    fn issue(&mut self, now: u64) -> bool {
        let was = self.sticky_drain;
        let writes = self.drain_writes();
        if writes {
            self.stats.drain_cycles += 1;
        }
        if self.sticky_drain && !was {
            self.stats.drain_episodes += 1;
        }
        let issued = if writes {
            self.issue_from(now, true)
        } else if !self.read_q.is_empty() {
            self.issue_from(now, false)
        } else {
            false
        };
        issued || self.sticky_drain != was
    }


    /// Filters a precharge mask down to sub-banks whose open row has no
    /// *older* queued requests left. Open rows with pending work are kept
    /// open (they will be CAS-ready soon — closing them thrashes), but the
    /// protection is age-relative: once the conflicting request is the
    /// oldest contender for the row, it may close it. This is the classic
    /// FR-FCFS fallback to age order, and it matters when half- and
    /// full-width streams share a bank.
    fn unprotected_mask(&self, rank: usize, bank: usize, mask: u8, writes: bool, age: u64) -> u8 {
        let mut out = mask;
        for s in 0..self.cfg.subranks {
            if mask & (1 << s) == 0 {
                continue;
            }
            if let crate::bank::RowState::Active { row } = self.ranks[rank].sub_bank(bank, s).state()
            {
                let wanted = |p: &&Pending| {
                    p.loc.rank == rank
                        && p.loc.flat_bank(&self.cfg) == bank
                        && p.loc.row == row
                        && p.req.width.mask() & (1 << s) != 0
                        && p.req.arrival <= age
                };
                // Only the queue currently being served can protect a
                // row: protecting across queues deadlocks (a draining
                // write would wait forever on a read that cannot issue
                // during the drain).
                let pending = if writes {
                    self.write_q.iter().find(wanted).is_some()
                } else {
                    self.read_q.iter().find(wanted).is_some()
                };
                if pending {
                    out &= !(1 << s);
                }
            }
        }
        out
    }

    fn issue_from(&mut self, now: u64, writes: bool) -> bool {
        let t = self.cfg.timing;

        // Anti-starvation: when the oldest *read* is too old, serve it
        // exclusively. Writes are posted — nobody waits on them — so they
        // are always drained row-hit-first.
        let starving: Option<usize> = if writes {
            None
        } else {
            self.read_q
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.req.arrival)
                .filter(|(_, p)| now.saturating_sub(p.req.arrival) > STARVATION_AGE)
                .map(|(i, _)| i)
        };

        // Pass 1: CAS for any ready request (row hit first by construction —
        // a ready CAS implies the row is open).
        let cas_idx = {
            let q = if writes { &self.write_q } else { &self.read_q };
            let candidates = match starving {
                Some(i) => i..i + 1,
                None => 0..q.len(),
            };
            let mut found = None;
            for i in candidates {
                let p = &q[i];
                let rank = &self.ranks[p.loc.rank];
                if rank.refresh_due(now) {
                    continue;
                }
                let bank = p.loc.flat_bank(&self.cfg);
                let mask = p.req.width.mask();
                let ok = if writes {
                    rank.can_write(now, bank, p.loc.row, mask)
                } else {
                    rank.can_read(now, bank, p.loc.row, mask)
                };
                if ok {
                    found = Some(i);
                    break;
                }
            }
            found
        };

        if let Some(i) = cas_idx {
            let p = if writes {
                self.write_q.remove(i)
            } else {
                self.read_q.remove(i)
            };
            if trace_enabled() && self.index == 0 {
                eprintln!("{} {} bank={} row={} mask={:02b} id={}",
                    now, if writes {"WR "} else {"RD "},
                    p.loc.flat_bank(&self.cfg), p.loc.row, p.req.width.mask(), p.req.id);
            }
            let bank = p.loc.flat_bank(&self.cfg);
            let mask = p.req.width.mask();
            let chips = p.req.width.chips();
            let bytes = p.req.width.bytes();
            let rank = &mut self.ranks[p.loc.rank];
            let finish = if writes {
                rank.write(now, bank, mask, &t);
                self.power.on_write(chips, bytes);
                now + t.t_cwl + t.t_burst
            } else {
                rank.read(now, bank, mask, &t);
                self.power.on_read(chips, bytes);
                now + t.t_cas + t.t_burst
            };
            let cmd = if writes {
                DramCommand::Write { bank, row: p.loc.row, mask }
            } else {
                DramCommand::Read { bank, row: p.loc.row, mask }
            };
            self.audit(now, p.loc.rank, cmd);
            self.stats.bytes += bytes;
            self.stats.busy_bus_cycles += t.t_burst * mask.count_ones() as u64;
            for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
                self.subrank_busy[s] += t.t_burst;
                self.subrank_cas[s] += 1;
            }
            self.in_flight.push((finish, p.req, !p.needed_act));
            return true;
        }

        // Pass 2: ACT for the oldest request that needs one.
        let act_idx = {
            let q = if writes { &self.write_q } else { &self.read_q };
            let candidates = match starving {
                Some(i) => i..i + 1,
                None => 0..q.len(),
            };
            let mut found = None;
            for i in candidates {
                let p = &q[i];
                let rank = &self.ranks[p.loc.rank];
                let bank = p.loc.flat_bank(&self.cfg);
                if rank.can_activate(now, bank, p.loc.row, p.req.width.mask(), &t) {
                    found = Some(i);
                    break;
                }
            }
            found
        };

        if let Some(i) = act_idx {
            let (loc, mask) = {
                let q = if writes { &mut self.write_q } else { &mut self.read_q };
                q[i].needed_act = true;
                (q[i].loc, q[i].req.width.mask())
            };
            let bank = loc.flat_bank(&self.cfg);
            // Chips engaged: 4 per sub-rank that actually activates.
            if trace_enabled() && self.index == 0 {
                eprintln!("{} ACT bank={} row={} mask={:02b}", now, bank, loc.row, mask);
            }
            let rank = &mut self.ranks[loc.rank];
            let before = rank.open_sub_banks;
            rank.activate(now, bank, loc.row, mask, &t);
            let opened = (rank.open_sub_banks - before) as u32;
            self.audit(now, loc.rank, DramCommand::Activate { bank, row: loc.row, mask });
            self.power.on_activate(opened * 4);
            self.stats.activates += 1;
            return true;
        }

        // Pass 3: PRE for the oldest request blocked by a row conflict —
        // but never close a row that still has queued requests (they will
        // become CAS-ready soon; closing them causes open-row thrash when
        // half- and full-width streams share a bank).
        let pre = {
            let q = if writes { &self.write_q } else { &self.read_q };
            let candidates = match starving {
                Some(i) => i..i + 1,
                None => 0..q.len(),
            };
            let mut found = None;
            for i in candidates {
                let p = &q[i];
                let rank = &self.ranks[p.loc.rank];
                if rank.refreshing(now) || rank.refresh_due(now) {
                    continue;
                }
                let bank = p.loc.flat_bank(&self.cfg);
                if let Some(mask) = rank.precharge_mask(now, bank, p.loc.row, p.req.width.mask())
                {
                    // The starving-read override bypasses row protection:
                    // an over-age read may close any row it conflicts with.
                    let mask = if starving.is_some() {
                        mask
                    } else {
                        self.unprotected_mask(p.loc.rank, bank, mask, writes, p.req.arrival)
                    };
                    if mask != 0 {
                        found = Some((i, bank, p.loc.rank, mask));
                        break;
                    }
                }
            }
            found
        };

        if let Some((i, bank, rank_idx, mask)) = pre {
            if trace_enabled() && self.index == 0 {
                let q = if writes { &self.write_q } else { &self.read_q };
                eprintln!("{} PRE bank={} mask={:02b} for-row={} q={}", now, bank, mask, q[i].loc.row, q.len());
            }
            {
                let q = if writes { &mut self.write_q } else { &mut self.read_q };
                q[i].needed_act = true;
            }
            self.ranks[rank_idx].precharge(now, bank, mask, &t);
            self.audit(now, rank_idx, DramCommand::Precharge { bank, mask });
            self.stats.precharges += 1;
            return true;
        }
        false
    }
}
