//! One memory channel: request queues, FR-FCFS scheduling, refresh, and the
//! command/data bus model.
//!
//! Scheduling follows the paper's CramSim configuration (§V): reads are
//! prioritized over writes, and a write buffer drains to memory once a high
//! watermark is reached (with hysteresis down to a low watermark). Row hits
//! are preferred over older row misses (FR-FCFS) with an age cap to prevent
//! starvation.

use crate::config::{AddressMapping, DramConfig, Location, Timing};
use crate::conformance::{ConformanceChecker, ConformanceStats, DramCommand};
use crate::power::{PowerModel, PowerParams};
use crate::rank::Rank;
use crate::request::{AccessKind, Completion, MemRequest};


/// Aggregated per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Bus cycles simulated.
    pub cycles: u64,
    /// Demand reads completed.
    pub demand_reads: u64,
    /// Corrective (COPR-misprediction) reads completed.
    pub corrective_reads: u64,
    /// Metadata-Cache install reads completed.
    pub metadata_reads: u64,
    /// Replacement-Area reads completed.
    pub replacement_area_reads: u64,
    /// LLC writebacks completed.
    pub data_writes: u64,
    /// Metadata-Cache eviction writes completed.
    pub metadata_writes: u64,
    /// Replacement-Area writes completed.
    pub replacement_area_writes: u64,
    /// CAS commands that hit an already-open row.
    pub row_hits: u64,
    /// CAS commands that required ACT (and possibly PRE) first.
    pub row_misses: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// Data bytes moved over the bus.
    pub bytes: u64,
    /// Sub-rank-bus busy cycles (sum over sub-ranks).
    pub busy_bus_cycles: u64,
    /// Total latency of completed reads (arrival to data end), bus cycles.
    pub read_latency_sum: u64,
    /// Number of completed reads counted in the latency sum.
    pub read_latency_count: u64,
    /// Reads served by forwarding from the write queue.
    pub forwarded_reads: u64,
    /// Background patrol-scrub reads completed (ECC maintenance).
    pub scrub_reads: u64,
    /// Bus cycles spent in write-drain mode.
    pub drain_cycles: u64,
    /// Write-drain episodes entered.
    pub drain_episodes: u64,
}

impl ChannelStats {
    /// Total read requests serviced from DRAM (not forwarded).
    pub fn total_reads(&self) -> u64 {
        self.demand_reads
            + self.corrective_reads
            + self.metadata_reads
            + self.replacement_area_reads
            + self.scrub_reads
    }

    /// Total write requests serviced.
    pub fn total_writes(&self) -> u64 {
        self.data_writes + self.metadata_writes + self.replacement_area_writes
    }

    /// Total memory requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Average read latency in bus cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.read_latency_count == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.read_latency_count as f64
        }
    }

    /// Mean data bandwidth in bytes per bus cycle.
    pub fn bandwidth_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes as f64 / self.cycles as f64
        }
    }

    /// Row-buffer hit rate over CAS commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating channels).
    pub fn add(&mut self, o: &ChannelStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.demand_reads += o.demand_reads;
        self.corrective_reads += o.corrective_reads;
        self.metadata_reads += o.metadata_reads;
        self.replacement_area_reads += o.replacement_area_reads;
        self.data_writes += o.data_writes;
        self.metadata_writes += o.metadata_writes;
        self.replacement_area_writes += o.replacement_area_writes;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.activates += o.activates;
        self.precharges += o.precharges;
        self.refreshes += o.refreshes;
        self.bytes += o.bytes;
        self.busy_bus_cycles += o.busy_bus_cycles;
        self.read_latency_sum += o.read_latency_sum;
        self.read_latency_count += o.read_latency_count;
        self.forwarded_reads += o.forwarded_reads;
        self.scrub_reads += o.scrub_reads;
        self.drain_cycles += o.drain_cycles;
        self.drain_episodes += o.drain_episodes;
    }
}

/// Cached result of one candidate's sub-bank walk, valid while the
/// epochs it was computed under still match (see
/// [`Channel::bank_epoch`]). All values are *bank-local*: rank-level
/// timers (refresh gate, data-bus, tFAW window) move on commands to
/// *other* banks too, so they are cheap fresh loads at use time rather
/// than cached state.
///
/// The flags of the three scheduler passes are encoded in the masks:
/// `act_mask | conflict_mask == 0` ⟺ every masked sub-bank has the row
/// open (CAS pass), `conflict_mask != 0` ⟺ ACT is blocked behind a PRE.
#[derive(Debug, Clone, Copy, Default)]
struct CandCache {
    /// Max of the masked open sub-banks' column-ready times.
    cas_bank: u64,
    /// Max of `act_mask` sub-banks' tRC/tRP activate-ready times.
    act_bank: u64,
    /// Max of `conflict_mask` sub-banks' tRAS/tRTP/tWR precharge-ready
    /// times.
    pre_bank: u64,
    /// `bank_epoch` value this cache was computed under. Epochs wrap
    /// at `u32::MAX`; a false match would need exactly `2^32` commands
    /// to one bank while this candidate sits queued, far beyond any
    /// queue residence time.
    bank_epoch: u32,
    /// `rank_epoch` (refresh) value this cache was computed under.
    rank_epoch: u32,
    /// Identity snapshot of `loc.flat_bank(..)` — immutable per request.
    flat_bank: u16,
    /// Identity snapshot of `loc.rank` — immutable per request.
    rank: u8,
    /// Sub-bank mask of the request's width. A real mask is never zero,
    /// so `mask == 0` doubles as the "never computed" sentinel (the
    /// default), invalidated again on write coalescing.
    mask: u8,
    /// Masked sub-banks that are idle and need an ACT.
    act_mask: u8,
    /// Masked sub-banks holding a *different* open row (need a PRE).
    conflict_mask: u8,
}

impl CandCache {
    /// Walks the masked sub-banks of `p`'s bank once and snapshots
    /// everything bank-local the three scheduler passes need. `writes`
    /// is fixed per candidate (each `Pending` lives in exactly one
    /// queue), so caching the direction-specific column timer is sound.
    fn compute(
        rank: &Rank,
        rank_idx: usize,
        bank: usize,
        p: &Pending,
        writes: bool,
        subranks: usize,
        epochs: (u32, u32),
    ) -> Self {
        let mask = p.req.width.mask();
        let mut c = CandCache {
            bank_epoch: epochs.0,
            rank_epoch: epochs.1,
            flat_bank: bank as u16,
            rank: rank_idx as u8,
            mask,
            ..Self::default()
        };
        for s in (0..subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if sb.row_open(p.loc.row) {
                c.cas_bank = c.cas_bank.max(if writes {
                    sb.write_ready_at()
                } else {
                    sb.read_ready_at()
                });
            } else if matches!(sb.state(), crate::bank::RowState::Active { .. }) {
                // A different row is open: ACT is blocked until a PRE
                // closes it.
                c.conflict_mask |= 1 << s;
                c.pre_bank = c.pre_bank.max(sb.precharge_ready_at());
            } else {
                c.act_mask |= 1 << s;
                c.act_bank = c.act_bank.max(sb.activate_ready_at());
            }
        }
        c
    }
}

/// A queued request. `repr(C)` pins the scan cache to the front: the
/// scheduler's fast path reads only the cache (one line into each
/// element of the queue's stride), touching `loc`/`req` just on
/// recompute, issue, and the rarer PRE/starvation paths.
#[derive(Debug, Clone)]
#[repr(C)]
struct Pending {
    /// Epoch-validated scan cache; interior mutability lets the
    /// scheduler refresh it through the shared queue borrow.
    cache: std::cell::Cell<CandCache>,
    loc: Location,
    req: MemRequest,
    needed_act: bool,
}

/// Rejection returned when a queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl core::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("memory controller queue is full")
    }
}

impl std::error::Error for QueueFull {}


/// Command tracing (set `ATTACHE_TRACE=1`): logs CAS/ACT/PRE on channel 0
/// to stderr. The flag is read once and cached.
fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("ATTACHE_TRACE").is_ok())
}

/// Protocol conformance auditing (set `ATTACHE_CONFORMANCE=1`): attaches a
/// [`ConformanceChecker`] to every channel at construction. Read per call —
/// not cached — so tests can toggle it between [`Channel::new`] calls.
fn conformance_enabled() -> bool {
    std::env::var("ATTACHE_CONFORMANCE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Age (bus cycles) past which the oldest read preempts row-hit-first order.
const STARVATION_AGE: u64 = 1_536;

/// One DDR4 channel with its memory controller front-end.
#[derive(Debug)]
pub struct Channel {
    index: usize,
    cfg: DramConfig,
    mapping: AddressMapping,
    ranks: Vec<Rank>,
    read_q: Vec<Pending>,
    write_q: Vec<Pending>,
    in_flight: Vec<(u64, MemRequest, bool)>, // (finish, req, counted_row_hit)
    completed: Vec<Completion>,
    now: u64,
    sticky_drain: bool,
    stats: ChannelStats,
    stats_base: u64,
    /// Per-sub-rank data-bus busy cycles / CAS counts. Observability-only
    /// side counters (not part of [`ChannelStats`], which feeds
    /// `RunReport`): sub-ranked strategies serve narrow lines from a
    /// subset of chips, and these expose that split per sub-rank.
    subrank_busy: Vec<u64>,
    subrank_cas: Vec<u64>,
    power: PowerModel,
    /// Optional protocol auditor; a pure observer of the command stream.
    auditor: Option<Box<ConformanceChecker>>,
    /// Optional shared event-trace ring, dumped when the auditor fires.
    trace: Option<attache_metrics::SharedTraceRing>,
    /// Fault-injection: temporary cap on the read queue's effective
    /// capacity (`None` = full capacity). Timing-only: models a derated
    /// controller front-end that back-pressures reads.
    read_derate: Option<usize>,
    /// Exact minimum of `req.arrival` over `read_q` (`u64::MAX` when
    /// empty), maintained on every push and CAS removal. The scheduler
    /// consults the oldest read's age on every pass (anti-starvation);
    /// this cache answers the common "nobody is starving" case without
    /// the O(queue) age scan.
    read_min_arrival: u64,
    /// Per-(rank, flat-bank) command epoch, bumped on every CAS, ACT,
    /// and PRE that touches the bank. A candidate's [`CandCache`] is
    /// valid while both its bank epoch and rank epoch still match:
    /// between commands to its bank the sub-bank rows and bank-local
    /// timers are frozen, so most failed scheduler passes revalidate
    /// each candidate with two integer compares instead of re-walking
    /// its sub-banks. Indexed `rank * cfg.banks() + flat_bank`.
    bank_epoch: Vec<u32>,
    /// Per-rank refresh epoch, bumped on every REF (and bulk refresh):
    /// a refresh closes all the rank's banks and moves its gate, so it
    /// invalidates every candidate of the rank at once.
    rank_epoch: Vec<u32>,
    /// Scratch for the PRE walk's row-protection table: per
    /// (rank, flat-bank, sub-rank) slot, the minimum arrival over
    /// served-queue requests wanting that sub-bank's *open* row
    /// (`u64::MAX` = none). Built once per PRE walk, making each
    /// protection check O(1) instead of an O(queue) scan.
    protect_min: Vec<u64>,
    /// Per-walk scratch, indexed `(rank << subranks) | mask`: the
    /// refresh-gate-folded max of the rank's data-bus ready times over
    /// the sub-ranks in `mask` (so entry `mask = 0` is the bare gate).
    /// Rank-level timers are frozen for the duration of one scheduler
    /// pass, so filling this once per walk (subset DP: one `max` per
    /// entry) turns every candidate's rank-level term into a single
    /// table lookup instead of a gate load plus a masked sub-rank loop.
    walk_cas: Vec<u64>,
    /// Same layout as [`walk_cas`](Channel::walk_cas) for the ACT path:
    /// gate-folded max of the tRRD/tFAW window terms over `mask`.
    walk_act: Vec<u64>,
    /// Per-rank `refresh_due(now)` for the current walk.
    walk_due: Vec<bool>,
}

impl Channel {
    /// Creates channel `index` of a memory system described by `cfg`.
    pub fn new(index: usize, cfg: DramConfig, power: PowerParams) -> Self {
        Self {
            index,
            cfg,
            mapping: AddressMapping::new(cfg),
            ranks: (0..cfg.ranks).map(|_| Rank::new(&cfg)).collect(),
            read_q: Vec::with_capacity(cfg.read_queue_capacity),
            write_q: Vec::with_capacity(cfg.write_queue_capacity),
            in_flight: Vec::new(),
            completed: Vec::new(),
            now: 0,
            sticky_drain: false,
            stats: ChannelStats::default(),
            stats_base: 0,
            subrank_busy: vec![0; cfg.subranks],
            subrank_cas: vec![0; cfg.subranks],
            power: PowerModel::new(power),
            auditor: conformance_enabled().then(|| Box::new(ConformanceChecker::new(&cfg))),
            trace: None,
            read_derate: None,
            read_min_arrival: u64::MAX,
            bank_epoch: vec![0; cfg.ranks * cfg.banks()],
            rank_epoch: vec![0; cfg.ranks],
            protect_min: vec![u64::MAX; cfg.ranks * cfg.banks() * cfg.subranks],
            walk_cas: vec![0; cfg.ranks << cfg.subranks],
            walk_act: vec![0; cfg.ranks << cfg.subranks],
            walk_due: vec![false; cfg.ranks],
        }
    }

    /// Marks `bank` of `rank` as touched by a command: candidate caches
    /// computed under the old epoch re-walk their sub-banks next pass.
    #[inline]
    fn bump_bank(&mut self, rank: usize, bank: usize) {
        let e = &mut self.bank_epoch[rank * self.cfg.banks() + bank];
        *e = e.wrapping_add(1);
    }

    /// Fault-injection hook: caps (or restores) the read queue's
    /// effective capacity. Affects only future enqueue decisions —
    /// requests already queued are unaffected, so a cap below the current
    /// occupancy simply blocks new reads until the queue drains.
    pub fn set_read_derate(&mut self, cap: Option<usize>) {
        self.read_derate = cap;
    }

    /// Attaches a protocol auditor validating against `timing` — normally
    /// the channel's own timing (zero violations expected), but tests pass
    /// a perturbed reference to prove deliberate violations are caught.
    pub fn attach_auditor(&mut self, timing: Timing) {
        self.auditor = Some(Box::new(ConformanceChecker::with_timing(&self.cfg, timing)));
    }

    /// Audit counters of the attached auditor, if any.
    pub fn conformance_stats(&self) -> Option<ConformanceStats> {
        self.auditor.as_ref().map(|a| a.stats())
    }

    /// Runs one observed command past the auditor.
    ///
    /// # Panics
    ///
    /// Panics on any protocol violation: a command the scheduler issued
    /// that the independent shadow model deems illegal is a simulator bug,
    /// and continuing would produce silently wrong timing.
    fn audit(&mut self, now: u64, rank: usize, cmd: DramCommand) {
        if let Some(a) = self.auditor.as_mut() {
            if let Err(v) = a.observe(now, rank, &cmd) {
                let history = self
                    .trace
                    .as_ref()
                    .map(|r| format!("\n{}", attache_metrics::dump_shared(r)))
                    .unwrap_or_default();
                panic!(
                    "[attache-dram] channel {} rank {rank}: DRAM protocol violation: {v}{history}",
                    self.index
                );
            }
        }
    }

    /// Shares an event-trace ring with this channel; its contents are
    /// appended to the panic message when the protocol auditor fires.
    pub fn set_trace(&mut self, ring: attache_metrics::SharedTraceRing) {
        self.trace = Some(ring);
    }

    /// Per-sub-rank data-bus busy cycles since the last stats reset.
    pub fn subrank_busy(&self) -> &[u64] {
        &self.subrank_busy
    }

    /// Per-sub-rank CAS (read or write burst) counts since the last
    /// stats reset.
    pub fn subrank_cas(&self) -> &[u64] {
        &self.subrank_cas
    }

    /// The current bus cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether a read can be accepted this cycle.
    pub fn can_accept_read(&self) -> bool {
        let cap = match self.read_derate {
            Some(derate) => derate.min(self.cfg.read_queue_capacity),
            None => self.cfg.read_queue_capacity,
        };
        self.read_q.len() < cap
    }

    /// Whether a write can be accepted this cycle.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue_capacity
    }

    /// Queue occupancy `(reads, writes)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Whether [`enqueue`](Channel::enqueue) would succeed for `req` right
    /// now, without mutating anything. This is *not* the same as the queue
    /// having a free slot: reads forward from the write queue and writes
    /// coalesce into it, and both succeed even when the target queue is full.
    pub fn would_accept(&self, req: &MemRequest) -> bool {
        let hits_write_q = self
            .write_q
            .iter()
            .any(|p| p.req.line_addr == req.line_addr);
        match req.kind {
            AccessKind::Read => hits_write_q || self.can_accept_read(),
            AccessKind::Write => hits_write_q || self.can_accept_write(),
        }
    }

    /// Enqueues a request.
    ///
    /// Reads that hit a queued write are forwarded and complete immediately.
    /// Writes to a line already in the write queue coalesce in place.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the corresponding queue has no free slot.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let loc = self.mapping.decompose(req.line_addr);
        debug_assert_eq!(loc.channel, self.index, "request routed to wrong channel");
        match req.kind {
            AccessKind::Read => {
                if self.write_q.iter().any(|p| p.req.line_addr == req.line_addr) {
                    // Forward from the write buffer: data available on chip.
                    self.stats.forwarded_reads += 1;
                    self.completed.push(Completion {
                        request: req,
                        finished_at: self.now + 1,
                    });
                    return Ok(());
                }
                if !self.can_accept_read() {
                    return Err(QueueFull);
                }
                self.read_min_arrival = self.read_min_arrival.min(req.arrival);
                self.read_q.push(Pending {
                    req,
                    loc,
                    needed_act: false,
                    cache: Default::default(),
                });
            }
            AccessKind::Write => {
                if let Some(p) = self
                    .write_q
                    .iter_mut()
                    .find(|p| p.req.line_addr == req.line_addr)
                {
                    p.req = req; // coalesce: latest write wins
                    // The coalesced request may change width, and with
                    // it the sub-bank mask the cache was computed for.
                    p.cache.set(CandCache::default());
                    return Ok(());
                }
                if !self.can_accept_write() {
                    return Err(QueueFull);
                }
                self.write_q.push(Pending {
                    req,
                    loc,
                    needed_act: false,
                    cache: Default::default(),
                });
            }
        }
        Ok(())
    }

    /// Drains completions accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Appends the drained completions to `out` instead of handing over
    /// the buffer: both the channel's accumulator and the caller's
    /// scratch keep their capacity, so the per-tick drain allocates
    /// nothing in steady state.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completed);
    }

    /// Whether no work is pending or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.in_flight.is_empty()
    }

    /// Running statistics.
    pub fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.cycles = self.now - self.stats_base;
        s
    }

    /// Accumulated DRAM energy.
    pub fn energy(&self) -> crate::power::EnergyBreakdown {
        self.power.energy()
    }

    /// Resets statistics and energy after warm-up (state machines keep
    /// their contents).
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
        // Keep `cycles` relative to the reset point.
        self.stats_base = self.now;
        self.subrank_busy.iter_mut().for_each(|c| *c = 0);
        self.subrank_cas.iter_mut().for_each(|c| *c = 0);
        self.power.reset();
    }

    /// Advances one bus cycle. Returns `true` when the cycle changed any
    /// *scheduling* state (refreshed, issued a command, or flipped the
    /// drain mode) — i.e. when a cached
    /// [`next_sched_event`](Channel::next_sched_event) bound must be
    /// discarded. Burst retirement deliberately does **not** count: queues
    /// only shrink at CAS-issue time and all timing registers are written
    /// at issue, so retiring data changes neither command legality nor
    /// enqueue outcomes (retires are tracked separately via
    /// [`next_retire`](Channel::next_retire)).
    pub fn tick(&mut self) -> bool {
        self.tick_inner::<false>().0
    }

    /// Event-engine variant of [`tick`](Channel::tick): identical state
    /// mutations, but when the cycle changes nothing, the second element is
    /// the exact [`next_sched_event`](Channel::next_sched_event) bound —
    /// computed as a side effect of the failed scheduler pass instead of a
    /// second full queue scan. When the first element is `true` the bound
    /// is invalid (the scheduler acted, so state just changed) and `0` is
    /// returned in its place.
    pub fn tick_with_bound(&mut self) -> (bool, u64) {
        self.tick_inner::<true>()
    }

    fn tick_inner<const WANT_BOUND: bool>(&mut self) -> (bool, u64) {
        self.now += 1;
        let now = self.now;

        // Retire finished bursts.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (finish, req, row_hit) = self.in_flight.swap_remove(i);
                self.record_completion(req, finish, row_hit);
            } else {
                i += 1;
            }
        }

        // Background power (one rank per channel in Table II, loop anyway).
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(1, active);
        }

        // Refresh management consumes the command bus when it acts.
        if self.manage_refresh(now) {
            return (true, 0);
        }

        let was = self.sticky_drain;
        let writes = self.drain_writes();
        if writes {
            self.stats.drain_cycles += 1;
        }
        if self.sticky_drain && !was {
            self.stats.drain_episodes += 1;
        }
        let (issued, cand_bound) = if writes || !self.read_q.is_empty() {
            self.issue_from::<WANT_BOUND>(now, writes)
        } else {
            (false, u64::MAX)
        };
        if issued || self.sticky_drain != was {
            return (true, 0);
        }
        if !WANT_BOUND {
            return (false, 0);
        }
        // Assemble the full scheduling bound exactly as `next_sched_event`
        // would compute it post-tick: the candidate terms came from the
        // failed pass above; refresh horizons are merged here. The
        // drain-flip term is vacuous (drain_writes just ran without
        // flipping and queue lengths are frozen until the next event).
        let soon = now + 1;
        let mut horizon = u64::MAX;
        for rank in &self.ranks {
            if rank.refresh_due(now) {
                return (false, soon);
            }
            horizon = horizon.min(rank.next_refresh_due);
        }
        (false, horizon.min(cand_bound))
    }

    /// Advances one bus cycle executing only burst retirement (plus the
    /// background-power and drain-cycle accounting every cycle performs).
    /// Valid only when the caller knows from a cached
    /// [`next_sched_event`](Channel::next_sched_event) bound that no
    /// refresh, command issue, or drain-mode flip can occur this cycle —
    /// then the full [`tick`](Channel::tick) would do exactly this.
    pub fn tick_retire_only(&mut self) {
        debug_assert!(
            self.next_sched_event() > self.now + 1,
            "tick_retire_only would skip a scheduler event"
        );
        self.now += 1;
        let now = self.now;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (finish, req, row_hit) = self.in_flight.swap_remove(i);
                self.record_completion(req, finish, row_hit);
            } else {
                i += 1;
            }
        }
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(1, active);
        }
        if self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            self.stats.drain_cycles += 1;
        }
    }

    /// Fast-forwards an idle channel to `target`, accounting refreshes and
    /// background energy in bulk.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not idle.
    pub fn advance_idle_to(&mut self, target: u64) {
        assert!(self.is_idle(), "advance_idle_to requires an idle channel");
        if target <= self.now {
            return;
        }
        let span = target - self.now;
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            let due = self.ranks[r].next_refresh_due;
            if target >= due {
                let n = (target - due) / t.t_refi + 1;
                self.ranks[r].bulk_refresh(n, &t);
                self.rank_epoch[r] = self.rank_epoch[r].wrapping_add(1);
                for _ in 0..n {
                    self.power.on_refresh();
                }
                self.stats.refreshes += n;
                if let Some(a) = self.auditor.as_mut() {
                    // Mirror bulk_refresh's force_idle horizon: the last
                    // refresh of the batch completes tRFC after it starts.
                    let busy =
                        self.ranks[r].next_refresh_due.saturating_sub(t.t_refi) + t.t_rfc;
                    a.fast_forward_refresh(r, n, busy);
                }
            }
            self.power.on_background(span, false);
        }
        self.now = target;
    }

    /// The earliest future cycle at which [`tick`](Channel::tick) could do
    /// anything other than accrue background power: retire an in-flight
    /// burst, service a refresh, flip the write-drain mode, or issue a
    /// CAS/ACT/PRE for a queued request. The min of
    /// [`next_sched_event`](Channel::next_sched_event) and
    /// [`next_retire`](Channel::next_retire).
    pub fn next_event(&self) -> u64 {
        self.next_sched_event().min(self.next_retire())
    }

    /// The earliest future cycle at which an in-flight burst retires or a
    /// buffered completion (forwarded read) is ready to drain. Unlike the
    /// scheduling bound this needs no scan invalidation: it only ever
    /// changes when a CAS issues (push) or a burst retires (pop), both of
    /// which happen on executed ticks.
    pub fn next_retire(&self) -> u64 {
        // Forwarded reads buffer a completion for the next tick.
        if !self.completed.is_empty() {
            return self.now + 1;
        }
        let mut horizon = u64::MAX;
        for &(finish, ..) in &self.in_flight {
            horizon = horizon.min(finish);
        }
        horizon.max(self.now + 1)
    }

    /// The earliest future cycle at which the *scheduler* could act:
    /// service a refresh, flip the write-drain mode, or issue a CAS/ACT/PRE
    /// for a queued request. Burst retirement is deliberately excluded
    /// (see [`next_retire`](Channel::next_retire)); a cached value of this
    /// bound stays valid across retire-only cycles and is invalidated only
    /// by [`tick`](Channel::tick) returning `true` or by an enqueue.
    ///
    /// The contract is one-sided: the returned cycle may be *earlier* than
    /// the first real event (the caller just ticks and re-asks, degrading
    /// toward the per-cycle engine), but it must never be later — every
    /// cycle strictly between `now` and the returned value must be a no-op
    /// tick. All scheduler gates are of the form `now >= X` over state that
    /// is frozen while no command issues, so the earliest legal issue cycle
    /// for each queued request is an exact `max` of its gates.
    pub fn next_sched_event(&self) -> u64 {
        let now = self.now;
        let soon = now + 1;
        let mut horizon = u64::MAX;
        for rank in &self.ranks {
            // A due refresh precharges/refreshes on the command bus right
            // away; don't model its sub-steps, just fall back to ticking.
            if rank.refresh_due(now) {
                return soon;
            }
            horizon = horizon.min(rank.next_refresh_due);
        }
        // Never skip across a write-drain mode transition: `issue` mutates
        // `sticky_drain` and counts episodes there. Queue lengths are frozen
        // during a no-op span, so the next tick's decision is computable.
        let next_sticky = if self.sticky_drain {
            self.write_q.len() > self.cfg.write_low_watermark
        } else {
            self.write_q.len() >= self.cfg.write_high_watermark
        };
        if next_sticky != self.sticky_drain {
            return soon;
        }
        let writes = next_sticky || (self.read_q.is_empty() && !self.write_q.is_empty());
        let q = if writes { &self.write_q } else { &self.read_q };
        if q.is_empty() {
            return horizon;
        }
        // Anti-starvation mirror of `issue_from`: once the oldest read
        // crosses STARVATION_AGE it is served exclusively, so the crossing
        // itself is an event, and past it only that read's gates matter.
        let mut starving = None;
        if !writes && !self.read_q.is_empty() {
            if now.saturating_sub(self.read_min_arrival) > STARVATION_AGE {
                starving = self.starving_read(now);
            } else {
                horizon = horizon.min(self.read_min_arrival + STARVATION_AGE + 1);
            }
        }
        let candidates = match starving {
            Some(i) => i..i + 1,
            None => 0..q.len(),
        };
        for i in candidates {
            let ready = self.candidate_ready_at(&q[i], writes, starving.is_some());
            // A gate already satisfied means "issuable next tick" (this
            // tick's single command slot may have gone to someone else).
            horizon = horizon.min(ready.max(soon));
            if horizon == soon {
                break;
            }
        }
        horizon
    }

    /// Tightens a still-valid scheduling bound after a successful
    /// [`enqueue`](Channel::enqueue) of `req`, without rescanning the
    /// queues. An enqueue can only *add* scheduling opportunities (the new
    /// candidate itself, a drain-mode flip it triggers) or remove them
    /// (extra row protection, a served-queue switch) — and removed
    /// opportunities merely leave the old bound early, which the one-sided
    /// contract allows. So the exact update is
    /// `min(old, flip term, new candidate's ready, starvation crossing)`.
    pub fn bound_with_enqueued(&self, old: u64, req: &MemRequest) -> u64 {
        let now = self.now;
        let soon = now + 1;
        // Did this enqueue arm a drain-mode flip for the next tick?
        let next_sticky = if self.sticky_drain {
            self.write_q.len() > self.cfg.write_low_watermark
        } else {
            self.write_q.len() >= self.cfg.write_high_watermark
        };
        if next_sticky != self.sticky_drain {
            return soon;
        }
        let writes = next_sticky || (self.read_q.is_empty() && !self.write_q.is_empty());
        let q = match req.kind {
            AccessKind::Write => &self.write_q,
            AccessKind::Read => &self.read_q,
        };
        // A forwarded read touches no queue (its completion is tracked by
        // `next_retire`), and a request whose queue is not being served
        // adds no earlier opportunity: it becomes servable only after an
        // issue or flip, both of which re-derive the bound anyway.
        let served = (req.kind == AccessKind::Write) == writes;
        if !served {
            return old;
        }
        let Some(p) = q.iter().find(|p| p.req.id == req.id) else {
            return old;
        };
        let starving = req.kind == AccessKind::Read
            && now.saturating_sub(req.arrival) > STARVATION_AGE;
        let mut bound = old.min(self.candidate_ready_at(p, writes, starving).max(soon));
        if req.kind == AccessKind::Read {
            // The new read may one day cross the anti-starvation age and
            // grab exclusive service — that crossing is an event.
            bound = bound.min((req.arrival + STARVATION_AGE + 1).max(soon));
        }
        bound
    }

    /// The earliest cycle at which any of the three scheduler passes could
    /// issue a command for `p`, or `u64::MAX` when `p` can make no progress
    /// until some other event changes the machine state.
    fn candidate_ready_at(&self, p: &Pending, writes: bool, starving: bool) -> u64 {
        let t = self.cfg.timing;
        let rank = &self.ranks[p.loc.rank];
        let bank = p.loc.flat_bank(&self.cfg);
        let mask = p.req.width.mask();
        // Every pass is blocked while the rank refreshes.
        let gate = rank.refresh_until;
        let mut ready = u64::MAX;

        // Pass 1 (CAS): legal once every masked sub-bank has the row open
        // and the column/bus timers have expired.
        let mut all_open = true;
        let mut cas = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if !sb.row_open(p.loc.row) {
                all_open = false;
                break;
            }
            cas = cas.max(if writes {
                sb.write_ready_at().max(rank.bus_write_ready_at(s))
            } else {
                sb.read_ready_at().max(rank.bus_read_ready_at(s))
            });
        }
        if all_open {
            ready = ready.min(cas);
        }

        // Pass 2 (ACT): legal once every masked sub-bank that lacks the row
        // is idle and clears tRC/tRP/tRRD/tFAW. A sub-bank holding a
        // *different* row blocks the ACT until a PRE (pass 3) closes it.
        let mut any_needed = false;
        let mut blocked = false;
        let mut act = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if sb.row_open(p.loc.row) {
                continue;
            }
            any_needed = true;
            if matches!(sb.state(), crate::bank::RowState::Active { .. }) {
                blocked = true;
                break;
            }
            act = act
                .max(sb.activate_ready_at())
                .max(rank.act_window_ready_at(s, &t));
        }
        if any_needed && !blocked {
            ready = ready.min(act);
        }

        // Pass 3 (PRE): legal once every conflicting masked sub-bank clears
        // tRAS/tRTP/tWR. Row protection (`unprotected_mask`) depends only on
        // queue contents, which are frozen during a no-op span, so a fully
        // protected conflict contributes no bound — it unblocks via the
        // protector's own CAS, which is bounded above.
        let mut conflict_mask = 0u8;
        let mut pre = gate;
        for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
            let sb = rank.sub_bank(bank, s);
            if let crate::bank::RowState::Active { row } = sb.state() {
                if row != p.loc.row {
                    conflict_mask |= 1 << s;
                    pre = pre.max(sb.precharge_ready_at());
                }
            }
        }
        if conflict_mask != 0
            && (starving
                || self.unprotected_mask(p.loc.rank, bank, conflict_mask, writes, p.req.arrival)
                    != 0)
        {
            ready = ready.min(pre);
        }

        ready
    }

    /// Advances `span` cycles in bulk, replaying exactly the side effects
    /// the per-cycle engine would have produced over a span of no-op ticks:
    /// background power per rank and write-drain cycle accounting. The
    /// caller must guarantee (via [`next_event`](Channel::next_event)) that
    /// no command, completion, refresh, or drain-mode flip falls inside the
    /// span.
    pub fn advance_noop(&mut self, span: u64) {
        debug_assert!(
            self.next_event() > self.now + span,
            "advance_noop would skip over a scheduler event"
        );
        if span == 0 {
            return;
        }
        for r in 0..self.ranks.len() {
            let active = self.ranks[r].open_sub_banks > 0;
            self.power.on_background(span, active);
        }
        if self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty()) {
            self.stats.drain_cycles += span;
        }
        self.now += span;
    }

    fn record_completion(&mut self, req: MemRequest, finish: u64, row_hit: bool) {
        use crate::request::Origin;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        match (req.kind, req.origin) {
            (AccessKind::Read, Origin::Demand { .. }) => self.stats.demand_reads += 1,
            (AccessKind::Read, Origin::Corrective { .. }) => self.stats.corrective_reads += 1,
            (AccessKind::Read, Origin::MetadataInstall) => self.stats.metadata_reads += 1,
            (AccessKind::Read, Origin::ReplacementArea) => self.stats.replacement_area_reads += 1,
            (AccessKind::Read, Origin::Scrub) => self.stats.scrub_reads += 1,
            (AccessKind::Read, _) => self.stats.demand_reads += 1,
            (AccessKind::Write, Origin::MetadataWriteback) => self.stats.metadata_writes += 1,
            (AccessKind::Write, Origin::ReplacementArea) => self.stats.replacement_area_writes += 1,
            (AccessKind::Write, _) => self.stats.data_writes += 1,
        }
        if req.kind == AccessKind::Read {
            self.stats.read_latency_sum += finish - req.arrival;
            self.stats.read_latency_count += 1;
        }
        self.completed.push(Completion {
            request: req,
            finished_at: finish,
        });
    }

    /// Returns `true` when the command bus was used for refresh work.
    fn manage_refresh(&mut self, now: u64) -> bool {
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            if self.ranks[r].refresh_due(now) {
                if self.ranks[r].any_bank_open() {
                    if let Some((bank, mask)) = self.ranks[r].refresh_precharge_candidate(now) {
                        self.ranks[r].precharge(now, bank, mask, &t);
                        self.bump_bank(r, bank);
                        self.audit(now, r, DramCommand::Precharge { bank, mask });
                        self.stats.precharges += 1;
                        return true;
                    }
                    // Wait for precharge eligibility.
                    return false;
                }
                self.ranks[r].refresh(now, &t);
                self.rank_epoch[r] = self.rank_epoch[r].wrapping_add(1);
                self.audit(now, r, DramCommand::Refresh);
                self.power.on_refresh();
                self.stats.refreshes += 1;
                return true;
            }
        }
        false
    }

    fn drain_writes(&mut self) -> bool {
        let hi = self.cfg.write_high_watermark;
        let lo = self.cfg.write_low_watermark;
        if self.sticky_drain {
            if self.write_q.len() <= lo {
                self.sticky_drain = false;
            }
        } else if self.write_q.len() >= hi {
            self.sticky_drain = true;
        }
        self.sticky_drain || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    /// The index the anti-starvation rule serves exclusively, if any: the
    /// oldest read (ties broken exactly as `min_by_key`, i.e. the last
    /// minimal element) once its age exceeds [`STARVATION_AGE`]. The cached
    /// [`read_min_arrival`](Channel::read_min_arrival) answers the common
    /// "nobody is old enough" case in O(1); the index scan runs only once
    /// the age threshold has actually been crossed.
    fn starving_read(&self, now: u64) -> Option<usize> {
        if now.saturating_sub(self.read_min_arrival) <= STARVATION_AGE {
            return None;
        }
        self.read_q
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.req.arrival)
            .map(|(i, _)| i)
    }

    /// Filters a precharge mask down to sub-banks whose open row has no
    /// *older* queued requests left. Open rows with pending work are kept
    /// open (they will be CAS-ready soon — closing them thrashes), but the
    /// protection is age-relative: once the conflicting request is the
    /// oldest contender for the row, it may close it. This is the classic
    /// FR-FCFS fallback to age order, and it matters when half- and
    /// full-width streams share a bank.
    fn unprotected_mask(&self, rank: usize, bank: usize, mask: u8, writes: bool, age: u64) -> u8 {
        let mut out = mask;
        for s in 0..self.cfg.subranks {
            if mask & (1 << s) == 0 {
                continue;
            }
            if let crate::bank::RowState::Active { row } = self.ranks[rank].sub_bank(bank, s).state()
            {
                let wanted = |p: &&Pending| {
                    p.loc.rank == rank
                        && p.loc.flat_bank(&self.cfg) == bank
                        && p.loc.row == row
                        && p.req.width.mask() & (1 << s) != 0
                        && p.req.arrival <= age
                };
                // Only the queue currently being served can protect a
                // row: protecting across queues deadlocks (a draining
                // write would wait forever on a read that cannot issue
                // during the drain).
                let pending = if writes {
                    self.write_q.iter().find(wanted).is_some()
                } else {
                    self.read_q.iter().find(wanted).is_some()
                };
                if pending {
                    out &= !(1 << s);
                }
            }
        }
        out
    }

    /// One fused FR-FCFS scheduler pass: a CAS for the first column-ready
    /// candidate, else an ACT for the first activatable one, else a PRE for
    /// the first unprotected row conflict — the same priority order and the
    /// same queue order as the three separate scans this replaces, checked
    /// against the exact `can_read`/`can_write`/`can_activate`/
    /// `precharge_mask` legality conditions via their `*_ready_at` duals
    /// (`can_x(now) ⟺ x_ready_at() <= now` under each pass's structural
    /// preconditions).
    ///
    /// With `WANT_BOUND`, the same walk also accumulates the per-candidate
    /// scheduling bound with [`candidate_ready_at`](Channel::candidate_ready_at)
    /// semantics plus the anti-starvation crossing term, so a failed
    /// event-engine tick produces its next bound as a side effect instead
    /// of paying `next_sched_event`'s second full scan. The returned bound
    /// is meaningful only when nothing issued (the first element is
    /// `false`); after an issue the caller discards it.
    fn issue_from<const WANT_BOUND: bool>(&mut self, now: u64, writes: bool) -> (bool, u64) {
        let t = self.cfg.timing;
        let soon = now + 1;

        // Anti-starvation: when the oldest *read* is too old, serve it
        // exclusively. Writes are posted — nobody waits on them — so they
        // are always drained row-hit-first.
        let starving: Option<usize> = if writes { None } else { self.starving_read(now) };

        let mut bound = u64::MAX;
        if WANT_BOUND && !writes && starving.is_none() && !self.read_q.is_empty() {
            // The oldest read crossing STARVATION_AGE is itself an event.
            bound = self.read_min_arrival + STARVATION_AGE + 1;
        }

        // Hoist the rank-level walk terms: refresh gate/due, data-bus
        // timers, and the tRRD/tFAW window only move on commands and
        // refreshes, never mid-walk, so they are computed once per pass
        // into the subset-max tables instead of once per candidate. The
        // DP fills entry `m` from `m` with its lowest bit cleared, one
        // `max` per entry; entry 0 carries the bare refresh gate, which
        // every non-empty mask inherits.
        let subranks = self.cfg.subranks;
        for r in 0..self.ranks.len() {
            let rank = &self.ranks[r];
            let base = r << subranks;
            self.walk_due[r] = rank.refresh_due(now);
            let gate = rank.refresh_until;
            self.walk_cas[base] = gate;
            self.walk_act[base] = gate;
            for m in 1usize..1 << subranks {
                let s = m.trailing_zeros() as usize;
                let rest = base + (m & (m - 1));
                self.walk_cas[base + m] = self.walk_cas[rest].max(if writes {
                    rank.bus_write_ready_at(s)
                } else {
                    rank.bus_read_ready_at(s)
                });
                self.walk_act[base + m] = self.walk_act[rest].max(rank.act_window_ready_at(s, &t));
            }
        }

        // Main walk: CAS and ACT legality (and, with WANT_BOUND, their
        // ready-at bound terms) in one pass. A ready CAS wins outright, so
        // the walk stops there; an ACT candidate is remembered but the CAS
        // search continues across the rest of the queue.
        let (cas_idx, act_idx, saw_conflict) = {
            let q = if writes { &self.write_q } else { &self.read_q };
            let candidates = match starving {
                Some(i) => i..i + 1,
                None => 0..q.len(),
            };
            let mut cas_idx = None;
            let mut act_idx = None;
            let mut saw_conflict = false;
            let banks = self.cfg.banks();
            for i in candidates {
                let p = &q[i];
                // Epoch-validated candidate cache: the bank-local part
                // of the walk (row states, bank timers) is frozen
                // between commands to this bank and refreshes of this
                // rank, so most candidates revalidate with two compares
                // against the cache's own identity snapshot — the fast
                // path never touches `loc`/`req` at all.
                let mut c = p.cache.get();
                if c.mask == 0 {
                    // First look at this candidate since enqueue (or
                    // since a coalesce invalidated it).
                    let rank_idx = p.loc.rank;
                    let bank = p.loc.flat_bank(&self.cfg);
                    c = CandCache::compute(
                        &self.ranks[rank_idx],
                        rank_idx,
                        bank,
                        p,
                        writes,
                        self.cfg.subranks,
                        (self.bank_epoch[rank_idx * banks + bank], self.rank_epoch[rank_idx]),
                    );
                    p.cache.set(c);
                } else {
                    let be = self.bank_epoch[c.rank as usize * banks + c.flat_bank as usize];
                    let re = self.rank_epoch[c.rank as usize];
                    if c.bank_epoch != be || c.rank_epoch != re {
                        c = CandCache::compute(
                            &self.ranks[c.rank as usize],
                            c.rank as usize,
                            c.flat_bank as usize,
                            p,
                            writes,
                            self.cfg.subranks,
                            (be, re),
                        );
                        p.cache.set(c);
                    }
                }
                let base = (c.rank as usize) << subranks;
                if c.act_mask | c.conflict_mask == 0 {
                    // All masked sub-banks open: the CAS pass. The
                    // rank-level gate and data-bus terms come from the
                    // per-walk subset-max table — one lookup.
                    let cas = c.cas_bank.max(self.walk_cas[base + c.mask as usize]);
                    if !self.walk_due[c.rank as usize] && cas <= now {
                        cas_idx = Some(i);
                        break;
                    }
                    if WANT_BOUND {
                        bound = bound.min(cas.max(soon));
                    }
                } else if c.conflict_mask == 0 {
                    // Idle sub-banks need an ACT; the gate-folded
                    // tRRD/tFAW window over exactly the idle sub-ranks is
                    // the table entry for `act_mask`.
                    let act = c.act_bank.max(self.walk_act[base + c.act_mask as usize]);
                    if act_idx.is_none() && !self.walk_due[c.rank as usize] && act <= now {
                        act_idx = Some(i);
                    }
                    if WANT_BOUND {
                        bound = bound.min(act.max(soon));
                    }
                } else {
                    // A different row is open somewhere: ACT is blocked
                    // until a PRE closes it (the pre walk below).
                    saw_conflict = true;
                }
            }
            (cas_idx, act_idx, saw_conflict)
        };

        if let Some(i) = cas_idx {
            let p = if writes {
                self.write_q.remove(i)
            } else {
                let p = self.read_q.remove(i);
                if p.req.arrival == self.read_min_arrival {
                    // Served the (an) oldest read: recompute the cached
                    // minimum for the anti-starvation fast path.
                    self.read_min_arrival = self
                        .read_q
                        .iter()
                        .map(|p| p.req.arrival)
                        .min()
                        .unwrap_or(u64::MAX);
                }
                p
            };
            if trace_enabled() && self.index == 0 {
                eprintln!("{} {} bank={} row={} mask={:02b} id={}",
                    now, if writes {"WR "} else {"RD "},
                    p.loc.flat_bank(&self.cfg), p.loc.row, p.req.width.mask(), p.req.id);
            }
            let bank = p.loc.flat_bank(&self.cfg);
            let mask = p.req.width.mask();
            let chips = p.req.width.chips();
            let bytes = p.req.width.bytes();
            let rank = &mut self.ranks[p.loc.rank];
            let finish = if writes {
                rank.write(now, bank, mask, &t);
                self.power.on_write(chips, bytes);
                now + t.t_cwl + t.t_burst
            } else {
                rank.read(now, bank, mask, &t);
                self.power.on_read(chips, bytes);
                now + t.t_cas + t.t_burst
            };
            self.bump_bank(p.loc.rank, bank);
            let cmd = if writes {
                DramCommand::Write { bank, row: p.loc.row, mask }
            } else {
                DramCommand::Read { bank, row: p.loc.row, mask }
            };
            self.audit(now, p.loc.rank, cmd);
            self.stats.bytes += bytes;
            self.stats.busy_bus_cycles += t.t_burst * mask.count_ones() as u64;
            for s in (0..self.cfg.subranks).filter(|s| mask & (1 << *s) != 0) {
                self.subrank_busy[s] += t.t_burst;
                self.subrank_cas[s] += 1;
            }
            self.in_flight.push((finish, p.req, !p.needed_act));
            return (true, 0);
        }

        if let Some(i) = act_idx {
            let (loc, mask) = {
                let q = if writes { &mut self.write_q } else { &mut self.read_q };
                q[i].needed_act = true;
                (q[i].loc, q[i].req.width.mask())
            };
            let bank = loc.flat_bank(&self.cfg);
            // Chips engaged: 4 per sub-rank that actually activates.
            if trace_enabled() && self.index == 0 {
                eprintln!("{} ACT bank={} row={} mask={:02b}", now, bank, loc.row, mask);
            }
            let rank = &mut self.ranks[loc.rank];
            let before = rank.open_sub_banks;
            rank.activate(now, bank, loc.row, mask, &t);
            let opened = (rank.open_sub_banks - before) as u32;
            self.bump_bank(loc.rank, bank);
            self.audit(now, loc.rank, DramCommand::Activate { bank, row: loc.row, mask });
            self.power.on_activate(opened * 4);
            self.stats.activates += 1;
            return (true, 0);
        }

        // PRE walk: for the oldest request blocked by a row conflict — but
        // never close a row that still has queued requests (they will become
        // CAS-ready soon; closing them causes open-row thrash when half- and
        // full-width streams share a bank). Runs only when the main walk saw
        // a conflict, because only conflicted candidates can contribute a
        // PRE or a pre-bound term.
        let pre = if saw_conflict {
            // Row-protection table: one pass over the served queue makes
            // each candidate's protection check O(1). Slot (rank, bank, s)
            // holds the minimum arrival over requests wanting that
            // sub-bank's currently *open* row; a conflict sub-bank is
            // protected from candidate `p` exactly when a wanting request
            // no younger than `p` exists — i.e. slot min <= p's arrival.
            // (Starving reads bypass protection and skip the build.)
            if starving.is_none() {
                let banks = self.cfg.banks();
                let subranks = self.cfg.subranks;
                let protect = &mut self.protect_min;
                protect.iter_mut().for_each(|m| *m = u64::MAX);
                let q = if writes { &self.write_q } else { &self.read_q };
                for p in q {
                    // The main walk refreshed every entry's cache this
                    // pass (no starving read, so the full queue was
                    // scanned) and issued nothing since — the masked
                    // sub-banks holding this entry's row open are exactly
                    // those in neither the act nor the conflict set.
                    let c = p.cache.get();
                    let open = c.mask & !(c.act_mask | c.conflict_mask);
                    for s in (0..subranks).filter(|s| open & (1 << *s) != 0) {
                        let slot = &mut protect
                            [(c.rank as usize * banks + c.flat_bank as usize) * subranks + s];
                        *slot = (*slot).min(p.req.arrival);
                    }
                }
            }
            let q = if writes { &self.write_q } else { &self.read_q };
            let candidates = match starving {
                Some(i) => i..i + 1,
                None => 0..q.len(),
            };
            let banks = self.cfg.banks();
            let subranks = self.cfg.subranks;
            let mut found = None;
            for i in candidates {
                let p = &q[i];
                // The main walk above refreshed every scanned candidate's
                // cache this pass and issued nothing since, so the cached
                // conflict set is current.
                let c = p.cache.get();
                if c.conflict_mask == 0 {
                    continue;
                }
                let bank = c.flat_bank as usize;
                // Entry 0 of the walk table is the bare refresh gate; the
                // table is still fresh here (the PRE walk runs in the
                // same pass as the fill, with no command issued between).
                let pre_ready = self.walk_cas[(c.rank as usize) << subranks].max(c.pre_bank);
                // `pre_ready <= now` implies the rank is not refreshing
                // (the gate term) and every conflicting sub-bank clears
                // tRAS/tRTP/tWR — exactly `precharge_mask` returning `Some`.
                let ready_now = !self.walk_due[c.rank as usize] && pre_ready <= now;
                if !WANT_BOUND && !ready_now {
                    continue;
                }
                // The starving-read override bypasses row protection: an
                // over-age read may close any row it conflicts with.
                let eff = if starving.is_some() {
                    c.conflict_mask
                } else {
                    let mut eff = c.conflict_mask;
                    for s in (0..subranks).filter(|s| c.conflict_mask & (1 << *s) != 0) {
                        if self.protect_min[(c.rank as usize * banks + bank) * subranks + s]
                            <= p.req.arrival
                        {
                            eff &= !(1 << s);
                        }
                    }
                    eff
                };
                if eff == 0 {
                    continue;
                }
                if WANT_BOUND {
                    bound = bound.min(pre_ready.max(soon));
                }
                if ready_now {
                    found = Some((i, bank, c.rank as usize, eff));
                    break;
                }
            }
            found
        } else {
            None
        };

        if let Some((i, bank, rank_idx, mask)) = pre {
            if trace_enabled() && self.index == 0 {
                let q = if writes { &self.write_q } else { &self.read_q };
                eprintln!("{} PRE bank={} mask={:02b} for-row={} q={}", now, bank, mask, q[i].loc.row, q.len());
            }
            {
                let q = if writes { &mut self.write_q } else { &mut self.read_q };
                q[i].needed_act = true;
            }
            self.ranks[rank_idx].precharge(now, bank, mask, &t);
            self.bump_bank(rank_idx, bank);
            self.audit(now, rank_idx, DramCommand::Precharge { bank, mask });
            self.stats.precharges += 1;
            return (true, 0);
        }
        (false, bound)
    }
}
