//! Channel-sharded execution of the cycle-level memory model.
//!
//! [`ShardedMemory`] partitions a [`MemorySystem`](crate::MemorySystem)'s
//! channels across worker threads — shard `s` of `n` owns every channel
//! `c` with `c % n == s` — while presenting the exact same
//! [`MemoryBackend`] face to the simulator. Shard 0 is hosted inline on
//! the calling thread; shards `1..n` each run on their own hand-rolled
//! worker thread (plain `std::thread` + `std::sync::mpsc`, no crates.io
//! dependencies) that owns its channels outright, so no locking guards
//! any model state.
//!
//! # The horizon barrier
//!
//! Channels never interact with each other: within one bus cycle each
//! channel's scheduler, retires and enqueue outcomes depend only on its
//! own queues and banks. All cross-channel coupling flows through the
//! simulator frontend (completions out, requests in), which already
//! serializes at tick granularity. The facade therefore advances shards
//! to a shared **synchronization horizon** — the next executed tick —
//! and rendezvous with every active shard before any completion is
//! observed: commands fan out, one reply per shard fans in, and the
//! merged completion stream is re-assembled in canonical **global
//! channel-index order**, exactly the order the serial model drains.
//!
//! Quiescent shards are not woken at all: each reply carries the shard's
//! event bound (the same per-channel
//! `bound == 0 ? now + 1 : min(bound, next_retire)` formula the serial
//! [`next_event_cached`](crate::MemorySystem::next_event_cached) uses),
//! and while that bound lies beyond the horizon the facade merely
//! accrues an owed `advance_noop` span, flushed with the next command.
//! That is *provably* the serial behavior: a shard bound beyond `now + 1`
//! means every owned channel takes the `advance_noop(1)` arm of
//! [`tick_event`](crate::MemorySystem::tick_event), and
//! `Channel::advance_noop` is span-additive.
//!
//! # Determinism argument (the short form)
//!
//! * **Completions** are tagged with their global channel index and
//!   emitted channel-major — byte-identical to the serial drain order.
//! * **Stats and energy** are aggregated in global channel-index order
//!   (energy sums `f64`s, so order is part of bit-identity).
//! * **Enqueues** are routed by the facade's own address mapping and
//!   applied after flushing the owed no-op span, so the owning channel
//!   observes them at the same logical cycle as the serial model.
//! * **`mutation_gen`** is change-equivalent rather than value-equal: a
//!   shard reports *whether* its scheduler acted and the facade bumps
//!   once per mutating reply. Callers only compare generations for
//!   equality across ticks, and a generation changes here if and only
//!   if it changes serially.
//! * **Derate windows** are owned by the facade; set/clear commands are
//!   clock-independent (they gate only future enqueue outcomes), so
//!   deferred shards receive them eagerly without a flush.
//! * **Trace rings** are shared (`Arc<Mutex<_>>`): cross-shard event
//!   interleaving in the ring is the one thing that may vary between
//!   runs. The ring is a failure-context observer — `RunReport`s are
//!   unaffected.
//!
//! Worker panics (e.g. a conformance auditor firing) are re-raised on
//! the facade thread with their original payload via
//! [`std::panic::resume_unwind`], so typed panic payloads survive the
//! thread hop.

use std::cell::RefCell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::backend::{BackendKind, MemoryBackend};
use crate::channel::{Channel, ChannelStats, QueueFull};
use crate::config::{AddressMapping, DramConfig, Timing};
use crate::conformance::ConformanceStats;
use crate::power::{EnergyBreakdown, PowerParams};
use crate::request::{AccessKind, Completion, MemRequest};

/// Which tick flavor an `Advance` command executes.
#[derive(Debug, Clone, Copy)]
enum TickKind {
    /// Full per-cycle tick ([`Channel::tick`]), the cycle engine's path.
    Cycle,
    /// Bound-gated tick (the serial `tick_event` per-channel logic).
    Event,
}

/// A contiguous group of channels owned by one shard, together with the
/// per-channel cached scheduling bounds. The facade's inline shard and
/// every worker run this same code, so the per-channel logic cannot
/// drift between the local and remote paths.
#[derive(Debug)]
struct ChannelGroup {
    channels: Vec<Channel>,
    /// Global channel index of each entry in `channels`.
    global: Vec<usize>,
    /// Cached `Channel::next_sched_event` bounds (`0` = unknown), the
    /// per-shard slice of the serial model's `sched_bounds`.
    bounds: Vec<u64>,
}

impl ChannelGroup {
    fn new(channels: Vec<Channel>, global: Vec<usize>) -> Self {
        let n = channels.len();
        Self {
            channels,
            global,
            bounds: vec![0; n],
        }
    }

    /// One full cycle on every owned channel (cycle-engine path; bounds
    /// untouched, exactly like the serial `MemorySystem::tick`).
    fn tick(&mut self) {
        for ch in &mut self.channels {
            ch.tick();
        }
    }

    /// One bound-gated cycle on every owned channel — the serial
    /// `tick_event` body restricted to this shard's channels. Returns
    /// whether any scheduler acted (the shard-level mutation flag).
    fn tick_event(&mut self) -> bool {
        let mut mutated = false;
        for (ch, bound) in self.channels.iter_mut().zip(&mut self.bounds) {
            let soon = ch.now() + 1;
            if *bound > soon {
                if ch.next_retire() <= soon {
                    ch.tick_retire_only();
                } else {
                    ch.advance_noop(1);
                }
            } else {
                let (changed, b) = ch.tick_with_bound();
                if changed {
                    *bound = 0;
                    mutated = true;
                } else {
                    *bound = b;
                }
            }
        }
        mutated
    }

    /// Serial enqueue restricted to one owned channel: on acceptance the
    /// cached bound is tightened in O(1), and the caller learns the
    /// request was accepted (a mutation).
    fn enqueue(&mut self, local: usize, req: MemRequest) -> (Result<(), QueueFull>, bool) {
        let r = self.channels[local].enqueue(req);
        if r.is_ok() {
            let b = self.bounds[local];
            if b != 0 {
                self.bounds[local] = self.channels[local].bound_with_enqueued(b, &req);
            }
        }
        let accepted = r.is_ok();
        (r, accepted)
    }

    fn advance_noop(&mut self, span: u64) {
        for ch in &mut self.channels {
            ch.advance_noop(span);
        }
    }

    /// The shard-local event bound: the serial `next_event_cached`
    /// formula restricted to the owned channels. Absolute, so it stays
    /// valid for as long as the shard is quiescent.
    fn min_bound(&self) -> u64 {
        let mut min = u64::MAX;
        for (ch, bound) in self.channels.iter().zip(&self.bounds) {
            let b = if *bound == 0 {
                ch.now() + 1
            } else {
                (*bound).min(ch.next_retire())
            };
            min = min.min(b);
        }
        min
    }

    /// Drains owned channels' completions tagged with their global
    /// channel index (only non-empty channels appear).
    fn drain_tagged(&mut self) -> Vec<(usize, Vec<Completion>)> {
        let mut out = Vec::new();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let mut buf = Vec::new();
            ch.drain_completions_into(&mut buf);
            if !buf.is_empty() {
                out.push((self.global[i], buf));
            }
        }
        out
    }
}

/// A command from the facade to a shard worker. Every command first
/// flushes the owed no-op span (`noop`), then executes `op`; exactly one
/// [`Reply`] comes back per command.
#[derive(Debug)]
struct Cmd {
    noop: u64,
    op: Op,
}

#[derive(Debug)]
enum Op {
    /// Flush only (`tick: None`) or flush-then-tick; the reply carries
    /// the tick's completions.
    Advance { tick: Option<TickKind> },
    /// Enqueue `req` on the `local`-indexed owned channel.
    Enqueue { local: usize, req: MemRequest },
    /// `advance_idle_to(target)` on every owned channel.
    AdvanceIdleTo(u64),
    /// Set (`Some`) or clear (`None`) the read derate cap.
    SetDerate(Option<usize>),
    /// Share the event-trace ring with every owned channel.
    SetTrace(attache_metrics::SharedTraceRing),
    /// Attach protocol auditors validating against `Timing`.
    EnableConformance(Timing),
    /// Reset statistics and energy on every owned channel.
    ResetStats,
    Query(Query),
    Shutdown,
    /// Chaos hook: panic on the worker thread with the given message
    /// before any reply is sent, exercising the facade's hung-worker
    /// path end-to-end (see [`ShardedMemory::chaos_panic`]).
    ChaosPanic(String),
}

#[derive(Debug, Clone, Copy)]
enum Query {
    Stats,
    Energy,
    QueueDepths,
    Subrank,
    IsIdle,
    NextEvent,
    Conformance,
    CanAccept { local: usize, kind: AccessKind },
}

/// One reply per command: the shard's fresh event bound, whether the
/// command mutated queue/bank state, and the operation's payload.
#[derive(Debug)]
struct Reply {
    min_bound: u64,
    mutated: bool,
    payload: Payload,
}

#[derive(Debug)]
enum Payload {
    None,
    Completions(Vec<(usize, Vec<Completion>)>),
    Enqueue(Result<(), QueueFull>),
    Stats(Vec<ChannelStats>),
    Energy(Vec<EnergyBreakdown>),
    Depths(Vec<(usize, usize)>),
    Subrank(Vec<(Vec<u64>, Vec<u64>)>),
    Bool(bool),
    U64(u64),
    Conformance(Vec<Option<ConformanceStats>>),
}

fn worker_loop(mut group: ChannelGroup, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    while let Ok(cmd) = rx.recv() {
        if cmd.noop > 0 {
            group.advance_noop(cmd.noop);
        }
        let mut mutated = false;
        let payload = match cmd.op {
            Op::Shutdown => return,
            Op::ChaosPanic(msg) => panic!("{msg}"),
            Op::Advance { tick } => {
                match tick {
                    Some(TickKind::Cycle) => group.tick(),
                    Some(TickKind::Event) => mutated = group.tick_event(),
                    None => {}
                }
                Payload::Completions(group.drain_tagged())
            }
            Op::Enqueue { local, req } => {
                let (r, accepted) = group.enqueue(local, req);
                mutated = accepted;
                Payload::Enqueue(r)
            }
            Op::AdvanceIdleTo(target) => {
                for ch in &mut group.channels {
                    ch.advance_idle_to(target);
                }
                Payload::None
            }
            Op::SetDerate(cap) => {
                for ch in &mut group.channels {
                    ch.set_read_derate(cap);
                }
                Payload::None
            }
            Op::SetTrace(ring) => {
                for ch in &mut group.channels {
                    ch.set_trace(ring.clone());
                }
                Payload::None
            }
            Op::EnableConformance(timing) => {
                for ch in &mut group.channels {
                    ch.attach_auditor(timing);
                }
                Payload::None
            }
            Op::ResetStats => {
                for ch in &mut group.channels {
                    ch.reset_stats();
                }
                Payload::None
            }
            Op::Query(q) => match q {
                Query::Stats => Payload::Stats(group.channels.iter().map(Channel::stats).collect()),
                Query::Energy => {
                    Payload::Energy(group.channels.iter().map(Channel::energy).collect())
                }
                Query::QueueDepths => {
                    Payload::Depths(group.channels.iter().map(Channel::queue_depths).collect())
                }
                Query::Subrank => Payload::Subrank(
                    group
                        .channels
                        .iter()
                        .map(|ch| (ch.subrank_busy().to_vec(), ch.subrank_cas().to_vec()))
                        .collect(),
                ),
                Query::IsIdle => Payload::Bool(group.channels.iter().all(Channel::is_idle)),
                Query::NextEvent => Payload::U64(
                    group
                        .channels
                        .iter()
                        .map(Channel::next_event)
                        .min()
                        .unwrap_or(u64::MAX),
                ),
                Query::Conformance => Payload::Conformance(
                    group
                        .channels
                        .iter()
                        .map(Channel::conformance_stats)
                        .collect(),
                ),
                Query::CanAccept { local, kind } => Payload::Bool(match kind {
                    AccessKind::Read => group.channels[local].can_accept_read(),
                    AccessKind::Write => group.channels[local].can_accept_write(),
                }),
            },
        };
        let reply = Reply {
            min_bound: group.min_bound(),
            mutated,
            payload,
        };
        if tx.send(reply).is_err() {
            return; // facade dropped — shut down
        }
    }
}

#[derive(Debug)]
struct WorkerHandle {
    tx: Sender<Cmd>,
    rx: Receiver<Reply>,
    join: Option<JoinHandle<()>>,
}

/// Everything mutable behind the facade. Lives in a `RefCell` because
/// several `&self` trait methods (`stats`, `next_event`, `is_idle`, …)
/// must flush owed no-op spans to the workers before answering.
#[derive(Debug)]
struct Inner {
    /// Shard 0, hosted inline on the calling thread.
    local: ChannelGroup,
    /// Shards `1..n`, one worker thread each.
    workers: Vec<WorkerHandle>,
    /// The global bus clock (all channels advance in lockstep; worker
    /// channels may lag by their owed no-op span).
    now: u64,
    mutation_gen: u64,
    derate: Option<(usize, u64)>,
    /// Owed `advance_noop` span per worker, flushed with the next
    /// command sent to it.
    pending_noop: Vec<u64>,
    /// Cached shard event bound per worker (absolute; refreshed by
    /// every reply). Valid while the shard is quiescent because bounds
    /// and retire times are absolute cycles.
    shard_next: Vec<u64>,
    /// Per-global-channel completion stash, re-merged channel-major.
    stash: Vec<Vec<Completion>>,
}

impl Inner {
    /// Sends `op` to worker `s` with the owed no-op span folded in.
    fn send(&mut self, s: usize, op: Op) {
        let noop = std::mem::take(&mut self.pending_noop[s]);
        if self.workers[s].tx.send(Cmd { noop, op }).is_err() {
            // The worker is gone; surface its panic payload.
            self.join_panicked(s);
        }
    }

    /// Receives worker `s`'s reply, refreshing its cached bound and
    /// folding its mutation flag into the facade generation.
    fn recv(&mut self, s: usize) -> Payload {
        match self.workers[s].rx.recv() {
            Ok(reply) => {
                self.shard_next[s] = reply.min_bound;
                if reply.mutated {
                    self.mutation_gen += 1;
                }
                reply.payload
            }
            Err(_) => self.join_panicked(s),
        }
    }

    /// The worker hung up: join it and re-raise its panic payload on
    /// this thread (preserving typed payloads for downstream catchers).
    fn join_panicked(&mut self, s: usize) -> ! {
        if let Some(handle) = self.workers[s].join.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        panic!("shard worker {} exited without a panic", s + 1);
    }

    /// Round-trips `op` to every worker (fan-out first, then fan-in, so
    /// workers run concurrently) and returns the payloads in shard
    /// order.
    fn broadcast(&mut self, mk: impl Fn() -> Op) -> Vec<Payload> {
        for s in 0..self.workers.len() {
            self.send(s, mk());
        }
        (0..self.workers.len()).map(|s| self.recv(s)).collect()
    }

    /// Stashes a worker tick's completions for the channel-major merge.
    fn stash_completions(&mut self, tagged: Payload) {
        if let Payload::Completions(tagged) = tagged {
            for (global, mut buf) in tagged {
                self.stash[global].append(&mut buf);
            }
        }
    }

    /// Serial `expire_derate`: at the top of both tick paths, lift an
    /// elapsed derate on every channel at exactly cycle `until`.
    fn expire_derate(&mut self) {
        if let Some((_, until)) = self.derate {
            if self.now >= until {
                for ch in &mut self.local.channels {
                    ch.set_read_derate(None);
                }
                let replies = self.broadcast(|| Op::SetDerate(None));
                drop(replies);
                self.derate = None;
                self.mutation_gen += 1;
            }
        }
    }

    fn clamp_to_derate_expiry(&self, bound: u64) -> u64 {
        match self.derate {
            Some((_, until)) => bound.min(until.max(self.now + 1)),
            None => bound,
        }
    }
}

/// The cycle-level memory model with its channels sharded across worker
/// threads — a drop-in [`MemoryBackend`] whose observable behavior is
/// **bit-identical** to [`MemorySystem`](crate::MemorySystem) (pinned by
/// `crates/sim/tests/sharded.rs`); only the wall-clock cost differs.
///
/// Construct through
/// [`new_backend_with_shards`](crate::backend::new_backend_with_shards),
/// which falls back to the serial model when fewer than two shards
/// would carry channels.
#[derive(Debug)]
pub struct ShardedMemory {
    cfg: DramConfig,
    mapping: AddressMapping,
    /// Effective shard count: `min(requested, channels)`, at least 2.
    shards: usize,
    inner: RefCell<Inner>,
}

// The experiment grid moves backends across worker threads; the facade
// owns its mpsc endpoints outright, so `Send` holds (and is required by
// the `MemoryBackend` supertrait — this fails to compile otherwise).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardedMemory>();
};

impl ShardedMemory {
    /// Creates an idle sharded memory system with `shards` shards
    /// (clamped to `2..=cfg.channels`). Channels are constructed on the
    /// calling thread in global index order — identically to the serial
    /// model — then moved to their owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.channels < 2` (one channel leaves nothing to
    /// shard; use the serial model).
    pub fn new(cfg: DramConfig, power: PowerParams, shards: usize) -> Self {
        assert!(
            cfg.channels >= 2,
            "sharding requires at least two channels"
        );
        let n = shards.clamp(2, cfg.channels);
        let mut per_shard: Vec<(Vec<Channel>, Vec<usize>)> = (0..n).map(|_| Default::default()).collect();
        for c in 0..cfg.channels {
            let (chans, globals) = &mut per_shard[c % n];
            chans.push(Channel::new(c, cfg, power));
            globals.push(c);
        }
        let mut groups = per_shard
            .into_iter()
            .map(|(chans, globals)| ChannelGroup::new(chans, globals));
        let local = groups.next().expect("n >= 2");
        let workers = groups
            .enumerate()
            .map(|(i, group)| {
                let (cmd_tx, cmd_rx) = channel::<Cmd>();
                let (reply_tx, reply_rx) = channel::<Reply>();
                let join = std::thread::Builder::new()
                    .name(format!("attache-shard-{}", i + 1))
                    .spawn(move || worker_loop(group, cmd_rx, reply_tx))
                    .expect("spawn shard worker");
                WorkerHandle {
                    tx: cmd_tx,
                    rx: reply_rx,
                    join: Some(join),
                }
            })
            .collect::<Vec<_>>();
        let n_workers = workers.len();
        Self {
            cfg,
            mapping: AddressMapping::new(cfg),
            shards: n,
            inner: RefCell::new(Inner {
                local,
                workers,
                now: 0,
                mutation_gen: 0,
                derate: None,
                pending_noop: vec![0; n_workers],
                shard_next: vec![0; n_workers],
                stash: vec![Vec::new(); cfg.channels],
            }),
        }
    }

    /// The effective shard count (after clamping to the channel count).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Chaos-test hook: makes the worker owning shard `shard` (in
    /// `1..shard_count()`; shard 0 runs inline and has no worker) panic
    /// with exactly `msg`. The facade joins the dead worker and re-raises
    /// its payload here via `resume_unwind`, so this call never returns —
    /// callers pin the behavior with `std::panic::catch_unwind`.
    ///
    /// # Panics
    ///
    /// Always — with the worker's own panic payload (`msg`).
    pub fn chaos_panic(&mut self, shard: usize, msg: &str) -> ! {
        assert!(
            (1..self.shards).contains(&shard),
            "chaos_panic targets a worker shard (1..{})",
            self.shards
        );
        let inner = self.inner.get_mut();
        let s = shard - 1;
        inner.send(s, Op::ChaosPanic(msg.to_string()));
        // The worker dies before replying; recv joins it and re-raises.
        inner.recv(s);
        unreachable!("recv from a chaos-panicked worker must diverge")
    }

    /// Which shard owns global channel `c`.
    fn shard_of(&self, c: usize) -> usize {
        c % self.shards
    }

    /// The owning shard's local index for global channel `c`.
    fn local_of(&self, c: usize) -> usize {
        c / self.shards
    }

    /// One tick (either flavor) across all shards: fan the tick out to
    /// every active worker, run the inline shard, fan the replies in.
    /// With `defer` (event engine), workers whose cached bound lies
    /// beyond the horizon accrue an owed no-op instead — the proven
    /// all-`advance_noop(1)` serial path.
    fn tick_all(&mut self, kind: TickKind, defer: bool) {
        let inner = self.inner.get_mut();
        inner.expire_derate();
        let soon = inner.now + 1;
        let n_workers = inner.workers.len();
        let mut awaiting = Vec::with_capacity(n_workers);
        for s in 0..n_workers {
            if defer && inner.shard_next[s] > soon {
                inner.pending_noop[s] += 1;
            } else {
                inner.send(s, Op::Advance { tick: Some(kind) });
                awaiting.push(s);
            }
        }
        let mutated = match kind {
            TickKind::Cycle => {
                inner.local.tick();
                false
            }
            TickKind::Event => inner.local.tick_event(),
        };
        if mutated {
            inner.mutation_gen += 1;
        }
        for s in awaiting {
            let payload = inner.recv(s);
            inner.stash_completions(payload);
        }
        inner.now += 1;
    }

    /// Round-trips a query to every worker after flushing owed no-op
    /// spans, returning payloads in shard order (shard 0 is handled
    /// inline by the caller).
    fn query_workers(&self, q: Query) -> Vec<Payload> {
        self.inner.borrow_mut().broadcast(|| Op::Query(q))
    }

    /// Assembles a per-global-channel view from the inline shard and the
    /// worker payloads, in global channel-index order — the aggregation
    /// order bit-identity requires.
    fn per_channel<T>(
        &self,
        local_vals: Vec<T>,
        worker_payloads: Vec<Payload>,
        extract: impl Fn(Payload) -> Vec<T>,
    ) -> Vec<T>
    where
        T: Clone,
    {
        let mut slots: Vec<Option<T>> = vec![None; self.cfg.channels];
        let inner = self.inner.borrow();
        for (i, v) in local_vals.into_iter().enumerate() {
            slots[inner.local.global[i]] = Some(v);
        }
        drop(inner);
        for (w, payload) in worker_payloads.into_iter().enumerate() {
            let shard = w + 1;
            for (i, v) in extract(payload).into_iter().enumerate() {
                slots[shard + i * self.shards] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|v| v.expect("every channel owned by exactly one shard"))
            .collect()
    }
}

impl Drop for ShardedMemory {
    fn drop(&mut self) {
        let inner = self.inner.get_mut();
        for w in &inner.workers {
            let _ = w.tx.send(Cmd {
                noop: 0,
                op: Op::Shutdown,
            });
        }
        for w in &mut inner.workers {
            if let Some(handle) = w.join.take() {
                // Swallow worker panics here: if one fired mid-run it was
                // already re-raised by `recv`; during unwind a second
                // panic would abort.
                let _ = handle.join();
            }
        }
    }
}

impl MemoryBackend for ShardedMemory {
    fn kind(&self) -> BackendKind {
        // Same model, same numbers — sharding is an execution strategy,
        // not a timing model, so reports and cache keys stay `cycle`.
        BackendKind::Cycle
    }

    fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    fn can_accept(&self, line_addr: u64, kind: AccessKind) -> bool {
        let c = self.channel_of(line_addr);
        let (shard, local) = (self.shard_of(c), self.local_of(c));
        if shard == 0 {
            let inner = self.inner.borrow();
            return match kind {
                AccessKind::Read => inner.local.channels[local].can_accept_read(),
                AccessKind::Write => inner.local.channels[local].can_accept_write(),
            };
        }
        let mut inner = self.inner.borrow_mut();
        let w = shard - 1;
        inner.send(w, Op::Query(Query::CanAccept { local, kind }));
        match inner.recv(w) {
            Payload::Bool(b) => b,
            _ => unreachable!("CanAccept replies Bool"),
        }
    }

    fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let c = self.channel_of(req.line_addr);
        let (shard, local) = (self.shard_of(c), self.local_of(c));
        let inner = self.inner.get_mut();
        if shard == 0 {
            let (r, accepted) = inner.local.enqueue(local, req);
            if accepted {
                inner.mutation_gen += 1;
            }
            return r;
        }
        let w = shard - 1;
        inner.send(w, Op::Enqueue { local, req });
        match inner.recv(w) {
            Payload::Enqueue(r) => r,
            _ => unreachable!("Enqueue replies Enqueue"),
        }
    }

    fn tick(&mut self) {
        self.tick_all(TickKind::Cycle, false);
    }

    fn tick_event(&mut self) {
        self.tick_all(TickKind::Event, true);
    }

    fn advance_noop(&mut self, span: u64) {
        let inner = self.inner.get_mut();
        inner.local.advance_noop(span);
        for p in &mut inner.pending_noop {
            *p += span;
        }
        inner.now += span;
    }

    fn advance_idle_to(&mut self, target: u64) {
        let inner = self.inner.get_mut();
        for ch in &mut inner.local.channels {
            ch.advance_idle_to(target);
        }
        let replies = inner.broadcast(|| Op::AdvanceIdleTo(target));
        drop(replies);
        inner.now = target;
    }

    fn now(&self) -> u64 {
        self.inner.borrow().now
    }

    fn is_idle(&self) -> bool {
        {
            let inner = self.inner.borrow();
            if !inner.local.channels.iter().all(Channel::is_idle) {
                return false;
            }
        }
        self.query_workers(Query::IsIdle)
            .into_iter()
            .all(|p| matches!(p, Payload::Bool(true)))
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_completions_into(&mut out);
        out
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        let shards = self.shards;
        let inner = self.inner.get_mut();
        for c in 0..self.cfg.channels {
            if c % shards == 0 {
                inner.local.channels[c / shards].drain_completions_into(out);
            } else {
                out.append(&mut inner.stash[c]);
            }
        }
    }

    fn next_event(&self) -> u64 {
        let worker_min = self
            .query_workers(Query::NextEvent)
            .into_iter()
            .map(|p| match p {
                Payload::U64(v) => v,
                _ => unreachable!("NextEvent replies U64"),
            })
            .min()
            .unwrap_or(u64::MAX);
        let inner = self.inner.borrow();
        let local_min = inner
            .local
            .channels
            .iter()
            .map(Channel::next_event)
            .min()
            .unwrap_or(u64::MAX);
        inner.clamp_to_derate_expiry(local_min.min(worker_min))
    }

    fn next_event_cached(&self) -> u64 {
        let inner = self.inner.borrow();
        let mut min = inner.local.min_bound();
        for &b in &inner.shard_next {
            min = min.min(b);
        }
        inner.clamp_to_derate_expiry(min)
    }

    fn mutation_gen(&self) -> u64 {
        self.inner.borrow().mutation_gen
    }

    fn stats(&self) -> ChannelStats {
        let mut agg = ChannelStats::default();
        for s in self.channel_stats() {
            agg.add(&s);
        }
        agg
    }

    fn channel_stats(&self) -> Vec<ChannelStats> {
        let payloads = self.query_workers(Query::Stats);
        let local = {
            let inner = self.inner.borrow();
            inner.local.channels.iter().map(Channel::stats).collect()
        };
        self.per_channel(local, payloads, |p| match p {
            Payload::Stats(v) => v,
            _ => unreachable!("Stats replies Stats"),
        })
    }

    fn energy(&self) -> EnergyBreakdown {
        let payloads = self.query_workers(Query::Energy);
        let local = {
            let inner = self.inner.borrow();
            inner.local.channels.iter().map(Channel::energy).collect()
        };
        // Summed in global channel-index order: `EnergyBreakdown::add`
        // accumulates `f64`s, so the order is part of bit-identity.
        let per = self.per_channel(local, payloads, |p| match p {
            Payload::Energy(v) => v,
            _ => unreachable!("Energy replies Energy"),
        });
        let mut agg = EnergyBreakdown::default();
        for e in per {
            agg.add(&e);
        }
        agg
    }

    fn reset_stats(&mut self) {
        let inner = self.inner.get_mut();
        // The owed no-op span is flushed by `send`, so every channel's
        // stats epoch starts at the same (current) cycle.
        for ch in &mut inner.local.channels {
            ch.reset_stats();
        }
        let replies = inner.broadcast(|| Op::ResetStats);
        drop(replies);
    }

    fn queue_depths(&self) -> Vec<(usize, usize)> {
        let payloads = self.query_workers(Query::QueueDepths);
        let local = {
            let inner = self.inner.borrow();
            inner
                .local
                .channels
                .iter()
                .map(Channel::queue_depths)
                .collect()
        };
        self.per_channel(local, payloads, |p| match p {
            Payload::Depths(v) => v,
            _ => unreachable!("QueueDepths replies Depths"),
        })
    }

    fn subrank_busy(&self) -> Vec<Vec<u64>> {
        self.subrank_view(false)
    }

    fn subrank_cas(&self) -> Vec<Vec<u64>> {
        self.subrank_view(true)
    }

    fn fault_derate_reads(&mut self, cap: usize, until: u64) {
        let inner = self.inner.get_mut();
        for ch in &mut inner.local.channels {
            ch.set_read_derate(Some(cap));
        }
        let replies = inner.broadcast(|| Op::SetDerate(Some(cap)));
        drop(replies);
        inner.derate = Some((cap, until));
        inner.mutation_gen += 1;
    }

    fn set_trace(&mut self, ring: attache_metrics::SharedTraceRing) {
        let inner = self.inner.get_mut();
        for ch in &mut inner.local.channels {
            ch.set_trace(ring.clone());
        }
        let r = ring;
        let replies = inner.broadcast(|| Op::SetTrace(r.clone()));
        drop(replies);
    }

    fn enable_conformance(&mut self) {
        let timing = self.cfg.timing;
        let inner = self.inner.get_mut();
        for ch in &mut inner.local.channels {
            ch.attach_auditor(timing);
        }
        let replies = inner.broadcast(|| Op::EnableConformance(timing));
        drop(replies);
    }

    fn conformance_stats(&self) -> Option<ConformanceStats> {
        let payloads = self.query_workers(Query::Conformance);
        let local = {
            let inner = self.inner.borrow();
            inner
                .local
                .channels
                .iter()
                .map(Channel::conformance_stats)
                .collect()
        };
        let per_channel = self.per_channel(local, payloads, |p| match p {
            Payload::Conformance(v) => v,
            _ => unreachable!("Conformance replies Conformance"),
        });
        let per: Vec<ConformanceStats> = per_channel.into_iter().flatten().collect();
        if per.is_empty() {
            None
        } else {
            Some(ConformanceStats::aggregate(&per))
        }
    }
}

impl ShardedMemory {
    fn subrank_view(&self, cas: bool) -> Vec<Vec<u64>> {
        let payloads = self.query_workers(Query::Subrank);
        let local = {
            let inner = self.inner.borrow();
            inner
                .local
                .channels
                .iter()
                .map(|ch| (ch.subrank_busy().to_vec(), ch.subrank_cas().to_vec()))
                .collect()
        };
        self.per_channel(local, payloads, |p| match p {
            Payload::Subrank(v) => v,
            _ => unreachable!("Subrank replies Subrank"),
        })
        .into_iter()
        .map(|(busy, c)| if cas { c } else { busy })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessWidth, Origin};
    use crate::MemorySystem;

    fn read(id: u64, line_addr: u64, arrival: u64) -> MemRequest {
        MemRequest {
            id,
            line_addr,
            kind: AccessKind::Read,
            width: AccessWidth::Full,
            origin: Origin::Demand { core: 0 },
            arrival,
        }
    }

    fn write(id: u64, line_addr: u64, arrival: u64) -> MemRequest {
        MemRequest {
            id,
            line_addr,
            kind: AccessKind::Write,
            width: AccessWidth::Full,
            origin: Origin::Writeback,
            arrival,
        }
    }

    /// Drives the same request stream through the serial model and a
    /// sharded one, cycle by cycle, asserting identical completions,
    /// stats and energy bits at the end.
    fn lockstep(shards: usize, cycles: u64, mut traffic: impl FnMut(u64) -> Vec<MemRequest>) {
        let cfg = DramConfig::table2();
        let power = PowerParams::ddr4_1600();
        let mut serial = MemorySystem::new(cfg, power);
        let mut sharded = ShardedMemory::new(cfg, power, shards);
        let mut done_serial = Vec::new();
        let mut done_sharded = Vec::new();
        for t in 0..cycles {
            for req in traffic(t) {
                let a = MemoryBackend::enqueue(&mut serial, req);
                let b = sharded.enqueue(req);
                assert_eq!(a, b, "enqueue outcome at cycle {t}");
            }
            MemoryBackend::tick_event(&mut serial);
            sharded.tick_event();
            MemoryBackend::drain_completions_into(&mut serial, &mut done_serial);
            sharded.drain_completions_into(&mut done_sharded);
            assert_eq!(
                MemoryBackend::next_event_cached(&serial),
                sharded.next_event_cached(),
                "event bound at cycle {t}"
            );
        }
        assert_eq!(done_serial, done_sharded);
        assert_eq!(MemoryBackend::stats(&serial), sharded.stats());
        assert_eq!(
            MemoryBackend::energy(&serial).total_pj().to_bits(),
            sharded.energy().total_pj().to_bits()
        );
        assert_eq!(MemoryBackend::now(&serial), sharded.now());
    }

    #[test]
    fn sharded_matches_serial_on_mixed_traffic() {
        lockstep(2, 3_000, |t| {
            let mut reqs = Vec::new();
            if t % 7 == 0 {
                reqs.push(read(t * 4 + 1, (t * 13) % 512, t));
            }
            if t % 11 == 0 {
                reqs.push(write(t * 4 + 2, (t * 29) % 512, t));
            }
            reqs
        });
    }

    #[test]
    fn oversized_shard_counts_clamp_to_the_channel_count() {
        let mem = ShardedMemory::new(DramConfig::table2(), PowerParams::ddr4_1600(), 8);
        assert_eq!(mem.shard_count(), 2);
        lockstep(8, 1_000, |t| {
            if t % 5 == 0 {
                vec![read(t + 1, (t * 3) % 256, t)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn derate_windows_expire_identically() {
        let cfg = DramConfig::table2();
        let power = PowerParams::ddr4_1600();
        let mut serial = MemorySystem::new(cfg, power);
        let mut sharded = ShardedMemory::new(cfg, power, 2);
        MemoryBackend::fault_derate_reads(&mut serial, 1, 200);
        sharded.fault_derate_reads(1, 200);
        let mut id = 0u64;
        for t in 0..400u64 {
            for line in [0u64, 1, 2, 3] {
                id += 1;
                let a = MemoryBackend::enqueue(&mut serial, read(id, line + t, t));
                let b = sharded.enqueue(read(id, line + t, t));
                assert_eq!(a.is_ok(), b.is_ok(), "cycle {t} line {line}");
            }
            MemoryBackend::tick_event(&mut serial);
            sharded.tick_event();
            let _ = MemoryBackend::drain_completions(&mut serial);
            let _ = sharded.drain_completions();
        }
        assert_eq!(MemoryBackend::stats(&serial), sharded.stats());
    }

    #[test]
    fn idle_fast_forward_and_reset_agree() {
        let cfg = DramConfig::table2();
        let power = PowerParams::ddr4_1600();
        let mut serial = MemorySystem::new(cfg, power);
        let mut sharded = ShardedMemory::new(cfg, power, 2);
        let target = 50_000;
        MemoryBackend::advance_idle_to(&mut serial, target);
        sharded.advance_idle_to(target);
        assert_eq!(MemoryBackend::stats(&serial), sharded.stats());
        assert_eq!(
            MemoryBackend::energy(&serial).total_pj().to_bits(),
            sharded.energy().total_pj().to_bits()
        );
        MemoryBackend::reset_stats(&mut serial);
        sharded.reset_stats();
        assert_eq!(MemoryBackend::stats(&serial).cycles, 0);
        assert_eq!(sharded.stats().cycles, 0);
        assert!(sharded.is_idle());
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            let mut mem = ShardedMemory::new(DramConfig::table2(), PowerParams::ddr4_1600(), 2);
            // advance_idle_to on a non-idle channel panics inside the
            // worker; the facade must re-raise it here.
            mem.enqueue(read(1, 1, 0)).unwrap(); // channel 1 = shard 1
            mem.advance_idle_to(1_000);
        });
        assert!(result.is_err(), "worker panic must reach the facade");
    }
}
