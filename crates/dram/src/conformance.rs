//! DRAM protocol conformance checking: an independent auditor for the
//! command stream the memory controller issues.
//!
//! The scheduler in [`channel`](crate::channel) *should* only issue
//! commands its [`rank`](crate::rank)/[`bank`](crate::bank) state
//! machines declare legal — but those are the same state machines the
//! scheduler consults, so a bug there is invisible to every test that
//! only looks at results. The [`ConformanceChecker`] closes the loop: it
//! observes every ACT/RD/WR/PRE/REF as it issues and re-validates the
//! JEDEC timing constraints (tRCD, tRP, tRAS, tRC, tRRD, tFAW, tCCD,
//! read/write turnaround, tRTP, tWR, tRFC) from its **own** shadow state,
//! built from nothing but the observed command times. It shares no code
//! with the scheduler's legality logic: where the rank tracks `next_*`
//! gate registers, the auditor stores raw event timestamps and re-derives
//! each gate at check time.
//!
//! The auditor is a pure observer — it never influences scheduling — so
//! wiring it into a run (`ATTACHE_CONFORMANCE=1`, read per
//! [`Channel::new`](crate::channel::Channel::new) so tests can toggle it,
//! or [`MemorySystem::enable_conformance`](crate::MemorySystem::enable_conformance))
//! cannot change results: every existing test run doubles as a protocol
//! audit. Sub-rank awareness matters here: the two sub-ranks are disjoint
//! chip groups, so tRRD/tFAW/tCCD are tracked per sub-rank, exactly the
//! property the paper's §V half-width accesses exploit.

use crate::config::{DramConfig, Timing};
use std::fmt;

/// One observed DRAM command. `mask` selects sub-ranks (bit `s` =
/// sub-rank `s`); `bank` is the flat bank index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCommand {
    /// Row activate of `row` on the masked sub-banks of `bank`.
    Activate {
        /// Flat bank index.
        bank: usize,
        /// Row being opened.
        row: usize,
        /// Sub-rank mask.
        mask: u8,
    },
    /// Column read on the masked sub-banks of `bank` (open row `row`).
    Read {
        /// Flat bank index.
        bank: usize,
        /// Row the read targets (must be the open row).
        row: usize,
        /// Sub-rank mask.
        mask: u8,
    },
    /// Column write on the masked sub-banks of `bank` (open row `row`).
    Write {
        /// Flat bank index.
        bank: usize,
        /// Row the write targets (must be the open row).
        row: usize,
        /// Sub-rank mask.
        mask: u8,
    },
    /// Precharge of the masked sub-banks of `bank`.
    Precharge {
        /// Flat bank index.
        bank: usize,
        /// Sub-rank mask.
        mask: u8,
    },
    /// All-bank refresh of the rank.
    Refresh,
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Activate { bank, row, mask } => {
                write!(f, "ACT bank={bank} row={row} mask={mask:02b}")
            }
            DramCommand::Read { bank, row, mask } => {
                write!(f, "RD bank={bank} row={row} mask={mask:02b}")
            }
            DramCommand::Write { bank, row, mask } => {
                write!(f, "WR bank={bank} row={row} mask={mask:02b}")
            }
            DramCommand::Precharge { bank, mask } => {
                write!(f, "PRE bank={bank} mask={mask:02b}")
            }
            DramCommand::Refresh => f.write_str("REF"),
        }
    }
}

/// A command that violated a timing or state constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// Bus cycle the offending command issued at.
    pub now: u64,
    /// The violated rule, e.g. `"tRCD"` or `"tFAW"`.
    pub rule: &'static str,
    /// Human-readable specifics (command, earliest legal cycle).
    pub detail: String,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated at cycle {}: {}", self.rule, self.now, self.detail)
    }
}

/// Per-command-kind audit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConformanceStats {
    /// Total commands validated.
    pub commands_checked: u64,
    /// ACT commands validated.
    pub activates: u64,
    /// RD commands validated.
    pub reads: u64,
    /// WR commands validated.
    pub writes: u64,
    /// PRE commands validated.
    pub precharges: u64,
    /// REF commands validated (bulk idle-window refreshes excluded).
    pub refreshes: u64,
}

impl ConformanceStats {
    fn add(&mut self, other: &ConformanceStats) {
        self.commands_checked += other.commands_checked;
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
    }

    /// Sums a set of per-channel stats.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a ConformanceStats>) -> Self {
        let mut out = ConformanceStats::default();
        for p in parts {
            out.add(p);
        }
        out
    }
}

/// Shadow state for one sub-bank: raw timestamps, not gate registers.
#[derive(Debug, Clone, Copy, Default)]
struct SubBankShadow {
    open_row: Option<usize>,
    act_at: Option<u64>,
    pre_at: Option<u64>,
    rd_at: Option<u64>,
    wr_at: Option<u64>,
}

/// Shadow state for one rank.
#[derive(Debug, Clone)]
struct RankShadow {
    /// `sub[bank * subranks + s]`.
    sub: Vec<SubBankShadow>,
    /// Issue times of recent ACTs per sub-rank (last 4 kept: tFAW).
    act_window: Vec<Vec<u64>>,
    /// Last ACT per sub-rank (tRRD).
    last_act: Vec<Option<u64>>,
    /// Last CAS-read per sub-rank data bus (tCCD / read→write).
    last_rd: Vec<Option<u64>>,
    /// Last CAS-write per sub-rank data bus (tCCD / write→read).
    last_wr: Vec<Option<u64>>,
    /// The rank executes a refresh until this cycle (tRFC).
    refresh_busy_until: u64,
}

impl RankShadow {
    fn new(banks: usize, subranks: usize) -> Self {
        Self {
            sub: vec![SubBankShadow::default(); banks * subranks],
            act_window: vec![Vec::new(); subranks],
            last_act: vec![None; subranks],
            last_rd: vec![None; subranks],
            last_wr: vec![None; subranks],
            refresh_busy_until: 0,
        }
    }
}

/// The command-stream auditor. See the module docs for scope.
#[derive(Debug, Clone)]
pub struct ConformanceChecker {
    t: Timing,
    subranks: usize,
    ranks: Vec<RankShadow>,
    last_cmd_at: Option<u64>,
    stats: ConformanceStats,
}

/// Earliest legal cycle given an optional predecessor event and a gap.
fn gate(prev: Option<u64>, gap: u64) -> u64 {
    prev.map_or(0, |p| p + gap)
}

impl ConformanceChecker {
    /// An auditor validating against `cfg`'s own timing parameters.
    pub fn new(cfg: &DramConfig) -> Self {
        Self::with_timing(cfg, cfg.timing)
    }

    /// An auditor validating against an explicit reference `timing` —
    /// the test hook for deliberate perturbation: auditing a stream
    /// scheduled under looser timings than the reference must flag
    /// violations.
    pub fn with_timing(cfg: &DramConfig, timing: Timing) -> Self {
        Self {
            t: timing,
            subranks: cfg.subranks,
            ranks: (0..cfg.ranks)
                .map(|_| RankShadow::new(cfg.banks(), cfg.subranks))
                .collect(),
            last_cmd_at: None,
            stats: ConformanceStats::default(),
        }
    }

    /// Audit counters so far.
    pub fn stats(&self) -> ConformanceStats {
        self.stats
    }

    fn violation(now: u64, rule: &'static str, detail: String) -> TimingViolation {
        TimingViolation { now, rule, detail }
    }

    /// Accounts an idle-window bulk refresh (the fast-forward path issues
    /// no per-cycle commands): the rank ends its last refresh at
    /// `busy_until`, with every bank closed.
    pub fn fast_forward_refresh(&mut self, rank: usize, refreshes: u64, busy_until: u64) {
        let r = &mut self.ranks[rank];
        r.refresh_busy_until = r.refresh_busy_until.max(busy_until);
        for sb in &mut r.sub {
            sb.open_row = None;
        }
        self.stats.refreshes += refreshes;
    }

    /// Validates one observed command against the shadow state, then
    /// absorbs it. `rank` indexes the rank the command addresses.
    ///
    /// # Errors
    ///
    /// Returns the first [`TimingViolation`] found; the command is *not*
    /// absorbed into the shadow state in that case.
    pub fn observe(
        &mut self,
        now: u64,
        rank: usize,
        cmd: &DramCommand,
    ) -> Result<(), TimingViolation> {
        let t = self.t;
        // The command bus carries one command per channel per cycle.
        if let Some(last) = self.last_cmd_at {
            if now < last {
                return Err(Self::violation(
                    now,
                    "CMD-ORDER",
                    format!("{cmd} issued at {now}, after a command at {last}"),
                ));
            }
            if now == last {
                return Err(Self::violation(
                    now,
                    "CMD-BUS",
                    format!("{cmd} is the second command in cycle {now}"),
                ));
            }
        }
        // tRFC: the whole rank is busy while refreshing.
        let busy = self.ranks[rank].refresh_busy_until;
        if now < busy {
            return Err(Self::violation(
                now,
                "tRFC",
                format!("{cmd} during refresh (rank busy until {busy})"),
            ));
        }

        let subranks = self.subranks;
        match *cmd {
            DramCommand::Activate { bank, row, mask } => {
                let shadow = &self.ranks[rank];
                let mut any_needed = false;
                for s in mask_iter(mask, subranks) {
                    let sb = shadow.sub[bank * subranks + s];
                    match sb.open_row {
                        Some(open) if open == row => continue, // already open: no-op half
                        Some(open) => {
                            return Err(Self::violation(
                                now,
                                "ACT-OPEN-BANK",
                                format!("{cmd} but sub-bank {s} holds row {open}"),
                            ));
                        }
                        None => {}
                    }
                    any_needed = true;
                    let rc = gate(sb.act_at, t.t_rc);
                    if now < rc {
                        return Err(Self::violation(
                            now,
                            "tRC",
                            format!("{cmd} on sub-bank {s}: earliest legal ACT is {rc}"),
                        ));
                    }
                    let rp = gate(sb.pre_at, t.t_rp);
                    if now < rp {
                        return Err(Self::violation(
                            now,
                            "tRP",
                            format!("{cmd} on sub-bank {s}: precharge completes at {rp}"),
                        ));
                    }
                    let rrd = gate(shadow.last_act[s], t.t_rrd);
                    if now < rrd {
                        return Err(Self::violation(
                            now,
                            "tRRD",
                            format!("{cmd} on sub-rank {s}: earliest legal ACT is {rrd}"),
                        ));
                    }
                    let w = &shadow.act_window[s];
                    if w.len() >= 4 {
                        let faw = w[w.len() - 4] + t.t_faw;
                        if now < faw {
                            return Err(Self::violation(
                                now,
                                "tFAW",
                                format!(
                                    "{cmd} is the 5th ACT on sub-rank {s} within tFAW \
                                     (window opens at {faw})"
                                ),
                            ));
                        }
                    }
                }
                if !any_needed {
                    return Err(Self::violation(
                        now,
                        "ACT-NOOP",
                        format!("{cmd} but every masked sub-bank already holds row {row}"),
                    ));
                }
                let shadow = &mut self.ranks[rank];
                for s in mask_iter(mask, subranks) {
                    let sb = &mut shadow.sub[bank * subranks + s];
                    if sb.open_row == Some(row) {
                        continue;
                    }
                    sb.open_row = Some(row);
                    sb.act_at = Some(now);
                    shadow.last_act[s] = Some(now);
                    let w = &mut shadow.act_window[s];
                    w.push(now);
                    if w.len() > 4 {
                        w.remove(0);
                    }
                }
                self.stats.activates += 1;
            }
            DramCommand::Read { bank, row, mask } | DramCommand::Write { bank, row, mask } => {
                let is_write = matches!(cmd, DramCommand::Write { .. });
                let shadow = &self.ranks[rank];
                for s in mask_iter(mask, subranks) {
                    let sb = shadow.sub[bank * subranks + s];
                    if sb.open_row != Some(row) {
                        return Err(Self::violation(
                            now,
                            "CAS-ROW",
                            format!("{cmd} but sub-bank {s} has {:?} open", sb.open_row),
                        ));
                    }
                    let rcd = gate(sb.act_at, t.t_rcd);
                    if now < rcd {
                        return Err(Self::violation(
                            now,
                            "tRCD",
                            format!("{cmd} on sub-bank {s}: row usable at {rcd}"),
                        ));
                    }
                    // Per-sub-rank data bus: same-kind CAS spacing (tCCD)
                    // and bus turnaround between kinds.
                    let (same, turn, turn_rule) = if is_write {
                        (shadow.last_wr[s], gate(shadow.last_rd[s], t.read_to_write()), "tRTW")
                    } else {
                        (shadow.last_rd[s], gate(shadow.last_wr[s], t.write_to_read()), "tWTR")
                    };
                    let ccd = gate(same, t.t_ccd);
                    if now < ccd {
                        return Err(Self::violation(
                            now,
                            "tCCD",
                            format!("{cmd} on sub-rank {s} bus: earliest legal CAS is {ccd}"),
                        ));
                    }
                    if now < turn {
                        return Err(Self::violation(
                            now,
                            turn_rule,
                            format!("{cmd} on sub-rank {s} bus: turnaround clears at {turn}"),
                        ));
                    }
                }
                let shadow = &mut self.ranks[rank];
                for s in mask_iter(mask, subranks) {
                    let sb = &mut shadow.sub[bank * subranks + s];
                    if is_write {
                        sb.wr_at = Some(now);
                        shadow.last_wr[s] = Some(now);
                    } else {
                        sb.rd_at = Some(now);
                        shadow.last_rd[s] = Some(now);
                    }
                }
                if is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
            }
            DramCommand::Precharge { bank, mask } => {
                let shadow = &self.ranks[rank];
                for s in mask_iter(mask, subranks) {
                    let sb = shadow.sub[bank * subranks + s];
                    if sb.open_row.is_none() {
                        return Err(Self::violation(
                            now,
                            "PRE-IDLE",
                            format!("{cmd} but sub-bank {s} has no open row"),
                        ));
                    }
                    let ras = gate(sb.act_at, t.t_ras);
                    if now < ras {
                        return Err(Self::violation(
                            now,
                            "tRAS",
                            format!("{cmd} on sub-bank {s}: row must stay open until {ras}"),
                        ));
                    }
                    let rtp = gate(sb.rd_at, t.t_rtp);
                    if now < rtp {
                        return Err(Self::violation(
                            now,
                            "tRTP",
                            format!("{cmd} on sub-bank {s}: read-to-precharge clears at {rtp}"),
                        ));
                    }
                    let wr = gate(sb.wr_at, t.t_cwl + t.t_burst + t.t_wr);
                    if now < wr {
                        return Err(Self::violation(
                            now,
                            "tWR",
                            format!("{cmd} on sub-bank {s}: write recovery clears at {wr}"),
                        ));
                    }
                }
                let shadow = &mut self.ranks[rank];
                for s in mask_iter(mask, subranks) {
                    let sb = &mut shadow.sub[bank * subranks + s];
                    sb.open_row = None;
                    sb.pre_at = Some(now);
                }
                self.stats.precharges += 1;
            }
            DramCommand::Refresh => {
                let shadow = &self.ranks[rank];
                if let Some((i, sb)) = shadow
                    .sub
                    .iter()
                    .enumerate()
                    .find(|(_, sb)| sb.open_row.is_some())
                {
                    return Err(Self::violation(
                        now,
                        "REF-OPEN-BANK",
                        format!(
                            "REF with sub-bank {i} still holding row {:?}",
                            sb.open_row.expect("row open")
                        ),
                    ));
                }
                self.ranks[rank].refresh_busy_until = now + t.t_rfc;
                self.stats.refreshes += 1;
            }
        }
        self.stats.commands_checked += 1;
        self.last_cmd_at = Some(now);
        Ok(())
    }
}

fn mask_iter(mask: u8, subranks: usize) -> impl Iterator<Item = usize> {
    (0..subranks).filter(move |s| mask & (1 << s) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> ConformanceChecker {
        ConformanceChecker::new(&DramConfig::table2())
    }

    fn t() -> Timing {
        Timing::table2()
    }

    #[test]
    fn legal_act_read_precharge_sequence_passes() {
        let mut c = checker();
        let act = DramCommand::Activate { bank: 0, row: 3, mask: 0b11 };
        let rd = DramCommand::Read { bank: 0, row: 3, mask: 0b11 };
        let pre = DramCommand::Precharge { bank: 0, mask: 0b11 };
        c.observe(0, 0, &act).unwrap();
        c.observe(t().t_rcd, 0, &rd).unwrap();
        c.observe(t().t_ras, 0, &pre).unwrap();
        assert_eq!(c.stats().commands_checked, 3);
    }

    #[test]
    fn read_before_trcd_is_caught() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 3, mask: 0b01 }).unwrap();
        let v = c
            .observe(t().t_rcd - 1, 0, &DramCommand::Read { bank: 0, row: 3, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tRCD");
    }

    #[test]
    fn act_act_within_trrd_is_caught() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let v = c
            .observe(t().t_rrd - 1, 0, &DramCommand::Activate { bank: 1, row: 1, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tRRD");
        // The other sub-rank is a disjoint chip group: no shared tRRD.
        c.observe(t().t_rrd - 1, 0, &DramCommand::Activate { bank: 1, row: 1, mask: 0b10 })
            .unwrap();
    }

    #[test]
    fn fifth_act_within_tfaw_is_caught() {
        let mut c = checker();
        let mut now = 0;
        for bank in 0..4 {
            c.observe(now, 0, &DramCommand::Activate { bank, row: 1, mask: 0b01 }).unwrap();
            now += t().t_rrd;
        }
        assert!(now < t().t_faw);
        let v = c
            .observe(now, 0, &DramCommand::Activate { bank: 4, row: 1, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tFAW");
        c.observe(t().t_faw, 0, &DramCommand::Activate { bank: 4, row: 1, mask: 0b01 })
            .unwrap();
    }

    #[test]
    fn precharge_before_tras_is_caught() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 2, row: 9, mask: 0b11 }).unwrap();
        let v = c
            .observe(t().t_ras - 1, 0, &DramCommand::Precharge { bank: 2, mask: 0b11 })
            .unwrap_err();
        assert_eq!(v.rule, "tRAS");
    }

    #[test]
    fn command_during_refresh_is_caught() {
        let mut c = checker();
        c.observe(100, 0, &DramCommand::Refresh).unwrap();
        let v = c
            .observe(100 + t().t_rfc - 1, 0, &DramCommand::Activate { bank: 0, row: 0, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tRFC");
        c.observe(100 + t().t_rfc, 0, &DramCommand::Activate { bank: 0, row: 0, mask: 0b01 })
            .unwrap();
    }

    #[test]
    fn refresh_with_open_bank_is_caught() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 1, row: 7, mask: 0b01 }).unwrap();
        let v = c.observe(t().t_ras, 0, &DramCommand::Refresh).unwrap_err();
        assert_eq!(v.rule, "REF-OPEN-BANK");
    }

    #[test]
    fn same_cycle_commands_are_caught() {
        let mut c = checker();
        c.observe(5, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let v = c
            .observe(5, 0, &DramCommand::Activate { bank: 1, row: 1, mask: 0b10 })
            .unwrap_err();
        assert_eq!(v.rule, "CMD-BUS");
    }

    #[test]
    fn cas_to_closed_row_is_caught() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let v = c
            .observe(t().t_rcd, 0, &DramCommand::Read { bank: 0, row: 2, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "CAS-ROW");
    }

    #[test]
    fn write_read_turnaround_is_enforced_per_subrank_bus() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b11 }).unwrap();
        let wr_at = t().t_rcd;
        c.observe(wr_at, 0, &DramCommand::Write { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let v = c
            .observe(
                wr_at + t().write_to_read() - 1,
                0,
                &DramCommand::Read { bank: 0, row: 1, mask: 0b01 },
            )
            .unwrap_err();
        assert_eq!(v.rule, "tWTR");
        // The other sub-rank's bus is independent.
        c.observe(wr_at + 1, 0, &DramCommand::Read { bank: 0, row: 1, mask: 0b10 }).unwrap();
    }

    #[test]
    fn violating_command_is_not_absorbed() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let _ = c
            .observe(t().t_rcd - 1, 0, &DramCommand::Read { bank: 0, row: 1, mask: 0b01 })
            .unwrap_err();
        // The rejected read must not have advanced the bus shadow: a
        // legal read right at tRCD still passes.
        c.observe(t().t_rcd, 0, &DramCommand::Read { bank: 0, row: 1, mask: 0b01 }).unwrap();
    }

    #[test]
    fn stricter_reference_timing_flags_a_legal_stream() {
        // The perturbation hook: the same stream that is legal under
        // Table II must violate a reference with a longer tRCD.
        let mut strict = t();
        strict.t_rcd += 8;
        let mut c = ConformanceChecker::with_timing(&DramConfig::table2(), strict);
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        let v = c
            .observe(t().t_rcd, 0, &DramCommand::Read { bank: 0, row: 1, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tRCD");
    }

    #[test]
    fn fast_forward_models_bulk_refresh() {
        let mut c = checker();
        c.observe(0, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 }).unwrap();
        c.observe(t().t_ras, 0, &DramCommand::Precharge { bank: 0, mask: 0b01 }).unwrap();
        let busy_until = 1_000_000;
        c.fast_forward_refresh(0, 3, busy_until);
        assert_eq!(c.stats().refreshes, 3);
        let v = c
            .observe(busy_until - 1, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 })
            .unwrap_err();
        assert_eq!(v.rule, "tRFC");
        c.observe(busy_until, 0, &DramCommand::Activate { bank: 0, row: 1, mask: 0b01 })
            .unwrap();
    }
}
