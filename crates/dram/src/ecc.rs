//! (72,64) SEC-DED Hamming code, the classic chipkill-free server ECC.
//!
//! Every 64-bit data word is protected by 8 check bits: a Hamming code
//! over codeword positions `1..=71` (the seven powers of two are the
//! Hamming check bits, the remaining 64 positions carry data) plus an
//! overall-parity bit `p0` that extends single-error correction with
//! double-error *detection*. A 64-byte line therefore carries 8 check
//! bytes — exactly the extra ×8 chip of a 72-bit ECC DIMM.
//!
//! The codec is pure data-plane math: no clocking, no state. The
//! simulator's integrity engine (in the sim crate) owns *when* words are
//! encoded and checked; the timing models account the widened-bus cost.
//!
//! Decode outcomes per word:
//!
//! * overall parity even, syndrome zero → [`WordDecode::Clean`];
//! * overall parity odd → a single-bit error at the syndrome position
//!   (zero meaning `p0` itself) — corrected, [`WordDecode::Corrected`];
//! * overall parity even, syndrome nonzero → a double-bit error,
//!   detected but uncorrectable, [`WordDecode::Uncorrectable`]. Reads
//!   must treat the word as poisoned.

/// Codeword positions `1..=71` that carry data bits, in data-bit order.
/// Skips the powers of two (the Hamming check-bit positions).
const DATA_POS: [u8; 64] = {
    let mut table = [0u8; 64];
    let mut pos: u8 = 1;
    let mut i = 0;
    while i < 64 {
        if !pos.is_power_of_two() {
            table[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    table
};

/// Inverse of [`DATA_POS`]: codeword position → data-bit index, with
/// `0xFF` marking the check-bit positions (and position 0 = `p0`).
const POS_TO_DATA: [u8; 72] = {
    let mut table = [0xFFu8; 72];
    let mut i = 0;
    while i < 64 {
        table[DATA_POS[i] as usize] = i as u8;
        i += 1;
    }
    table
};

/// The outcome of decoding one protected 64-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordDecode {
    /// Syndrome clean: the stored word is exactly what was written.
    Clean,
    /// A single-bit error (data, check, or overall-parity bit) was
    /// corrected; the returned data is trustworthy.
    Corrected,
    /// A multi-bit error was detected; the data cannot be trusted and
    /// must be treated as poisoned.
    Uncorrectable,
}

/// The 7-bit Hamming syndrome contribution of the data bits alone:
/// bit `k` is the parity of the data bits whose codeword position has
/// bit `k` set.
fn data_syndrome(data: u64) -> u8 {
    let mut syn = 0u8;
    let mut d = data;
    while d != 0 {
        let i = d.trailing_zeros() as usize;
        syn ^= DATA_POS[i];
        d &= d - 1;
    }
    syn
}

/// Encodes one 64-bit word into its 8-bit check byte.
///
/// Layout: bit 0 is the overall-parity bit `p0`; bits `1..=7` are the
/// Hamming check bits for positions `1, 2, 4, …, 64` respectively.
pub fn encode_word(data: u64) -> u8 {
    let hamming = data_syndrome(data);
    let p0 = (data.count_ones() + u32::from(hamming).count_ones()) & 1;
    (hamming << 1) | p0 as u8
}

/// Decodes one possibly-corrupted word against its (possibly-corrupted)
/// check byte, returning the corrected data and the verdict. On
/// [`WordDecode::Uncorrectable`] the returned data is the raw stored
/// word, unmodified.
pub fn decode_word(data: u64, check: u8) -> (u64, WordDecode) {
    let stored_hamming = check >> 1;
    let syndrome = data_syndrome(data) ^ stored_hamming;
    let parity_odd = (data.count_ones() + u32::from(check).count_ones()) & 1 == 1;
    match (parity_odd, syndrome) {
        (false, 0) => (data, WordDecode::Clean),
        (true, pos) => {
            // One flipped bit at codeword position `pos` (0 = p0). Only
            // a flip in a data position changes the delivered word.
            match POS_TO_DATA.get(pos as usize) {
                Some(&idx) if idx != 0xFF => (data ^ (1u64 << idx), WordDecode::Corrected),
                Some(_) => (data, WordDecode::Corrected),
                // A syndrome past the codeword means ≥3 flips conspired;
                // refuse to "correct" into garbage.
                None => (data, WordDecode::Uncorrectable),
            }
        }
        (false, _) => (data, WordDecode::Uncorrectable),
    }
}

/// Per-word decode masks for one 64-byte line (bit `w` refers to the
/// little-endian 64-bit word at bytes `8w..8w+8`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineDecode {
    /// Words that needed (and received) a single-bit correction.
    pub corrected: u8,
    /// Words with detected-uncorrectable errors; their bytes are poison.
    pub uncorrectable: u8,
}

impl LineDecode {
    /// Whether the whole line decoded without any error.
    pub fn is_clean(&self) -> bool {
        self.corrected == 0 && self.uncorrectable == 0
    }

    /// Whether any word is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.uncorrectable != 0
    }
}

/// Encodes a 64-byte line into its 8 check bytes (one per 64-bit word).
pub fn encode_line(data: &[u8; 64]) -> [u8; 8] {
    let mut check = [0u8; 8];
    for (w, c) in check.iter_mut().enumerate() {
        *c = encode_word(word_at(data, w));
    }
    check
}

/// Decodes a 64-byte line in place against its check bytes, correcting
/// every single-bit word error (in both `data` and `check`) and
/// reporting per-word outcomes. Uncorrectable words are left as stored.
pub fn decode_line(data: &mut [u8; 64], check: &mut [u8; 8]) -> LineDecode {
    let mut out = LineDecode::default();
    for w in 0..8 {
        let (fixed, verdict) = decode_word(word_at(data, w), check[w]);
        match verdict {
            WordDecode::Clean => {}
            WordDecode::Corrected => {
                out.corrected |= 1 << w;
                data[w * 8..w * 8 + 8].copy_from_slice(&fixed.to_le_bytes());
                check[w] = encode_word(fixed);
            }
            WordDecode::Uncorrectable => out.uncorrectable |= 1 << w,
        }
    }
    out
}

fn word_at(data: &[u8; 64], w: usize) -> u64 {
    u64::from_le_bytes(data[w * 8..w * 8 + 8].try_into().expect("8-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A few structured + pseudo-random words exercising dense, sparse
    /// and alternating bit patterns.
    fn corpus() -> Vec<u64> {
        let mut v = vec![
            0,
            u64::MAX,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            1,
            1 << 63,
            0xDEAD_BEEF_CAFE_F00D,
        ];
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v.push(x);
        }
        v
    }

    /// Flips codeword bit `pos` (0 = p0, powers of two = check bits,
    /// rest = data bits) in a (data, check) pair.
    fn flip(data: &mut u64, check: &mut u8, pos: usize) {
        match POS_TO_DATA[pos] {
            0xFF if pos == 0 => *check ^= 1,
            0xFF => *check ^= 1 << (pos.trailing_zeros() + 1),
            idx => *data ^= 1 << idx,
        }
    }

    #[test]
    fn data_positions_are_the_64_non_powers_of_two() {
        assert_eq!(DATA_POS[0], 3);
        assert_eq!(DATA_POS[63], 71);
        for w in DATA_POS.windows(2) {
            assert!(w[0] < w[1]);
        }
        for p in DATA_POS {
            assert!(!p.is_power_of_two());
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for data in corpus() {
            let check = encode_word(data);
            assert_eq!(decode_word(data, check), (data, WordDecode::Clean));
        }
    }

    #[test]
    fn every_single_bit_flip_of_all_72_is_corrected() {
        for data in corpus() {
            let check = encode_word(data);
            for pos in 0..72 {
                let (mut d, mut c) = (data, check);
                flip(&mut d, &mut c, pos);
                let (fixed, verdict) = decode_word(d, c);
                assert_eq!(verdict, WordDecode::Corrected, "pos {pos}");
                assert_eq!(fixed, data, "pos {pos} must restore the data");
            }
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected_not_miscorrected() {
        for data in corpus().into_iter().take(8) {
            let check = encode_word(data);
            for a in 0..72 {
                for b in (a + 1)..72 {
                    let (mut d, mut c) = (data, check);
                    flip(&mut d, &mut c, a);
                    flip(&mut d, &mut c, b);
                    let (out, verdict) = decode_word(d, c);
                    assert_eq!(verdict, WordDecode::Uncorrectable, "pair ({a},{b})");
                    assert_eq!(out, d, "uncorrectable words pass through raw");
                }
            }
        }
    }

    #[test]
    fn line_roundtrip_and_inplace_correction() {
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let pristine = data;
        let mut check = encode_line(&data);
        assert!(decode_line(&mut data, &mut check).is_clean());

        // One data-bit flip in word 2 and one check-bit flip in word 5.
        data[17] ^= 0x40;
        check[5] ^= 0b0000_0100;
        let d = decode_line(&mut data, &mut check);
        assert_eq!(d.corrected, (1 << 2) | (1 << 5));
        assert_eq!(d.uncorrectable, 0);
        assert_eq!(data, pristine, "data restored in place");
        assert_eq!(check, encode_line(&pristine), "check restored in place");

        // A double flip inside word 7 poisons only word 7.
        data[56] ^= 1;
        data[57] ^= 1;
        let d = decode_line(&mut data, &mut check);
        assert_eq!(d.uncorrectable, 1 << 7);
        assert!(d.is_poisoned());
    }
}
