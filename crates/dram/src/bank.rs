//! Per-bank (and per-sub-rank) DRAM state machines.
//!
//! With independent chip-selects, the two sub-ranks of a rank can hold
//! *different* rows open in the same bank index, so the model keeps one
//! state machine per `(bank, sub-rank)` — a "sub-bank". A full-width access
//! simply requires both sub-banks to satisfy the constraint.

use crate::config::Timing;

/// Row-buffer state of one sub-bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowState {
    /// All rows precharged.
    #[default]
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: usize,
    },
}

/// One bank of one sub-rank with its JEDEC timing bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubBank {
    state: RowState,
    next_act: u64,
    next_pre: u64,
    next_rd: u64,
    next_wr: u64,
    /// Statistics: activates serviced by this sub-bank.
    pub activates: u64,
}

impl SubBank {
    /// Creates an idle sub-bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current row-buffer state.
    pub fn state(&self) -> RowState {
        self.state
    }

    /// Whether `row` is open.
    pub fn row_open(&self, row: usize) -> bool {
        self.state == RowState::Active { row }
    }

    /// Whether an ACT may issue at `now`.
    pub fn can_activate(&self, now: u64) -> bool {
        self.state == RowState::Idle && now >= self.next_act
    }

    /// The earliest cycle an ACT may issue (assuming the bank is idle).
    pub fn activate_ready_at(&self) -> u64 {
        self.next_act
    }

    /// Issues an ACT for `row` at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the constraint check would fail.
    pub fn activate(&mut self, now: u64, row: usize, t: &Timing) {
        debug_assert!(self.can_activate(now), "illegal ACT");
        self.state = RowState::Active { row };
        self.next_rd = now + t.t_rcd;
        self.next_wr = now + t.t_rcd;
        self.next_pre = now + t.t_ras;
        self.next_act = now + t.t_rc;
        self.activates += 1;
    }

    /// Whether a PRE may issue at `now`.
    pub fn can_precharge(&self, now: u64) -> bool {
        matches!(self.state, RowState::Active { .. }) && now >= self.next_pre
    }

    /// The earliest cycle a PRE may issue (assuming a row is open).
    pub fn precharge_ready_at(&self) -> u64 {
        self.next_pre
    }

    /// Issues a PRE at `now`.
    pub fn precharge(&mut self, now: u64, t: &Timing) {
        debug_assert!(self.can_precharge(now), "illegal PRE");
        self.state = RowState::Idle;
        self.next_act = self.next_act.max(now + t.t_rp);
    }

    /// Whether a column read to `row` may issue at `now` (bank-level
    /// constraints only; the data-bus constraints live in the rank).
    pub fn can_read(&self, now: u64, row: usize) -> bool {
        self.row_open(row) && now >= self.next_rd
    }

    /// Whether a column write to `row` may issue at `now`.
    pub fn can_write(&self, now: u64, row: usize) -> bool {
        self.row_open(row) && now >= self.next_wr
    }

    /// The earliest cycle a column READ may issue (assuming the row is open).
    pub fn read_ready_at(&self) -> u64 {
        self.next_rd
    }

    /// The earliest cycle a column WRITE may issue (assuming the row is open).
    pub fn write_ready_at(&self) -> u64 {
        self.next_wr
    }

    /// Issues a column READ at `now`.
    pub fn read(&mut self, now: u64, t: &Timing) {
        self.next_pre = self.next_pre.max(now + t.t_rtp);
    }

    /// Issues a column WRITE at `now`.
    pub fn write(&mut self, now: u64, t: &Timing) {
        self.next_pre = self.next_pre.max(now + t.t_cwl + t.t_burst + t.t_wr);
    }

    /// Forces the bank idle (used when skipping idle periods across
    /// refreshes); timing gates are aligned to `now`.
    pub fn force_idle(&mut self, now: u64) {
        self.state = RowState::Idle;
        self.next_act = self.next_act.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::table2()
    }

    #[test]
    fn activate_opens_row_and_blocks_reads_until_trcd() {
        let mut b = SubBank::new();
        b.activate(0, 7, &t());
        assert!(b.row_open(7));
        assert!(!b.can_read(t().t_rcd - 1, 7));
        assert!(b.can_read(t().t_rcd, 7));
        assert!(!b.can_read(t().t_rcd, 8), "different row");
    }

    #[test]
    fn precharge_respects_tras_then_trp() {
        let mut b = SubBank::new();
        b.activate(0, 1, &t());
        assert!(!b.can_precharge(t().t_ras - 1));
        assert!(b.can_precharge(t().t_ras));
        b.precharge(t().t_ras, &t());
        assert_eq!(b.state(), RowState::Idle);
        // Next ACT must wait for max(tRC, tRAS + tRP).
        let ready = (t().t_ras + t().t_rp).max(t().t_rc);
        assert!(!b.can_activate(ready - 1));
        assert!(b.can_activate(ready));
    }

    #[test]
    fn read_pushes_out_precharge_via_trtp() {
        let mut b = SubBank::new();
        b.activate(0, 1, &t());
        let rd_at = t().t_ras - 2; // read late in the tRAS window
        b.read(rd_at, &t());
        assert!(!b.can_precharge(t().t_ras), "tRTP extends beyond tRAS here");
        assert!(b.can_precharge(rd_at + t().t_rtp));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = SubBank::new();
        b.activate(0, 1, &t());
        let wr_at = t().t_rcd;
        b.write(wr_at, &t());
        let pre_ready = wr_at + t().t_cwl + t().t_burst + t().t_wr;
        assert!(!b.can_precharge(pre_ready - 1));
        assert!(b.can_precharge(pre_ready.max(t().t_ras)));
    }

    #[test]
    fn activates_are_counted() {
        let mut b = SubBank::new();
        b.activate(0, 1, &t());
        b.precharge(t().t_ras, &t());
        let next = (t().t_ras + t().t_rp).max(t().t_rc);
        b.activate(next, 2, &t());
        assert_eq!(b.activates, 2);
    }
}
